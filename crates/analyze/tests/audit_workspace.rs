//! Workspace-level integration tests for `tag-audit`.
//!
//! The audit must pass on the workspace itself (modulo the committed
//! ratchet baselines), its JSON report must match the committed golden
//! byte for byte, and the report must be identical regardless of the
//! order the source files are walked in.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use tag_analyze::audit::run_audit_files;
use tag_analyze::lint::workspace_sources;
use tag_analyze::{run_audit, AuditConfig};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_audits_clean() {
    let outcome = run_audit(&AuditConfig::new(workspace_root()), false).expect("audit runs");
    assert!(
        outcome.is_clean(),
        "tag-audit found violations in the workspace:\n{}",
        outcome
            .findings
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(outcome.files_scanned > 0, "no files in audit scope");
    assert!(!outcome.lock_classes.is_empty(), "no lock classes loaded");
}

#[test]
fn report_matches_golden() {
    let actual = run_audit(&AuditConfig::new(workspace_root()), false)
        .expect("audit runs")
        .to_json();
    // Regenerate with:
    //   TAG_AUDIT_UPDATE_GOLDEN=1 cargo test -p tag-analyze --test audit_workspace
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/audit-golden.json");
    if std::env::var_os("TAG_AUDIT_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(path).expect("read audit-golden.json");
    assert_eq!(
        actual, expected,
        "audit report drifted from crates/analyze/audit-golden.json;\n\
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn report_is_byte_stable_across_runs() {
    let config = AuditConfig::new(workspace_root());
    let first = run_audit(&config, false).expect("audit runs").to_json();
    let second = run_audit(&config, false).expect("audit runs").to_json();
    assert_eq!(first, second);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shuffling the file walk order must not change a byte of the
    /// report: every aggregate is re-sorted internally. The sampled
    /// u64 vector seeds a Fisher–Yates shuffle of the walk list.
    #[test]
    fn report_is_walk_order_independent(
        seed in prop::collection::vec(any::<u64>(), 1..64)
    ) {
        let config = AuditConfig::new(workspace_root());
        let baseline = run_audit(&config, false).expect("audit runs").to_json();
        let mut shuffled = workspace_sources(&workspace_root()).expect("walk workspace");
        for i in (1..shuffled.len()).rev() {
            let j = (seed[i % seed.len()] as usize) % (i + 1);
            shuffled.swap(i, j);
        }
        let shuffled_report = run_audit_files(&config, false, shuffled)
            .expect("audit runs")
            .to_json();
        prop_assert_eq!(baseline, shuffled_report);
    }
}
