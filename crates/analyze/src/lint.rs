//! `tag-lint`: a hand-rolled source-level linter for repo invariants.
//!
//! No parser dependency: the linter runs on [`crate::scanner`]'s
//! blanked view of each source file (comments and string/char literals
//! spaced out; `#[cfg(test)]` modules excluded via brace tracking) so
//! rules match real code only. Five rules:
//!
//! 1. **`unwrap-ratchet`** — `.unwrap()` / `.expect(` on the serve and
//!    sqlengine hot paths (the files in [`HOT_PATHS`]) are counted per
//!    file and compared against the committed ratchet baseline
//!    (`crates/analyze/lint-ratchet.txt`). A count above baseline
//!    fails; `--update` rewrites the baseline downward.
//! 2. **`stage-tag`** — every `complete_op` / `complete_batch_op` call
//!    site must pass a string-literal stage tag from the known operator
//!    vocabulary, so per-operator metering can never silently lose a
//!    call site.
//! 3. **`lock-poison`** — no `.lock().unwrap()` / `.lock().expect(` in
//!    the serve crate or on sqlengine hot paths: a panicked writer
//!    must not cascade into every later reader. `parking_lot` locks
//!    (no poisoning) and `unwrap_or_else(|e| e.into_inner())` recovery
//!    both pass.
//! 4. **`row-ratchet`** — `Vec<Row>` occurrences inside the columnar
//!    executor files ([`CHUNK_PATHS`]) are counted per file and
//!    ratcheted like rule 1 (baseline keys carry a `vec-row:` prefix).
//!    The chunked operators must stay columnar end to end; the
//!    baseline covers only the executor's row-boundary API (plan
//!    entry/exit and delegation to the serial scans), and any new
//!    intermediate row materialization fails the build.
//! 5. **`tagenv-ratchet`** — direct `TagEnv::new(` construction in
//!    non-test code anywhere under `crates/serve/src/` is counted per
//!    file and ratcheted (baseline keys carry a `tagenv:` prefix; a
//!    file absent from the baseline has limit 0). Serving code must
//!    build environments through `ShardSet`, so every served domain
//!    gets a coordinator and scatter wiring — a bare env would
//!    silently opt a path out of sharding.

use crate::scanner::{blank_ranges, find_all, line_of, scan_source, test_ranges};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Hot-path files covered by the unwrap ratchet (rule 1) and the lock
/// rule (rule 3): the serve request path, the sqlengine executor, and
/// the shard scatter-gather path.
pub const HOT_PATHS: &[&str] = &[
    "crates/serve/src/batch.rs",
    "crates/serve/src/cache.rs",
    "crates/serve/src/metrics.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/trace.rs",
    "crates/shard/src/coordinator.rs",
    "crates/shard/src/lib.rs",
    "crates/sqlengine/src/engine.rs",
    "crates/sqlengine/src/exec.rs",
    "crates/sqlengine/src/plancache.rs",
    "crates/sqlengine/src/profile.rs",
    "crates/sqlengine/src/semplan.rs",
];

/// Columnar-executor files covered by the `Vec<Row>` ratchet (rule 4):
/// chunk storage, vectorized kernels, morsel dispatch, and the chunked
/// operators themselves.
pub const CHUNK_PATHS: &[&str] = &[
    "crates/sqlengine/src/chunk.rs",
    "crates/sqlengine/src/chunk_exec.rs",
    "crates/sqlengine/src/morsel.rs",
    "crates/sqlengine/src/vector.rs",
];

/// Baseline-key prefix distinguishing rule-4 entries from rule-1
/// entries in the shared ratchet file.
const ROW_RATCHET_PREFIX: &str = "vec-row:";

/// Baseline-key prefix for rule-5 entries. Files absent from the
/// baseline have an implicit limit of 0, so the rule is a prohibition
/// by default and the committed baseline stays empty.
const TAGENV_RATCHET_PREFIX: &str = "tagenv:";

/// Known stage tags for `complete_op`/`complete_batch_op` (rule 2) —
/// the vocabulary `SemEngine::op_stats()` aggregates by.
pub const KNOWN_OPS: &[&str] = &[
    "adhoc",
    "rerank",
    "sem_agg",
    "sem_agg_refine",
    "sem_filter",
    "sem_join",
    "sem_map",
    "sem_score",
    "sem_topk",
    "text2sql",
];

/// The file that defines and meters the op entry points; its internal
/// forwarding calls are not call sites.
const OP_DEFINING_FILE: &str = "crates/semops/src/engine.rs";

/// Linter configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (the directory containing `crates/`).
    pub root: PathBuf,
    /// Ratchet baseline path, relative to `root`.
    pub ratchet_path: PathBuf,
}

impl LintConfig {
    /// Config rooted at `root` with the committed ratchet path.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LintConfig {
            root: root.into(),
            ratchet_path: PathBuf::from("crates/analyze/lint-ratchet.txt"),
        }
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Rule name (`unwrap-ratchet`, `stage-tag`, `lock-poison`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line (0 for whole-file findings).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

/// Result of a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOutcome {
    /// Violations, deterministically ordered (file, line, rule).
    pub findings: Vec<LintFinding>,
    /// Current `.unwrap()`/`.expect(` counts per hot-path file.
    pub unwrap_counts: BTreeMap<String, usize>,
    /// Current `Vec<Row>` counts per columnar-executor file (rule 4).
    pub row_counts: BTreeMap<String, usize>,
    /// Current `TagEnv::new(` counts per serve-crate file (rule 5).
    /// Only files with a nonzero count appear.
    pub tagenv_counts: BTreeMap<String, usize>,
}

impl LintOutcome {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serialize the current counts in ratchet-file format.
    pub fn ratchet_text(&self) -> String {
        let mut out = String::from(
            "# tag-lint unwrap ratchet: non-test .unwrap()/.expect( counts on hot-path\n\
             # files. Counts may only go down; regenerate with `tag-lint --update`.\n",
        );
        for (file, count) in &self.unwrap_counts {
            let _ = writeln!(out, "{file} {count}");
        }
        out.push_str(
            "# vec-row ratchet: non-test Vec<Row> occurrences in the columnar executor.\n",
        );
        for (file, count) in &self.row_counts {
            let _ = writeln!(out, "{ROW_RATCHET_PREFIX}{file} {count}");
        }
        out.push_str(
            "# tagenv ratchet: non-test TagEnv::new( calls in crates/serve (limit 0 when\n\
             # absent; serving code must build environments through ShardSet).\n",
        );
        for (file, count) in &self.tagenv_counts {
            let _ = writeln!(out, "{TAGENV_RATCHET_PREFIX}{file} {count}");
        }
        out
    }
}

/// Count rule-1 hits: `.unwrap()` and `.expect(` in non-test code.
fn count_unwraps(code: &str) -> usize {
    find_all(code, ".unwrap()").len() + find_all(code, ".expect(").len()
}

/// Count rule-4 hits: `Vec<Row>` in non-test code. rustfmt normalizes
/// generic spacing, so the literal spelling is the only one that
/// appears in formatted sources.
fn count_row_vecs(code: &str) -> usize {
    find_all(code, "Vec<Row>").len()
}

/// Count rule-5 hits: direct `TagEnv::new(` construction in non-test
/// code (serving must go through `ShardSet`).
fn count_tagenv_news(code: &str) -> usize {
    find_all(code, "TagEnv::new(").len()
}

/// Rule 3: `.lock()` immediately followed (modulo whitespace) by
/// `.unwrap()` or `.expect(`.
fn find_poison_panics(code: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for pos in find_all(code, ".lock()") {
        let rest = &code[pos + ".lock()".len()..];
        let trimmed = rest.trim_start();
        if trimmed.starts_with(".unwrap()") || trimmed.starts_with(".expect(") {
            out.push(pos);
        }
    }
    out
}

/// Rule 2: check `complete_op(`/`complete_batch_op(` call sites in
/// `with_strings` (strings intact). Returns (offset, message) pairs.
fn check_stage_tags(with_strings: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for name in ["complete_op", "complete_batch_op"] {
        let pattern = format!("{name}(");
        for pos in find_all(with_strings, &pattern) {
            // Skip definitions/imports: `fn complete_op(` and longer
            // identifiers ending in the name (e.g. `recomplete_op`).
            let before = &with_strings[..pos];
            if before.trim_end().ends_with("fn") {
                continue;
            }
            if before
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                continue;
            }
            let args = &with_strings[pos + pattern.len()..];
            let arg = args.trim_start();
            if let Some(rest) = arg.strip_prefix('"') {
                match rest.split('"').next() {
                    Some(tag) if KNOWN_OPS.contains(&tag) => {}
                    Some(tag) => out.push((
                        pos,
                        format!("unknown stage tag \"{tag}\" (known: {KNOWN_OPS:?})"),
                    )),
                    None => out.push((pos, "unterminated stage-tag literal".to_owned())),
                }
            } else {
                out.push((
                    pos,
                    format!("{name} call site must pass a string-literal stage tag"),
                ));
            }
        }
    }
    out
}

fn load_ratchet(path: &Path) -> Result<BTreeMap<String, usize>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(file), Some(count)) = (parts.next(), parts.next()) else {
            return Err(format!("malformed ratchet line: {line:?}"));
        };
        let count: usize = count
            .parse()
            .map_err(|e| format!("malformed ratchet count in {line:?}: {e}"))?;
        out.insert(file.to_owned(), count);
    }
    Ok(out)
}

/// Every `.rs` file under `crates/*/src`, workspace-relative, sorted.
/// Shared with `tag-audit`, which filters the same walk by crate.
pub fn workspace_sources(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let entries =
        fs::read_dir(&crates).map_err(|e| format!("cannot list {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_string_lossy()
                .into_owned();
            out.push(rel);
        }
    }
    Ok(())
}

/// Run all three rules over the workspace. With `update_ratchet`, the
/// baseline file is rewritten to the current counts (after verifying
/// they don't regress an even lower committed baseline is the caller's
/// code-review job — the tool only ever writes what it measured).
pub fn run_lint(config: &LintConfig, update_ratchet: bool) -> Result<LintOutcome, String> {
    let mut outcome = LintOutcome::default();
    let serve_prefix = "crates/serve/src/";

    for rel in workspace_sources(&config.root)? {
        let path = config.root.join(&rel);
        let src = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let scanned = scan_source(&src);
        let ranges = test_ranges(&scanned.code);
        let code = blank_ranges(&scanned.code, &ranges);
        let with_strings = blank_ranges(&scanned.with_strings, &ranges);
        let is_hot = HOT_PATHS.contains(&rel.as_str());

        if is_hot {
            outcome
                .unwrap_counts
                .insert(rel.clone(), count_unwraps(&code));
        }

        if CHUNK_PATHS.contains(&rel.as_str()) {
            outcome
                .row_counts
                .insert(rel.clone(), count_row_vecs(&code));
        }

        // Rule 5 covers the whole serve crate (bins included). Only
        // offending files are recorded, so the clean state is an empty
        // map and an empty baseline section.
        if rel.starts_with(serve_prefix) {
            let n = count_tagenv_news(&code);
            if n > 0 {
                outcome.tagenv_counts.insert(rel.clone(), n);
            }
        }

        // Rule 3 covers the whole serve crate (bins included) plus the
        // sqlengine hot paths.
        if rel.starts_with(serve_prefix) || is_hot {
            for pos in find_poison_panics(&code) {
                outcome.findings.push(LintFinding {
                    rule: "lock-poison",
                    file: rel.clone(),
                    line: line_of(&code, pos),
                    message: "lock unwrap/expect panics on poison; recover with \
                              unwrap_or_else(|e| e.into_inner()) or use parking_lot"
                        .to_owned(),
                });
            }
        }

        // Rule 2 covers every crate except the defining module.
        if rel != OP_DEFINING_FILE {
            for (pos, message) in check_stage_tags(&with_strings) {
                outcome.findings.push(LintFinding {
                    rule: "stage-tag",
                    file: rel.clone(),
                    line: line_of(&with_strings, pos),
                    message,
                });
            }
        }
    }

    // Rule 1: compare against (or rewrite) the ratchet baseline.
    let ratchet_file = config.root.join(&config.ratchet_path);
    if update_ratchet {
        fs::write(&ratchet_file, outcome.ratchet_text())
            .map_err(|e| format!("cannot write {}: {e}", ratchet_file.display()))?;
    } else {
        let baseline = load_ratchet(&ratchet_file)?;
        for (file, &count) in &outcome.unwrap_counts {
            match baseline.get(file) {
                Some(&limit) if count > limit => outcome.findings.push(LintFinding {
                    rule: "unwrap-ratchet",
                    file: file.clone(),
                    line: 0,
                    message: format!(
                        "{count} non-test .unwrap()/.expect( calls exceed the ratchet \
                         baseline of {limit}; propagate errors instead"
                    ),
                }),
                Some(_) => {}
                None => outcome.findings.push(LintFinding {
                    rule: "unwrap-ratchet",
                    file: file.clone(),
                    line: 0,
                    message: "hot-path file missing from the ratchet baseline; run \
                              tag-lint --update"
                        .to_owned(),
                }),
            }
        }
        // Rule 4: the Vec<Row> ratchet over the columnar executor.
        for (file, &count) in &outcome.row_counts {
            match baseline.get(&format!("{ROW_RATCHET_PREFIX}{file}")) {
                Some(&limit) if count > limit => outcome.findings.push(LintFinding {
                    rule: "row-ratchet",
                    file: file.clone(),
                    line: 0,
                    message: format!(
                        "{count} Vec<Row> occurrences exceed the ratchet baseline of \
                         {limit}; chunked operators must stay columnar — pass Chunk / \
                         Batch between stages instead of materializing rows"
                    ),
                }),
                Some(_) => {}
                None => outcome.findings.push(LintFinding {
                    rule: "row-ratchet",
                    file: file.clone(),
                    line: 0,
                    message: "columnar-executor file missing from the ratchet baseline; \
                              run tag-lint --update"
                        .to_owned(),
                }),
            }
        }
        // Rule 5: the TagEnv ratchet over the serve crate. Absent
        // baseline keys mean limit 0 — the rule forbids new direct
        // constructions outright.
        for (file, &count) in &outcome.tagenv_counts {
            let limit = baseline
                .get(&format!("{TAGENV_RATCHET_PREFIX}{file}"))
                .copied()
                .unwrap_or(0);
            if count > limit {
                outcome.findings.push(LintFinding {
                    rule: "tagenv-ratchet",
                    file: file.clone(),
                    line: 0,
                    message: format!(
                        "{count} direct TagEnv::new( calls exceed the ratchet baseline of \
                         {limit}; serving code must build environments through ShardSet \
                         so every domain gets a coordinator and scatter wiring"
                    ),
                });
            }
        }
    }

    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = r#"
// a .unwrap() in a comment
let x = "a .unwrap() in a string";
let y = maybe.unwrap();
"#;
        let scanned = scan_source(src);
        assert_eq!(count_unwraps(&scanned.code), 1);
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let src = r##"
let r = r#".unwrap()"#;
let c = '"';
let after = maybe.unwrap();
"##;
        let scanned = scan_source(src);
        assert_eq!(count_unwraps(&scanned.code), 1);
    }

    #[test]
    fn lifetimes_do_not_confuse_the_scanner() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet y = z.unwrap();";
        let scanned = scan_source(src);
        assert_eq!(count_unwraps(&scanned.code), 1);
    }

    #[test]
    fn test_modules_are_excluded() {
        let src = "
fn hot() { a.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { b.unwrap(); c.unwrap(); }
}
";
        let scanned = scan_source(src);
        let code = blank_ranges(&scanned.code, &test_ranges(&scanned.code));
        assert_eq!(count_unwraps(&code), 1);
    }

    #[test]
    fn lock_poison_detects_split_lines() {
        let src = "let g = m.lock()\n    .unwrap();\nlet ok = m.lock().unwrap_or_else(|e| e.into_inner());";
        let scanned = scan_source(src);
        let hits = find_poison_panics(&scanned.code);
        assert_eq!(hits.len(), 1);
        assert_eq!(line_of(&scanned.code, hits[0]), 1);
    }

    #[test]
    fn stage_tags_must_be_known_literals() {
        let src = r#"
engine.complete_op("sem_filter", p)?;
engine.complete_op("mystery_op", p)?;
engine.complete_batch_op(op_var, &prompts)?;
fn complete_op(&self, op: &str) {}
"#;
        let scanned = scan_source(src);
        let hits = check_stage_tags(&scanned.with_strings);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].1.contains("mystery_op"));
        assert!(hits[1].1.contains("string-literal"));
    }

    #[test]
    fn ratchet_roundtrip() {
        let mut outcome = LintOutcome::default();
        outcome.unwrap_counts.insert("a.rs".into(), 3);
        outcome.row_counts.insert("b.rs".into(), 2);
        outcome.tagenv_counts.insert("c.rs".into(), 1);
        let dir = std::env::temp_dir().join("tag-lint-test");
        fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("ratchet.txt");
        fs::write(&path, outcome.ratchet_text()).expect("write");
        let loaded = load_ratchet(&path).expect("load");
        assert_eq!(loaded.get("a.rs"), Some(&3));
        assert_eq!(loaded.get("vec-row:b.rs"), Some(&2));
        assert_eq!(loaded.get("tagenv:c.rs"), Some(&1));
    }

    #[test]
    fn tagenv_news_counted_outside_tests_and_strings() {
        let src = "
fn serve() { let e = TagEnv::new(db, lm); }
// TagEnv::new( in a comment
let s = \"TagEnv::new( in a string\";
#[cfg(test)]
mod tests {
    fn t() { let e = TagEnv::new(db, lm); }
}
";
        let scanned = scan_source(src);
        let code = blank_ranges(&scanned.code, &test_ranges(&scanned.code));
        assert_eq!(count_tagenv_news(&code), 1);
    }

    #[test]
    fn row_vecs_counted_outside_tests_and_strings() {
        let src = "
fn hot(rows: Vec<Row>) -> Vec<Row> { rows }
// Vec<Row> in a comment
let s = \"Vec<Row> in a string\";
#[cfg(test)]
mod tests {
    fn t(rows: Vec<Row>) {}
}
";
        let scanned = scan_source(src);
        let code = blank_ranges(&scanned.code, &test_ranges(&scanned.code));
        assert_eq!(count_row_vecs(&code), 2);
    }
}
