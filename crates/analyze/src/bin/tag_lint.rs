//! `tag-lint` — run the repo's source-level lint rules.
//!
//! ```text
//! cargo run -p tag-analyze --bin tag-lint            # check against the ratchet
//! cargo run -p tag-analyze --bin tag-lint -- --update  # rewrite the ratchet baseline
//! cargo run -p tag-analyze --bin tag-lint -- --root /path/to/workspace
//! ```
//!
//! Exit code 0 when clean, 1 on any violation, 2 on usage/IO errors.

use std::path::Path;
use tag_analyze::lint::{run_lint, LintConfig};

fn main() {
    let mut update = false;
    let mut root = String::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--root" => match args.next() {
                Some(r) => root = r,
                None => {
                    eprintln!("--root needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown flag {other:?} (expected --update / --root <path>)");
                std::process::exit(2);
            }
        }
    }
    if !Path::new(&root).join("crates").is_dir() {
        eprintln!("{root:?} does not look like the workspace root (no crates/ directory)");
        std::process::exit(2);
    }

    let config = LintConfig::new(&root);
    let outcome = match run_lint(&config, update) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tag-lint: {e}");
            std::process::exit(2);
        }
    };

    println!("tag-lint: hot-path unwrap/expect counts");
    for (file, count) in &outcome.unwrap_counts {
        println!("  {file} {count}");
    }
    let total: usize = outcome.unwrap_counts.values().sum();
    println!("  total {total}");

    if update {
        println!(
            "ratchet baseline rewritten: {}",
            config.root.join(&config.ratchet_path).display()
        );
    }

    if outcome.is_clean() {
        println!("tag-lint: clean");
        return;
    }
    for f in &outcome.findings {
        if f.line == 0 {
            println!("{}: [{}] {}", f.file, f.rule, f.message);
        } else {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
    }
    println!("tag-lint: {} violation(s)", outcome.findings.len());
    std::process::exit(1);
}
