//! `tag-audit` — run the workspace concurrency & determinism audit.
//!
//! ```text
//! cargo run -p tag-analyze --bin tag-audit                 # audit the workspace
//! cargo run -p tag-analyze --bin tag-audit -- --update     # rewrite det-ratchet.txt
//! cargo run -p tag-analyze --bin tag-audit -- --json AUDIT_report.json
//! cargo run -p tag-analyze --bin tag-audit -- --canaries   # seeded-mutation sweep
//! cargo run -p tag-analyze --bin tag-audit -- --root /path/to/workspace
//! ```
//!
//! Exit code 0 when clean (and every canary passes), 1 on any finding
//! or missed canary, 2 on usage/IO errors.

use std::path::Path;
use tag_analyze::audit::{canary, run_audit, AuditConfig};

fn main() {
    let mut update = false;
    let mut canaries = false;
    let mut root = String::from(".");
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--canaries" => canaries = true,
            "--root" => match args.next() {
                Some(r) => root = r,
                None => usage_err("--root needs a path"),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => usage_err("--json needs a path"),
            },
            other => usage_err(&format!(
                "unknown flag {other:?} (expected --update / --canaries / \
                 --json <path> / --root <path>)"
            )),
        }
    }
    if !Path::new(&root).join("crates").is_dir() {
        eprintln!("{root:?} does not look like the workspace root (no crates/ directory)");
        std::process::exit(2);
    }

    let mut failed = false;

    let config = AuditConfig::new(&root);
    let outcome = match run_audit(&config, update) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tag-audit: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "tag-audit: {} files, {} lock classes, {} observed edges",
        outcome.files_scanned,
        outcome.lock_classes.len(),
        outcome.lock_edges.len()
    );
    println!(
        "tag-audit: {} condvar waits, {} sends, {} join paths checked",
        outcome.condvar_waits, outcome.sends_checked, outcome.joins_checked
    );

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, outcome.to_json()) {
            eprintln!("tag-audit: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("tag-audit: report written to {path}");
    }
    if update {
        println!(
            "determinism ratchet rewritten: {}",
            config.root.join(&config.ratchet_path).display()
        );
    }

    if outcome.is_clean() {
        println!("tag-audit: clean");
    } else {
        for f in &outcome.findings {
            let at = if f.line == 0 {
                f.file.clone()
            } else {
                format!("{}:{}", f.file, f.line)
            };
            let scope = if f.function.is_empty() {
                String::new()
            } else {
                format!(" (fn {})", f.function)
            };
            println!("{at}: [{}]{scope} {}", f.rule, f.message);
        }
        println!("tag-audit: {} violation(s)", outcome.findings.len());
        failed = true;
    }

    if canaries {
        match canary::run_canaries() {
            Ok(reports) => {
                for r in &reports {
                    let status = if r.passed() {
                        "caught"
                    } else if !r.base_clean {
                        "FIXTURE NOT CLEAN"
                    } else {
                        "MISSED"
                    };
                    println!("canary {} ({}): {status}", r.name, r.expected_rule);
                    failed |= !r.passed();
                }
            }
            Err(e) => {
                eprintln!("tag-audit: canary sweep failed: {e}");
                std::process::exit(2);
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}

fn usage_err(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
