//! Lock-order pass: acquisition extraction, guard extents, and the
//! held-while-acquiring edge check against the declared hierarchy.
//!
//! Every `.lock()` call in scope must resolve — via its receiver
//! identifier — to a class declared in `lock-order.txt` (or an
//! `ignore` entry); `.read()`/`.write()` sites are counted only when
//! declared, since those method names are shared with io traits. Guard
//! extents are approximated from statement structure:
//!
//! - `let g = <recv>.lock();` (optionally followed by the poison
//!   recovery suffix `.unwrap_or_else(|e| e.into_inner())`) binds the
//!   guard — held to the end of the enclosing block;
//! - anything else is a statement temporary — held to the end of the
//!   statement, which for a guard created in a `for`/`match` head
//!   correctly extends through the block-terminated statement's body.
//!
//! An acquisition B inside acquisition A's held extent yields the edge
//! `class(A) → class(B)`. Same-class nesting, an edge outside the
//! declared order's transitive closure, and any cycle in the union of
//! declared and observed edges are findings.

use super::hierarchy::{find_cycle, Hierarchy};
use super::{AuditFinding, AuditOutcome, FileScan};
use crate::scanner::{block_end, find_all, line_of, receiver_ident, statement_end};
use std::collections::BTreeSet;

/// One lock acquisition site with its approximated held extent.
pub(crate) struct Acquisition {
    /// Index into the scan list (file identity).
    pub(crate) file_idx: usize,
    /// Resolved lock class, when declared.
    pub(crate) class: Option<String>,
    /// Byte offset of the acquisition's `.`.
    pub(crate) pos: usize,
    /// One past the end of the held extent.
    pub(crate) span_end: usize,
}

/// The poison-recovery chain allowed after `.lock()` without demoting
/// a `let` binding to a temporary.
const RECOVERY_SUFFIX: &str = ".unwrap_or_else(|e|e.into_inner())";

/// Extract acquisitions, count class sites, and check edges.
pub(crate) fn run(
    scans: &[FileScan],
    hierarchy: &Hierarchy,
    outcome: &mut AuditOutcome,
) -> Vec<Acquisition> {
    for class in &hierarchy.classes {
        outcome.lock_classes.insert(class.clone(), 0);
    }
    let mut acqs: Vec<Acquisition> = Vec::new();
    for (file_idx, scan) in scans.iter().enumerate() {
        let code = &scan.code;
        for (method, must_resolve) in [(".lock()", true), (".read()", false), (".write()", false)] {
            for pos in find_all(code, method) {
                let recv = receiver_ident(code, pos);
                let Some(recv) = recv else {
                    if must_resolve {
                        outcome.findings.push(unresolved(scan, pos, method));
                    }
                    continue;
                };
                if hierarchy.is_ignored(&scan.rel, &recv) {
                    continue;
                }
                match hierarchy.class_of(&scan.rel, &recv) {
                    Some(class) => {
                        *outcome.lock_classes.entry(class.to_owned()).or_default() += 1;
                        acqs.push(Acquisition {
                            file_idx,
                            class: Some(class.to_owned()),
                            pos,
                            span_end: held_extent(code, pos, method),
                        });
                    }
                    None if must_resolve => {
                        outcome.findings.push(AuditFinding {
                            rule: "lock-undeclared",
                            file: scan.rel.clone(),
                            line: line_of(code, pos),
                            function: scan.fn_at(pos),
                            message: format!(
                                "{method} on receiver `{recv}` is not mapped to any lock \
                                 class in lock-order.txt (declare a class or an ignore \
                                 entry for {}:{recv})",
                                scan.rel
                            ),
                        });
                    }
                    None => {}
                }
            }
        }
    }
    acqs.sort_by_key(|a| (a.file_idx, a.pos));

    // Observed held-while-acquiring edges, with one representative
    // site each for the finding message.
    let mut observed: BTreeSet<(String, String)> = BTreeSet::new();
    let mut sites: Vec<(String, String, usize, usize)> = Vec::new();
    for a in &acqs {
        let Some(ca) = &a.class else { continue };
        for b in &acqs {
            let Some(cb) = &b.class else { continue };
            if a.file_idx == b.file_idx
                && a.pos < b.pos
                && b.pos < a.span_end
                && observed.insert((ca.clone(), cb.clone()))
            {
                sites.push((ca.clone(), cb.clone(), b.file_idx, b.pos));
            }
        }
    }

    let permitted = hierarchy.permitted_edges();
    let mut union: BTreeSet<(String, String)> = hierarchy.order.iter().cloned().collect();
    for (a, b, file_idx, pos) in &sites {
        let scan = &scans[*file_idx];
        let declared = permitted.contains(&(a.clone(), b.clone()));
        outcome.lock_edges.insert((a.clone(), b.clone()), declared);
        if a == b {
            outcome.findings.push(AuditFinding {
                rule: "lock-cycle",
                file: scan.rel.clone(),
                line: line_of(&scan.code, *pos),
                function: scan.fn_at(*pos),
                message: format!("lock class {a} acquired while already held (self-deadlock)"),
            });
            continue;
        }
        union.insert((a.clone(), b.clone()));
        if !declared {
            outcome.findings.push(AuditFinding {
                rule: "lock-edge-undeclared",
                file: scan.rel.clone(),
                line: line_of(&scan.code, *pos),
                function: scan.fn_at(*pos),
                message: format!(
                    "acquiring {b} while holding {a} is not covered by the declared \
                     lock order; add `order {a} < {b}` to lock-order.txt only if the \
                     combined order stays acyclic"
                ),
            });
        }
    }

    if let Some(cycle) = find_cycle(&union) {
        // Anchor the finding on a representative observed site inside
        // the cycle, if any (a declared-only cycle is caught at load).
        let anchor = sites
            .iter()
            .find(|(a, b, _, _)| cycle.windows(2).any(|w| &w[0] == a && &w[1] == b));
        let (file, line, function) = match anchor {
            Some((_, _, file_idx, pos)) => {
                let scan = &scans[*file_idx];
                (
                    scan.rel.clone(),
                    line_of(&scan.code, *pos),
                    scan.fn_at(*pos),
                )
            }
            None => (String::from("lock-order.txt"), 0, String::new()),
        };
        outcome.findings.push(AuditFinding {
            rule: "lock-cycle",
            file,
            line,
            function,
            message: format!(
                "lock acquisition order cycles: {} (declared ∪ observed edges)",
                cycle.join(" → ")
            ),
        });
    }
    acqs
}

fn unresolved(scan: &FileScan, pos: usize, method: &str) -> AuditFinding {
    AuditFinding {
        rule: "lock-undeclared",
        file: scan.rel.clone(),
        line: line_of(&scan.code, pos),
        function: scan.fn_at(pos),
        message: format!("{method} receiver could not be resolved to an identifier"),
    }
}

/// The held extent of an acquisition at `pos`: block end for a
/// `let`-bound guard, statement end for a temporary.
fn held_extent(code: &str, pos: usize, method: &str) -> usize {
    let stmt_end = statement_end(code, pos);
    // Statement start: just past the nearest `;`, `{`, or `}`.
    let stmt_start = code[..pos]
        .rfind([';', '{', '}'])
        .map(|i| i + 1)
        .unwrap_or(0);
    let head = code[stmt_start..pos].trim_start();
    if head.starts_with("let ") || head.starts_with("let\n") {
        // The guard is bound only when the lock call (plus at most the
        // poison-recovery suffix) is the whole initializer.
        let after = &code[pos + method.len()..stmt_end];
        let tail: String = after.chars().filter(|c| !c.is_whitespace()).collect();
        if tail == ";" || tail == format!("{RECOVERY_SUFFIX};") {
            return block_end(code, pos);
        }
    }
    stmt_end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{fn_spans, scan_source};

    fn scan(rel: &str, src: &str) -> FileScan {
        let s = scan_source(src);
        let fns = fn_spans(&s.code);
        FileScan {
            rel: rel.to_owned(),
            code: s.code,
            fns,
        }
    }

    fn hier(text: &str) -> Hierarchy {
        Hierarchy::parse(text).expect("hierarchy")
    }

    #[test]
    fn let_bound_guards_hold_to_block_end() {
        let src =
            "fn f(&self) {\n    let a = self.state.lock();\n    let b = self.slots.lock();\n}";
        let scans = vec![scan("crates/x/src/a.rs", src)];
        let h = hier(
            "class st = crates/x/src/a.rs:state\nclass sl = crates/x/src/a.rs:slots\n\
             order st < sl\n",
        );
        let mut out = AuditOutcome::default();
        run(&scans, &h, &mut out);
        assert!(out.is_clean(), "{:?}", out.findings);
        assert_eq!(out.lock_edges.get(&("st".into(), "sl".into())), Some(&true));
    }

    #[test]
    fn inverted_order_is_a_cycle() {
        let src =
            "fn f(&self) {\n    let b = self.slots.lock();\n    let a = self.state.lock();\n}";
        let scans = vec![scan("crates/x/src/a.rs", src)];
        let h = hier(
            "class st = crates/x/src/a.rs:state\nclass sl = crates/x/src/a.rs:slots\n\
             order st < sl\n",
        );
        let mut out = AuditOutcome::default();
        run(&scans, &h, &mut out);
        assert!(out.findings.iter().any(|f| f.rule == "lock-cycle"));
        assert!(out
            .findings
            .iter()
            .any(|f| f.rule == "lock-edge-undeclared"));
    }

    #[test]
    fn temporaries_do_not_span_statements() {
        let src = "fn f(&self) {\n    *self.state.lock() = 1;\n    let b = self.slots.lock();\n}";
        let scans = vec![scan("crates/x/src/a.rs", src)];
        let h = hier("class st = crates/x/src/a.rs:state\nclass sl = crates/x/src/a.rs:slots\n");
        let mut out = AuditOutcome::default();
        run(&scans, &h, &mut out);
        assert!(out.is_clean(), "{:?}", out.findings);
        assert!(out.lock_edges.is_empty());
    }

    #[test]
    fn chained_let_initializer_is_a_temporary() {
        // `let v = m.lock().get(k).cloned();` drops the guard at the
        // semicolon — must not create an edge to the next statement.
        let src = "fn f(&self) {\n    let v = self.state.lock().clone();\n    let b = self.slots.lock();\n}";
        let scans = vec![scan("crates/x/src/a.rs", src)];
        let h = hier("class st = crates/x/src/a.rs:state\nclass sl = crates/x/src/a.rs:slots\n");
        let mut out = AuditOutcome::default();
        run(&scans, &h, &mut out);
        assert!(out.is_clean(), "{:?}", out.findings);
    }

    #[test]
    fn recovery_suffix_keeps_the_binding() {
        let src = "fn f(&self) {\n    let g = self.state.lock().unwrap_or_else(|e| e.into_inner());\n    let b = self.slots.lock();\n}";
        let scans = vec![scan("crates/x/src/a.rs", src)];
        let h = hier(
            "class st = crates/x/src/a.rs:state\nclass sl = crates/x/src/a.rs:slots\n\
             order st < sl\n",
        );
        let mut out = AuditOutcome::default();
        run(&scans, &h, &mut out);
        assert!(out.is_clean(), "{:?}", out.findings);
        assert_eq!(out.lock_edges.len(), 1);
    }

    #[test]
    fn undeclared_receiver_is_flagged_and_ignorable() {
        let src = "fn f(&self) { self.mystery.lock(); stdin.lock(); }";
        let scans = vec![scan("crates/x/src/a.rs", src)];
        let h = hier("class st = crates/x/src/a.rs:state\nignore crates/x/src/a.rs:stdin\n");
        let mut out = AuditOutcome::default();
        run(&scans, &h, &mut out);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "lock-undeclared");
        assert!(out.findings[0].message.contains("mystery"));
    }

    #[test]
    fn same_class_nesting_is_a_self_deadlock() {
        let src =
            "fn f(&self) {\n    let a = self.state.lock();\n    let b = self.state.lock();\n}";
        let scans = vec![scan("crates/x/src/a.rs", src)];
        let h = hier("class st = crates/x/src/a.rs:state\n");
        let mut out = AuditOutcome::default();
        run(&scans, &h, &mut out);
        assert!(out
            .findings
            .iter()
            .any(|f| f.rule == "lock-cycle" && f.message.contains("self-deadlock")));
    }
}
