//! Seeded mutation canaries for `tag-audit`.
//!
//! Each canary builds a miniature workspace fixture in a temp
//! directory — a clean worker pool + merge executor with a declared
//! hierarchy — then applies one seeded concurrency/determinism bug and
//! asserts the audit catches it with the expected rule id. This is the
//! analyzer's own regression harness: a scanner change that silently
//! stops detecting lock inversions fails the canary sweep, not a
//! future incident.

use super::{run_audit, AuditConfig};
use std::fs;
use std::path::Path;

/// The clean fixture's pool file: ordered lock nesting, a
/// predicate-loop condvar wait, try_send under the admission lock, and
/// a sender-dropping shutdown.
const POOL_BASE: &str = r#"
pub struct Pool {
    state: Mutex<State>,
    slots: Mutex<Vec<Slot>>,
    ready: Condvar,
    tx: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    fn acquire_in_order(&self) {
        let state = self.state.lock();
        let slots = self.slots.lock();
        use_both(state, slots);
    }

    fn wait_ready(&self) {
        let mut state = self.state.lock();
        loop {
            if state.ready_count > 0 {
                return;
            }
            self.ready.wait(&mut state);
        }
    }

    fn submit(&self, job: Job) {
        let tx = self.tx.lock();
        if let Some(tx) = tx.as_ref() {
            let _ = tx.try_send(job);
        }
    }

    fn shutdown(&self) {
        *self.tx.lock() = None;
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }
}
"#;

/// The clean fixture's merge file: group merge keyed by a first-seen
/// order vec; the index map is lookup-only.
const EXEC_BASE: &str = r#"
pub fn merge_groups(rows: Vec<(Key, Val)>) -> Vec<(Key, Val)> {
    let mut index: HashMap<Key, usize> = HashMap::new();
    let mut out: Vec<(Key, Val)> = Vec::new();
    for (key, val) in rows {
        if let Some(&at) = index.get(&key) {
            out[at].1 = merge(&out[at].1, val);
        } else {
            index.insert(key.clone(), out.len());
            out.push((key, val));
        }
    }
    out
}
"#;

/// The fixture's declared hierarchy.
const HIERARCHY: &str = "\
# canary fixture lock hierarchy
class pool.state = crates/serve/src/pool.rs:state
class pool.slots = crates/serve/src/pool.rs:slots
class pool.admission = crates/serve/src/pool.rs:tx
class pool.workers = crates/serve/src/pool.rs:workers
attr pool.slots no-send-held
order pool.state < pool.slots
";

/// The fixture's determinism baseline: everything at zero.
const DET_RATCHET: &str = "\
hash-iter:crates/sqlengine/src/exec.rs 0
ambient:crates/sqlengine/src/exec.rs 0
";

/// One seeded-mutation result.
#[derive(Debug, Clone)]
pub struct CanaryReport {
    /// Canary name.
    pub name: &'static str,
    /// The rule id the mutation must trigger.
    pub expected_rule: &'static str,
    /// Whether the clean fixture audited clean.
    pub base_clean: bool,
    /// Whether the mutated fixture produced the expected rule.
    pub caught: bool,
}

impl CanaryReport {
    /// Canary passed: clean base, mutation caught.
    pub fn passed(&self) -> bool {
        self.base_clean && self.caught
    }
}

struct Canary {
    name: &'static str,
    expected_rule: &'static str,
    /// (fixture-relative path, mutated contents).
    mutation: (&'static str, &'static str),
}

/// Mutation 1: inverted lock nesting — `slots` held while acquiring
/// `state`, against the declared `state < slots`.
const POOL_INVERTED: &str = r#"
pub struct Pool {
    state: Mutex<State>,
    slots: Mutex<Vec<Slot>>,
}

impl Pool {
    fn acquire_in_order(&self) {
        let slots = self.slots.lock();
        let state = self.state.lock();
        use_both(state, slots);
    }
}
"#;

/// Mutation 2: group merge emitted straight out of HashMap iteration —
/// output row order now depends on hash seeding.
const EXEC_HASH_ORDER: &str = r#"
pub fn merge_groups(rows: Vec<(Key, Val)>) -> Vec<(Key, Val)> {
    let mut index: HashMap<Key, Val> = HashMap::new();
    for (key, val) in rows {
        index.insert(key, val);
    }
    let mut out: Vec<(Key, Val)> = Vec::new();
    for (key, val) in index {
        out.push((key, val));
    }
    out
}
"#;

/// Mutation 3: condvar wait guarded by a plain `if` — a spurious
/// wakeup or a missed signal races past the predicate.
const POOL_LOCKLESS_WAIT: &str = r#"
pub struct Pool {
    state: Mutex<State>,
    ready: Condvar,
}

impl Pool {
    fn wait_ready(&self) {
        let mut state = self.state.lock();
        if state.ready_count == 0 {
            self.ready.wait(&mut state);
        }
    }
}
"#;

const CANARIES: &[Canary] = &[
    Canary {
        name: "lock-inversion",
        expected_rule: "lock-cycle",
        mutation: ("crates/serve/src/pool.rs", POOL_INVERTED),
    },
    Canary {
        name: "hashmap-ordered-merge",
        expected_rule: "det-hash-iter",
        mutation: ("crates/sqlengine/src/exec.rs", EXEC_HASH_ORDER),
    },
    Canary {
        name: "lockless-predicate-wait",
        expected_rule: "condvar-wait-loop",
        mutation: ("crates/serve/src/pool.rs", POOL_LOCKLESS_WAIT),
    },
];

fn write_fixture(root: &Path, pool: &str, exec: &str) -> Result<(), String> {
    let files = [
        ("crates/serve/src/pool.rs", pool),
        ("crates/sqlengine/src/exec.rs", exec),
        ("crates/analyze/lock-order.txt", HIERARCHY),
        ("crates/analyze/det-ratchet.txt", DET_RATCHET),
    ];
    for (rel, contents) in files {
        let path = root.join(rel);
        let dir = path.parent().expect("fixture paths have parents");
        fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        fs::write(&path, contents).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(())
}

fn audit_fixture(root: &Path) -> Result<super::AuditOutcome, String> {
    run_audit(&AuditConfig::new(root), false)
}

/// Run the full canary sweep in a scratch directory. Every report must
/// pass ([`CanaryReport::passed`]) for the analyzer to be trusted.
pub fn run_canaries() -> Result<Vec<CanaryReport>, String> {
    let scratch = std::env::temp_dir().join(format!("tag-audit-canary-{}", std::process::id()));
    let result = run_canaries_in(&scratch);
    let _ = fs::remove_dir_all(&scratch);
    result
}

fn run_canaries_in(scratch: &Path) -> Result<Vec<CanaryReport>, String> {
    let mut reports = Vec::new();
    for canary in CANARIES {
        let root = scratch.join(canary.name);
        write_fixture(&root, POOL_BASE, EXEC_BASE)?;
        let base = audit_fixture(&root)?;
        let base_clean = base.is_clean();

        let (rel, mutated) = canary.mutation;
        fs::write(root.join(rel), mutated)
            .map_err(|e| format!("cannot write mutation {rel}: {e}"))?;
        let outcome = audit_fixture(&root)?;
        let caught = outcome
            .findings
            .iter()
            .any(|f| f.rule == canary.expected_rule);
        reports.push(CanaryReport {
            name: canary.name,
            expected_rule: canary.expected_rule,
            base_clean,
            caught,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_canaries_pass() {
        let scratch =
            std::env::temp_dir().join(format!("tag-audit-canary-unit-{}", std::process::id()));
        let reports = run_canaries_in(&scratch);
        let _ = fs::remove_dir_all(&scratch);
        let reports = reports.expect("canary sweep");
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.base_clean, "{}: clean fixture produced findings", r.name);
            assert!(
                r.caught,
                "{}: mutation not caught as {}",
                r.name, r.expected_rule
            );
        }
    }
}
