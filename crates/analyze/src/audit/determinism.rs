//! Determinism pass: result-producing executor paths must be
//! byte-deterministic.
//!
//! The serial == chunked == sharded == cached contract (DESIGN.md §15)
//! only holds if nothing order-dependent leaks into output rows or
//! merged partials. Two source-level signals are counted per file in
//! [`DET_PATHS`] and ratcheted in `det-ratchet.txt`:
//!
//! - **hash iteration** (`det-hash-iter`): any iteration over a
//!   binding whose declared or initialized type is `HashMap`/`HashSet`
//!   (`for … in map`, `.iter()`, `.keys()`, `.values()`, `.drain(`,
//!   …). Lookup (`get`/`contains_key`/`entry`/`insert`/`remove`) is
//!   fine — the executor's first-seen `order` vecs exist precisely so
//!   group output never depends on hash order.
//! - **ambient nondeterminism** (`det-ambient`): wall-clock reads,
//!   thread identity, randomness, core-count probes, and unordered
//!   channel drains (`.try_iter()`) in executor code.

use super::{AuditOutcome, FileScan};
use crate::scanner::{find_all, find_word};
use std::collections::BTreeSet;

/// Result-producing files covered by the determinism ratchet: the
/// serial executor and its partial-aggregate codec, the columnar
/// executor stack, and the shard scatter/merge path.
pub const DET_PATHS: &[&str] = &[
    "crates/shard/src/coordinator.rs",
    "crates/shard/src/lib.rs",
    "crates/sqlengine/src/chunk.rs",
    "crates/sqlengine/src/chunk_exec.rs",
    "crates/sqlengine/src/exec.rs",
    "crates/sqlengine/src/morsel.rs",
    "crates/sqlengine/src/partial.rs",
    "crates/sqlengine/src/scatter.rs",
    "crates/sqlengine/src/vector.rs",
];

/// Ambient-nondeterminism patterns counted in executor code.
const AMBIENT_PATTERNS: &[&str] = &[
    "Instant::now",
    "SystemTime::now",
    "thread::current",
    "ThreadId",
    "thread_rng",
    "rand::",
    "random(",
    "available_parallelism",
    ".try_iter(",
];

/// Hash-iteration method suffixes on a tracked binding.
const ITER_SUFFIXES: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

/// Count both signals for every determinism-path file in the scan set.
pub(crate) fn run(scans: &[FileScan], outcome: &mut AuditOutcome) {
    for scan in scans {
        if !DET_PATHS.contains(&scan.rel.as_str()) {
            continue;
        }
        outcome
            .hash_iter_counts
            .insert(scan.rel.clone(), hash_iteration_sites(&scan.code).len());
        outcome
            .ambient_counts
            .insert(scan.rel.clone(), ambient_sites(&scan.code));
    }
}

/// Count ambient-nondeterminism pattern hits. Patterns that begin with
/// an identifier character only match at a word boundary — `rand::`
/// must not fire inside `Operand::Col`.
pub(crate) fn ambient_sites(code: &str) -> usize {
    let bytes = code.as_bytes();
    AMBIENT_PATTERNS
        .iter()
        .map(|p| {
            let needs_boundary = p
                .as_bytes()
                .first()
                .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
            find_all(code, p)
                .into_iter()
                .filter(|&pos| {
                    !needs_boundary
                        || pos == 0
                        || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_')
                })
                .count()
        })
        .sum()
}

/// Bindings (lets, fields, params) whose annotated or initialized type
/// is `HashMap`/`HashSet`.
pub(crate) fn hash_bindings(code: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for word in ["HashMap", "HashSet"] {
        for pos in find_word(code, word) {
            if let Some(name) = binding_before(code, pos) {
                out.insert(name);
            }
        }
    }
    out
}

/// The binding a type occurrence at `pos` annotates or initializes:
/// `let [mut] name: Word` / `let name = Word::new()` / `name: Word` —
/// scanning back only to the nearest statement/field boundary, so
/// generic parameters and return types never capture a name.
fn binding_before(code: &str, pos: usize) -> Option<String> {
    let start = code[..pos]
        .rfind([';', '{', '}', '(', ','])
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut seg = code[start..pos].trim();
    // Strip reference sigils and an `=` initializer head off the end:
    // `let seen = HashSet::new()` has segment `let seen = `.
    loop {
        let t = seg.trim_end();
        seg = if let Some(s) = t.strip_suffix("&mut") {
            s
        } else if let Some(s) = t.strip_suffix(['&', '=']) {
            s
        } else {
            break;
        };
    }
    let seg = seg.trim_end();
    if let Some(after_let) = seg.strip_prefix("let ").or_else(|| {
        seg.strip_prefix("pub ")
            .and_then(|s| s.trim_start().strip_prefix("let "))
    }) {
        let mut tokens = after_let.split_whitespace();
        let mut first = tokens.next()?;
        if first == "mut" {
            first = tokens.next()?;
        }
        let name = first.trim_end_matches(':');
        return valid_ident(name).then(|| name.to_owned());
    }
    if let Some(anno) = seg.strip_suffix(':') {
        let name = anno.split_whitespace().last()?;
        return valid_ident(name).then(|| name.to_owned());
    }
    None
}

fn valid_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
        && !s.starts_with(|c: char| c.is_ascii_digit())
}

/// Byte offsets of iteration sites over hash-typed bindings.
pub(crate) fn hash_iteration_sites(code: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for name in hash_bindings(code) {
        for pos in find_word(code, &name) {
            let after = &code[pos + name.len()..];
            if ITER_SUFFIXES.iter().any(|s| after.starts_with(s)) {
                out.push(pos);
                continue;
            }
            if is_for_loop_head(code, pos) {
                out.push(pos);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Is the name occurrence at `pos` the iterated expression of a `for`
/// loop (`for pat in [&[mut]] [path.]name`)?
fn is_for_loop_head(code: &str, pos: usize) -> bool {
    let mut head = code[..pos].trim_end();
    // Strip a leading receiver path: `self.` / `state.groups` style.
    while let Some(h) = head.strip_suffix('.') {
        let cut = h
            .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
            .map(|i| i + 1)
            .unwrap_or(0);
        head = h[..cut].trim_end();
    }
    loop {
        let t = head.trim_end();
        head = if let Some(h) = t.strip_suffix("&mut") {
            h
        } else if let Some(h) = t.strip_suffix('&') {
            h
        } else {
            break;
        };
    }
    let head = head.trim_end();
    head.ends_with(" in") || head.ends_with(")in") || head == "in"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    fn sites(src: &str) -> usize {
        hash_iteration_sites(&scan_source(src).code).len()
    }

    #[test]
    fn bindings_from_lets_fields_and_params() {
        let src = "struct S { parts: HashMap<String, usize> }\n\
                   fn f(index: &HashMap<K, V>) {\n\
                       let mut groups: HashMap<K, V> = HashMap::new();\n\
                       let seen = HashSet::new();\n\
                       let n: usize = 0;\n\
                   }";
        let b = hash_bindings(&scan_source(src).code);
        let names: Vec<&str> = b.iter().map(String::as_str).collect();
        assert_eq!(names, vec!["groups", "index", "parts", "seen"]);
    }

    #[test]
    fn lookups_are_clean_iteration_is_counted() {
        let src = "fn f() {\n\
                   let mut groups: HashMap<K, V> = HashMap::new();\n\
                   groups.insert(k, v);\n\
                   let x = groups.get(&k);\n\
                   let y = groups.remove(&k);\n\
                   if groups.contains_key(&k) {}\n\
                   }";
        assert_eq!(sites(src), 0);
        let bad = "fn f(&self) {\n\
                   let mut groups: HashMap<K, V> = HashMap::new();\n\
                   for (k, v) in groups { out.push((k, v)); }\n\
                   for k in &self.groups { touch(k); }\n\
                   let keys: Vec<_> = groups.keys().collect();\n\
                   let total: u64 = groups.values().sum();\n\
                   groups.drain(..);\n\
                   }";
        // `groups` in the struct-field position `self.groups` counts
        // via the same binding name.
        assert_eq!(sites(bad), 5);
    }

    #[test]
    fn ambient_patterns_are_counted() {
        let src = "fn f() { let t = Instant::now(); let id = thread::current().id(); }";
        assert_eq!(ambient_sites(&scan_source(src).code), 2);
    }

    #[test]
    fn ambient_patterns_respect_word_boundaries() {
        let src = "fn f(op: Operand::Col) { operand::form(op); let r = rand::random(); }";
        // `Operand::` / `operand::` must not count as `rand::`; the real
        // `rand::` plus its `random(` call both do.
        assert_eq!(ambient_sites(&scan_source(src).code), 2);
    }

    #[test]
    fn generic_params_do_not_capture_bindings() {
        let src = "fn f() -> HashMap<K, V> { g::<HashMap<K, V>>() }";
        assert!(hash_bindings(&scan_source(src).code).is_empty());
    }
}
