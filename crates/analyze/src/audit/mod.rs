//! `tag-audit`: a multi-pass concurrency & determinism analyzer.
//!
//! Three passes over the concurrent crates (`serve`, `shard`,
//! `sqlengine`, `metrics`, `trace`), all on [`crate::scanner`]'s
//! blanked view of each source file:
//!
//! 1. **lock-order** ([`lockorder`]) — every `.lock()` acquisition
//!    site is mapped to a declared lock class
//!    (`crates/analyze/lock-order.txt`), guard extents are
//!    approximated from statement/block structure, and the observed
//!    held-while-acquiring edges are checked against the declared
//!    partial order: an unmapped site, an undeclared edge, or any
//!    cycle in the combined graph fails.
//! 2. **determinism** ([`determinism`]) — result-producing executor
//!    files must not iterate `HashMap`/`HashSet` (insert/lookup is
//!    fine; iteration order feeds output rows) nor consult ambient
//!    nondeterminism (time, thread identity, randomness, unordered
//!    channel draining). Counts are ratcheted per file in
//!    `crates/analyze/det-ratchet.txt`: existing sites are
//!    grandfathered, counts only go down.
//! 3. **liveness** ([`liveness`]) — serve/shard pool hygiene: condvar
//!    waits sit in a predicate loop, blocking channel sends never
//!    happen while holding a `no-send-held` lock (hub, caches), and
//!    shutdown paths release their senders before joining workers.
//!
//! The passes are textual approximations — receiver identifiers stand
//! in for lock objects and guard extents for dynamic hold windows — so
//! the declared hierarchy also carries edges the scanner cannot see
//! (e.g. scrape-time collector closures locking cache shards). See
//! DESIGN.md §15 for the contract.

pub mod canary;
pub mod determinism;
pub mod hierarchy;
pub mod liveness;
pub mod lockorder;

use crate::scanner::{blank_ranges, fn_spans, scan_source, test_ranges, FnSpan};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Crate source prefixes in audit scope.
pub const AUDIT_CRATES: &[&str] = &[
    "crates/metrics/src/",
    "crates/serve/src/",
    "crates/shard/src/",
    "crates/sqlengine/src/",
    "crates/trace/src/",
];

/// Audit configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Workspace root (the directory containing `crates/`).
    pub root: PathBuf,
    /// Declared lock hierarchy, relative to `root`.
    pub hierarchy_path: PathBuf,
    /// Determinism ratchet baseline, relative to `root`.
    pub ratchet_path: PathBuf,
}

impl AuditConfig {
    /// Config rooted at `root` with the committed data-file paths.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        AuditConfig {
            root: root.into(),
            hierarchy_path: PathBuf::from("crates/analyze/lock-order.txt"),
            ratchet_path: PathBuf::from("crates/analyze/det-ratchet.txt"),
        }
    }
}

/// One audit violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// Rule id (`lock-undeclared`, `lock-edge-undeclared`,
    /// `lock-cycle`, `det-hash-iter`, `det-ambient`,
    /// `condvar-wait-loop`, `send-under-lock`, `join-before-close`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line (0 for whole-file findings).
    pub line: usize,
    /// Enclosing function name, when resolvable.
    pub function: String,
    /// What went wrong.
    pub message: String,
}

/// Result of an audit run. Every aggregate is keyed and ordered
/// deterministically (BTree containers, findings sorted), so the JSON
/// rendering is byte-stable regardless of input file order.
#[derive(Debug, Clone, Default)]
pub struct AuditOutcome {
    /// Violations, ordered by (file, line, rule).
    pub findings: Vec<AuditFinding>,
    /// Acquisition-site counts per declared lock class.
    pub lock_classes: BTreeMap<String, usize>,
    /// Observed held-while-acquiring edges; the value records whether
    /// the edge is covered by the declared order.
    pub lock_edges: BTreeMap<(String, String), bool>,
    /// Hash-container iteration counts per determinism-path file.
    pub hash_iter_counts: BTreeMap<String, usize>,
    /// Ambient-nondeterminism counts per determinism-path file.
    pub ambient_counts: BTreeMap<String, usize>,
    /// Condvar wait sites checked by the liveness pass.
    pub condvar_waits: usize,
    /// Blocking send sites checked against held locks.
    pub sends_checked: usize,
    /// Functions checked for sender-release-before-join.
    pub joins_checked: usize,
    /// Files in audit scope that were scanned.
    pub files_scanned: usize,
}

impl AuditOutcome {
    /// True when no pass fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serialize the current determinism counts in ratchet-file format.
    pub fn ratchet_text(&self) -> String {
        let mut out = String::from(
            "# tag-audit determinism ratchet: per-file counts of HashMap/HashSet\n\
             # iteration (hash-iter:) and ambient nondeterminism (ambient:) in\n\
             # result-producing executor files. Counts may only go down; regenerate\n\
             # with `tag-audit --update`. A file absent from this list has limit 0.\n",
        );
        for (file, count) in &self.hash_iter_counts {
            let _ = writeln!(out, "hash-iter:{file} {count}");
        }
        for (file, count) in &self.ambient_counts {
            let _ = writeln!(out, "ambient:{file} {count}");
        }
        out
    }

    /// Render the audit report as deterministic, pretty-printed JSON.
    /// Summary sections carry counts only (no line numbers), so the
    /// committed golden stays byte-stable across unrelated edits as
    /// long as the workspace audits clean.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"version\": 1,");
        let _ = writeln!(o, "  \"files_scanned\": {},", self.files_scanned);
        o.push_str("  \"lock_classes\": [");
        join_objects(&mut o, self.lock_classes.iter(), |o, (class, sites)| {
            let _ = write!(o, "{{\"class\": \"{}\", \"sites\": {sites}}}", esc(class));
        });
        o.push_str("],\n  \"lock_edges\": [");
        join_objects(
            &mut o,
            self.lock_edges.iter(),
            |o, ((from, to), declared)| {
                let _ = write!(
                    o,
                    "{{\"from\": \"{}\", \"to\": \"{}\", \"declared\": {declared}}}",
                    esc(from),
                    esc(to)
                );
            },
        );
        o.push_str("],\n  \"hash_iter\": [");
        join_objects(&mut o, self.hash_iter_counts.iter(), |o, (file, count)| {
            let _ = write!(o, "{{\"file\": \"{}\", \"count\": {count}}}", esc(file));
        });
        o.push_str("],\n  \"ambient\": [");
        join_objects(&mut o, self.ambient_counts.iter(), |o, (file, count)| {
            let _ = write!(o, "{{\"file\": \"{}\", \"count\": {count}}}", esc(file));
        });
        o.push_str("],\n");
        let _ = writeln!(
            o,
            "  \"liveness\": {{\"condvar_waits\": {}, \"sends_checked\": {}, \
             \"joins_checked\": {}}},",
            self.condvar_waits, self.sends_checked, self.joins_checked
        );
        o.push_str("  \"findings\": [");
        join_objects(&mut o, self.findings.iter(), |o, f| {
            let _ = write!(
                o,
                "{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"function\": \"{}\", \"message\": \"{}\"}}",
                f.rule,
                esc(&f.file),
                f.line,
                esc(&f.function),
                esc(&f.message)
            );
        });
        o.push_str("]\n}\n");
        o
    }
}

/// Write a comma-joined, indented array body of rendered objects.
fn join_objects<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    mut render: impl FnMut(&mut String, T),
) {
    let mut any = false;
    for item in items {
        out.push_str(if any { ",\n    " } else { "\n    " });
        render(out, item);
        any = true;
    }
    if any {
        out.push_str("\n  ");
    }
}

/// Escape a string for JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One audited source file: blanked code (tests excluded) plus its
/// function spans.
pub(crate) struct FileScan {
    pub(crate) rel: String,
    pub(crate) code: String,
    pub(crate) fns: Vec<FnSpan>,
}

impl FileScan {
    /// The innermost enclosing function name at `pos`, or `""`.
    pub(crate) fn fn_at(&self, pos: usize) -> String {
        crate::scanner::enclosing_fn(&self.fns, pos)
            .map(|f| f.name.clone())
            .unwrap_or_default()
    }
}

/// Load a ratchet baseline (`key count` lines, `#` comments).
pub(crate) fn load_ratchet(path: &Path) -> Result<BTreeMap<String, usize>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(key), Some(count)) = (parts.next(), parts.next()) else {
            return Err(format!("malformed ratchet line: {line:?}"));
        };
        let count: usize = count
            .parse()
            .map_err(|e| format!("malformed ratchet count in {line:?}: {e}"))?;
        out.insert(key.to_owned(), count);
    }
    Ok(out)
}

/// Run all three audit passes over the workspace. With `update`, the
/// determinism ratchet baseline is rewritten to the current counts.
pub fn run_audit(config: &AuditConfig, update: bool) -> Result<AuditOutcome, String> {
    let files = crate::lint::workspace_sources(&config.root)?;
    run_audit_files(config, update, files)
}

/// [`run_audit`] over an explicit file list (workspace-relative paths).
/// The list is sorted and deduplicated internally, so the outcome —
/// including the JSON rendering — is independent of input order.
pub fn run_audit_files(
    config: &AuditConfig,
    update: bool,
    mut files: Vec<String>,
) -> Result<AuditOutcome, String> {
    files.sort();
    files.dedup();
    let hierarchy = hierarchy::Hierarchy::load(&config.root.join(&config.hierarchy_path))?;
    let mut outcome = AuditOutcome::default();

    let mut scans = Vec::new();
    for rel in files {
        if !AUDIT_CRATES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let path = config.root.join(&rel);
        let src = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let scanned = scan_source(&src);
        let code = blank_ranges(&scanned.code, &test_ranges(&scanned.code));
        let fns = fn_spans(&code);
        scans.push(FileScan { rel, code, fns });
    }
    outcome.files_scanned = scans.len();

    let acquisitions = lockorder::run(&scans, &hierarchy, &mut outcome);
    liveness::run(&scans, &hierarchy, &acquisitions, &mut outcome);
    determinism::run(&scans, &mut outcome);

    // Determinism ratchet: compare against (or rewrite) the baseline.
    let ratchet_file = config.root.join(&config.ratchet_path);
    if update {
        fs::write(&ratchet_file, outcome.ratchet_text())
            .map_err(|e| format!("cannot write {}: {e}", ratchet_file.display()))?;
    } else {
        let baseline = load_ratchet(&ratchet_file)?;
        for (file, &count) in &outcome.hash_iter_counts {
            let limit = baseline
                .get(&format!("hash-iter:{file}"))
                .copied()
                .unwrap_or(0);
            if count > limit {
                outcome.findings.push(AuditFinding {
                    rule: "det-hash-iter",
                    file: file.clone(),
                    line: 0,
                    function: String::new(),
                    message: format!(
                        "{count} HashMap/HashSet iteration sites exceed the ratchet \
                         baseline of {limit}; iteration order must not feed output \
                         rows or merged partials — key by a first-seen order vec or \
                         sort before emitting"
                    ),
                });
            }
        }
        for (file, &count) in &outcome.ambient_counts {
            let limit = baseline
                .get(&format!("ambient:{file}"))
                .copied()
                .unwrap_or(0);
            if count > limit {
                outcome.findings.push(AuditFinding {
                    rule: "det-ambient",
                    file: file.clone(),
                    line: 0,
                    function: String::new(),
                    message: format!(
                        "{count} ambient-nondeterminism sites (time, thread identity, \
                         randomness, unordered channel drains) exceed the ratchet \
                         baseline of {limit} in a result-producing path"
                    ),
                });
            }
        }
    }

    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(outcome)
}
