//! Parser for the declared lock hierarchy (`lock-order.txt`).
//!
//! Line-oriented, `#` comments. Directives:
//!
//! ```text
//! class <name> = <file>:<ident>[,<ident>...]
//! attr <name> <attribute>
//! order <a> < <b>
//! ignore <file>:<ident>
//! ```
//!
//! `class` maps receiver identifiers in one file to a lock class
//! (repeatable — a class may span files). `attr` attaches a named
//! attribute (currently `no-send-held`: blocking channel sends are
//! forbidden while a lock of this class is held). `order a < b`
//! declares that a lock of class `a` may be held while acquiring class
//! `b`; the permitted-edge relation is the transitive closure, and the
//! declared order itself must be acyclic. `ignore` exempts one
//! receiver in one file from class resolution (e.g. `stdin.lock()`,
//! which is not a mutex).

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

/// Attribute marking classes that forbid blocking sends while held.
pub const NO_SEND_HELD: &str = "no-send-held";

/// The parsed, validated lock hierarchy.
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    /// (file, receiver ident) → class name.
    pub map: BTreeMap<(String, String), String>,
    /// All declared class names.
    pub classes: BTreeSet<String>,
    /// Class → attribute set.
    pub attrs: BTreeMap<String, BTreeSet<String>>,
    /// Declared order edges (`a` may be held while acquiring `b`).
    pub order: Vec<(String, String)>,
    /// (file, receiver ident) pairs exempt from resolution.
    pub ignores: BTreeSet<(String, String)>,
}

impl Hierarchy {
    /// Load and validate a hierarchy file.
    pub fn load(path: &Path) -> Result<Hierarchy, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Parse and validate hierarchy text.
    pub fn parse(text: &str) -> Result<Hierarchy, String> {
        let mut h = Hierarchy::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("lock-order.txt:{}: {what}: {line:?}", idx + 1);
            let mut words = line.split_whitespace();
            match words.next() {
                Some("class") => {
                    let rest = line["class".len()..].trim();
                    let (name, target) = rest
                        .split_once('=')
                        .ok_or_else(|| err("expected `class <name> = <file>:<idents>`"))?;
                    let name = name.trim().to_owned();
                    let (file, idents) = target
                        .trim()
                        .rsplit_once(':')
                        .ok_or_else(|| err("expected `<file>:<ident>[,<ident>...]`"))?;
                    for ident in idents.split(',') {
                        let ident = ident.trim();
                        if ident.is_empty() {
                            return Err(err("empty receiver ident"));
                        }
                        let key = (file.trim().to_owned(), ident.to_owned());
                        if let Some(prev) = h.map.get(&key) {
                            if prev != &name {
                                return Err(err(&format!(
                                    "receiver already mapped to class {prev}"
                                )));
                            }
                        }
                        h.map.insert(key, name.clone());
                    }
                    h.classes.insert(name);
                }
                Some("attr") => {
                    let (Some(name), Some(attr), None) = (words.next(), words.next(), words.next())
                    else {
                        return Err(err("expected `attr <class> <attribute>`"));
                    };
                    h.attrs
                        .entry(name.to_owned())
                        .or_default()
                        .insert(attr.to_owned());
                }
                Some("order") => {
                    let (Some(a), Some(lt), Some(b), None) =
                        (words.next(), words.next(), words.next(), words.next())
                    else {
                        return Err(err("expected `order <a> < <b>`"));
                    };
                    if lt != "<" {
                        return Err(err("expected `<` between classes"));
                    }
                    h.order.push((a.to_owned(), b.to_owned()));
                }
                Some("ignore") => {
                    let rest = line["ignore".len()..].trim();
                    let (file, ident) = rest
                        .rsplit_once(':')
                        .ok_or_else(|| err("expected `ignore <file>:<ident>`"))?;
                    h.ignores.insert((file.to_owned(), ident.to_owned()));
                }
                _ => return Err(err("unknown directive")),
            }
        }
        h.validate()?;
        Ok(h)
    }

    fn validate(&self) -> Result<(), String> {
        for (a, b) in &self.order {
            for name in [a, b] {
                if !self.classes.contains(name) {
                    return Err(format!("order references undeclared class {name}"));
                }
            }
        }
        for name in self.attrs.keys() {
            if !self.classes.contains(name) {
                return Err(format!("attr references undeclared class {name}"));
            }
        }
        let permitted = self.permitted_edges();
        for class in &self.classes {
            if permitted.contains(&(class.clone(), class.clone())) {
                return Err(format!(
                    "declared lock order contains a cycle through {class}"
                ));
            }
        }
        Ok(())
    }

    /// Transitive closure of the declared order edges.
    pub fn permitted_edges(&self) -> BTreeSet<(String, String)> {
        let mut closed: BTreeSet<(String, String)> = self.order.iter().cloned().collect();
        loop {
            let mut added = Vec::new();
            for (a, b) in &closed {
                for (c, d) in &closed {
                    if b == c && !closed.contains(&(a.clone(), d.clone())) {
                        added.push((a.clone(), d.clone()));
                    }
                }
            }
            if added.is_empty() {
                return closed;
            }
            closed.extend(added);
        }
    }

    /// True when `class` carries `attr`.
    pub fn has_attr(&self, class: &str, attr: &str) -> bool {
        self.attrs.get(class).is_some_and(|set| set.contains(attr))
    }

    /// Resolve a (file, receiver) acquisition site to its class.
    pub fn class_of(&self, file: &str, ident: &str) -> Option<&str> {
        self.map
            .get(&(file.to_owned(), ident.to_owned()))
            .map(String::as_str)
    }

    /// True when a (file, receiver) site is exempt.
    pub fn is_ignored(&self, file: &str, ident: &str) -> bool {
        self.ignores.contains(&(file.to_owned(), ident.to_owned()))
    }
}

/// Find one cycle in the union of declared and observed edges, if any,
/// as the list of classes along the cycle (first element repeated at
/// the end).
pub fn find_cycle(edges: &BTreeSet<(String, String)>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default();
    }
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys() {
        if done.contains(start) {
            continue;
        }
        // Iterative DFS; each stack frame is (node, next-successor
        // index). `path` mirrors the stack for cycle extraction.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut on_path: BTreeSet<&str> = [start].into_iter().collect();
        while let Some((node, next)) = stack.last().copied() {
            let succs = &adj[node];
            if next < succs.len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let succ = succs[next];
                if on_path.contains(succ) {
                    let at = stack.iter().position(|&(n, _)| n == succ).expect("on path");
                    let mut cycle: Vec<String> =
                        stack[at..].iter().map(|&(n, _)| n.to_owned()).collect();
                    cycle.push(succ.to_owned());
                    return Some(cycle);
                }
                if !done.contains(succ) {
                    stack.push((succ, 0));
                    on_path.insert(succ);
                }
            } else {
                stack.pop();
                on_path.remove(node);
                done.insert(node);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_directives() {
        let h = Hierarchy::parse(
            "# comment\n\
             class a.state = crates/x/src/a.rs:state,inner\n\
             class a.slots = crates/x/src/a.rs:slots\n\
             attr a.slots no-send-held\n\
             order a.state < a.slots\n\
             ignore crates/x/src/bin/cli.rs:stdin\n",
        )
        .expect("parse");
        assert_eq!(h.class_of("crates/x/src/a.rs", "inner"), Some("a.state"));
        assert!(h.has_attr("a.slots", NO_SEND_HELD));
        assert!(h.is_ignored("crates/x/src/bin/cli.rs", "stdin"));
        assert!(h
            .permitted_edges()
            .contains(&("a.state".into(), "a.slots".into())));
    }

    #[test]
    fn transitive_closure_and_cycle_rejection() {
        let h = Hierarchy::parse(
            "class a = f.rs:a\nclass b = f.rs:b\nclass c = f.rs:c\n\
             order a < b\norder b < c\n",
        )
        .expect("parse");
        assert!(h.permitted_edges().contains(&("a".into(), "c".into())));

        let cyclic =
            Hierarchy::parse("class a = f.rs:a\nclass b = f.rs:b\norder a < b\norder b < a\n");
        assert!(cyclic.is_err());
    }

    #[test]
    fn find_cycle_reports_the_loop() {
        let edges: BTreeSet<(String, String)> = [
            ("a".to_owned(), "b".to_owned()),
            ("b".to_owned(), "c".to_owned()),
            ("c".to_owned(), "a".to_owned()),
        ]
        .into_iter()
        .collect();
        let cycle = find_cycle(&edges).expect("cycle");
        assert_eq!(cycle.len(), 4);
        assert_eq!(cycle.first(), cycle.last());
        assert!(find_cycle(&[("a".to_owned(), "b".to_owned())].into_iter().collect()).is_none());
    }
}
