//! Liveness pass for the serve/shard pools.
//!
//! Three rules, scoped to `crates/serve/src/` and `crates/shard/src/`:
//!
//! - **`condvar-wait-loop`** — a `.wait(`/`.wait_until(`/
//!   `.wait_timeout(` on a field declared `: Condvar` in the same file
//!   must sit inside a `loop`/`while` scope of its enclosing function:
//!   condvar wakeups are spurious and racy, so the predicate must be
//!   re-checked. `.wait_while(`/`.wait_timeout_while(` carry their
//!   predicate and are exempt.
//! - **`send-under-lock`** — a blocking `.send(` must not execute
//!   inside the held extent of a lock class carrying the
//!   `no-send-held` attribute (hub, caches, trace stores): a full
//!   bounded channel would park the sender while every other user of
//!   that lock blocks behind it. `.try_send(` is always allowed.
//! - **`join-before-close`** — a function that `.join()`s worker
//!   handles and mentions a channel sender (`tx`-style idents or
//!   `*sender*`) must release the sender (`= None`, `drop(…)`,
//!   `take(…)`) before the first join, or the workers' `recv()` loops
//!   never see the hangup and the join deadlocks.

use super::hierarchy::{Hierarchy, NO_SEND_HELD};
use super::lockorder::Acquisition;
use super::{AuditFinding, AuditOutcome, FileScan};
use crate::scanner::{enclosing_fn, find_all, find_word, line_of, receiver_ident, scope_openers};

/// Crate prefixes the liveness pass covers.
const LIVE_PREFIXES: &[&str] = &["crates/serve/src/", "crates/shard/src/"];

/// Wait methods that need an enclosing predicate loop.
const WAIT_METHODS: &[&str] = &[".wait(", ".wait_until(", ".wait_timeout("];

/// Run the liveness rules.
pub(crate) fn run(
    scans: &[FileScan],
    hierarchy: &Hierarchy,
    acquisitions: &[Acquisition],
    outcome: &mut AuditOutcome,
) {
    for (file_idx, scan) in scans.iter().enumerate() {
        if !LIVE_PREFIXES.iter().any(|p| scan.rel.starts_with(p)) {
            continue;
        }
        check_condvar_waits(scan, outcome);
        check_sends(file_idx, scan, hierarchy, acquisitions, outcome);
        check_joins(scan, outcome);
    }
}

/// Field names annotated `: Condvar` (with or without a module path
/// prefix) in this file.
fn condvar_fields(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    for pos in find_word(code, "Condvar") {
        // Walk back over a possible module path (`parking_lot::`,
        // `std::sync::`) to the annotation colon, then take the field
        // name before it. `Condvar::new()` value positions have no
        // trailing annotation colon and are skipped.
        let mut head = code[..pos].trim_end();
        while head.ends_with("::") {
            head = head[..head.len() - 2].trim_end();
            let cut = head
                .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
                .map(|i| i + 1)
                .unwrap_or(0);
            head = head[..cut].trim_end();
        }
        let Some(anno) = head.strip_suffix(':') else {
            continue;
        };
        let anno = anno.trim_end();
        let cut = anno
            .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
            .map(|i| i + 1)
            .unwrap_or(0);
        let name = &anno[cut..];
        if !name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit()) {
            out.push(name.to_owned());
        }
    }
    out.sort();
    out.dedup();
    out
}

fn check_condvar_waits(scan: &FileScan, outcome: &mut AuditOutcome) {
    let code = &scan.code;
    let fields = condvar_fields(code);
    if fields.is_empty() {
        return;
    }
    for method in WAIT_METHODS {
        for pos in find_all(code, method) {
            let Some(recv) = receiver_ident(code, pos) else {
                continue;
            };
            if !fields.contains(&recv) {
                continue;
            }
            outcome.condvar_waits += 1;
            let Some(f) = enclosing_fn(&scan.fns, pos) else {
                continue;
            };
            let scopes = scope_openers(code, f.body_start, pos);
            if !scopes.iter().any(|k| k == "loop" || k == "while") {
                outcome.findings.push(AuditFinding {
                    rule: "condvar-wait-loop",
                    file: scan.rel.clone(),
                    line: line_of(code, pos),
                    function: f.name.clone(),
                    message: format!(
                        "condvar `{recv}` waited on outside a predicate loop; wrap the \
                         wait in `loop`/`while` re-checking the condition (wakeups are \
                         spurious), or use wait_while"
                    ),
                });
            }
        }
    }
}

fn check_sends(
    file_idx: usize,
    scan: &FileScan,
    hierarchy: &Hierarchy,
    acquisitions: &[Acquisition],
    outcome: &mut AuditOutcome,
) {
    let code = &scan.code;
    for pos in find_all(code, ".send(") {
        outcome.sends_checked += 1;
        for acq in acquisitions {
            if acq.file_idx != file_idx || pos <= acq.pos || pos >= acq.span_end {
                continue;
            }
            let Some(class) = &acq.class else { continue };
            if hierarchy.has_attr(class, NO_SEND_HELD) {
                outcome.findings.push(AuditFinding {
                    rule: "send-under-lock",
                    file: scan.rel.clone(),
                    line: line_of(code, pos),
                    function: scan.fn_at(pos),
                    message: format!(
                        "blocking send while holding {class} ({NO_SEND_HELD}); a full \
                         channel would park this thread with the lock held — release \
                         the guard first or use try_send"
                    ),
                });
            }
        }
    }
}

/// True when `ident` names a channel sender by convention.
fn is_sender_ident(ident: &str) -> bool {
    ident == "tx"
        || ident.ends_with("_tx")
        || ident.starts_with("tx_")
        || ident.to_ascii_lowercase().contains("sender")
}

fn check_joins(scan: &FileScan, outcome: &mut AuditOutcome) {
    let code = &scan.code;
    let joins = find_all(code, ".join()");
    if joins.is_empty() {
        return;
    }
    // Outermost functions containing a join; nested helpers are part
    // of their parent's shutdown story.
    let mut checked: Vec<(usize, usize)> = Vec::new();
    for &join in &joins {
        let Some(f) = enclosing_fn(&scan.fns, join) else {
            continue;
        };
        let outer = scan
            .fns
            .iter()
            .filter(|o| o.body_start <= join && join < o.body_end)
            .max_by_key(|o| o.body_end - o.body_start)
            .unwrap_or(f);
        if checked.contains(&(outer.body_start, outer.body_end)) {
            continue;
        }
        checked.push((outer.body_start, outer.body_end));
        outcome.joins_checked += 1;
        let body = &code[outer.body_start..outer.body_end];
        let sender_mentions: Vec<usize> = senders_in(body);
        if sender_mentions.is_empty() {
            continue;
        }
        let first_join = joins
            .iter()
            .filter(|&&j| j >= outer.body_start && j < outer.body_end)
            .min()
            .copied()
            .expect("outer contains a join")
            - outer.body_start;
        if !releases_sender_before(body, first_join) {
            outcome.findings.push(AuditFinding {
                rule: "join-before-close",
                file: scan.rel.clone(),
                line: line_of(code, outer.body_start + first_join),
                function: outer.name.clone(),
                message: "worker handles joined while a channel sender is still alive; \
                          drop or take the sender first so receivers observe hangup \
                          and the join can complete"
                    .to_owned(),
            });
        }
    }
}

/// Offsets of sender-conventional identifiers in `body`.
fn senders_in(body: &str) -> Vec<usize> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            if is_sender_ident(&body[start..i]) {
                out.push(start);
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Does `body[..join]` release a sender (`= None` assignment, `drop(`,
/// or `take(` mentioning a sender ident nearby)?
fn releases_sender_before(body: &str, join: usize) -> bool {
    let head = &body[..join];
    for pos in find_all(head, "= None") {
        let context = &head[pos.saturating_sub(80)..pos];
        if senders_in(context).is_empty() {
            continue;
        }
        return true;
    }
    for pat in ["drop(", "take("] {
        for pos in find_all(head, pat) {
            let end = (pos + 80).min(head.len());
            if !senders_in(&head[pos..end]).is_empty() {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{fn_spans, scan_source};

    fn scan(rel: &str, src: &str) -> FileScan {
        let s = scan_source(src);
        let fns = fn_spans(&s.code);
        FileScan {
            rel: rel.to_owned(),
            code: s.code,
            fns,
        }
    }

    fn run_one(src: &str, hier: &str) -> AuditOutcome {
        let scans = vec![scan("crates/serve/src/pool.rs", src)];
        let h = Hierarchy::parse(hier).expect("hierarchy");
        let mut out = AuditOutcome::default();
        let acqs = super::super::lockorder::run(&scans, &h, &mut out);
        run(&scans, &h, &acqs, &mut out);
        out
    }

    #[test]
    fn condvar_fields_are_detected() {
        let code = "struct S { ready: Condvar, arrived: parking_lot::Condvar, n: usize }";
        assert_eq!(condvar_fields(code), vec!["arrived", "ready"]);
    }

    #[test]
    fn wait_outside_loop_is_flagged() {
        let src = "struct S { ready: Condvar }\n\
                   fn bad(&self) { let mut g = self.m.lock(); if !*g { self.ready.wait(&mut g); } }\n\
                   fn good(&self) { let mut g = self.m.lock(); loop { if *g { return; } self.ready.wait(&mut g); } }\n\
                   fn exempt(&self) { let mut g = self.m.lock(); self.ready.wait_while(&mut g, |d| !*d); }";
        let out = run_one(src, "class m = crates/serve/src/pool.rs:m\n");
        let waits: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == "condvar-wait-loop")
            .collect();
        assert_eq!(waits.len(), 1, "{:?}", out.findings);
        assert_eq!(waits[0].function, "bad");
        assert_eq!(out.condvar_waits, 2);
    }

    #[test]
    fn blocking_send_under_no_send_held_lock_is_flagged() {
        let src = "fn f(&self) { let g = self.entries.lock(); self.tx.send(job); }\n\
                   fn ok(&self) { let g = self.entries.lock(); let _ = self.tx.try_send(job); }\n\
                   fn also_ok(&self) { self.tx.send(job); }";
        let out = run_one(
            src,
            "class cache = crates/serve/src/pool.rs:entries\n\
             attr cache no-send-held\n\
             ignore crates/serve/src/pool.rs:tx\n",
        );
        let sends: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == "send-under-lock")
            .collect();
        assert_eq!(sends.len(), 1, "{:?}", out.findings);
        assert_eq!(sends[0].function, "f");
    }

    #[test]
    fn join_without_sender_release_is_flagged() {
        let bad = "fn shutdown(&self) { for w in self.workers_tx_users() { let _ = w.join(); } let tx = &self.tx; }";
        let out = run_one(bad, "");
        assert!(out.findings.iter().any(|f| f.rule == "join-before-close"));

        let good =
            "fn shutdown(&self) { *self.tx.lock() = None; for w in ws { let _ = w.join(); } }";
        let out = run_one(good, "ignore crates/serve/src/pool.rs:tx\n");
        assert!(
            !out.findings.iter().any(|f| f.rule == "join-before-close"),
            "{:?}",
            out.findings
        );

        let no_channels = "fn wait_all(&self) { for w in ws { let _ = w.join(); } }";
        let out = run_one(no_channels, "");
        assert!(out.is_clean(), "{:?}", out.findings);
    }
}
