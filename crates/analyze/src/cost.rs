//! Static LM-cost bounds over semantic plans.
//!
//! [`plan_cost`] computes, from the IR and the catalog alone, an upper
//! bound on the number of LM prompts a plan can *submit*. The engine's
//! prompt cache can only reduce the calls that reach the LM, so the
//! bound also dominates `lm.calls()` actuals — which is exactly what
//! `trace-report` cross-checks against traces.
//!
//! The per-operator model mirrors `tag_semops::ops` (the bound is a
//! documented contract of that module; its tests and the CI cross-check
//! keep the two in sync):
//!
//! | node            | prompts submitted                    | output rows       |
//! |-----------------|--------------------------------------|-------------------|
//! | `Scan`          | 0                                    | catalog row count |
//! | `Input`         | 0                                    | `rows.len()`      |
//! | `Predicate`     | 0                                    | ≤ n               |
//! | `Cut`           | 0                                    | min(n, k)         |
//! | `SemFilter`     | ≤ n (row-wise, distinct, early-stop) | n / min(n, k)     |
//! | `SemTopK`       | ≤ C(n,2) + C(w,2), w = min(n, max(k, 20)) | min(n, k)    |
//! | `SemAgg`        | ≤ 2n + 1 (hierarchical fold)         | 1                 |
//! | `SemMap`        | n                                    | n                 |
//! | `SemJoin`       | |L| · |R|                            | ≤ |L| · |R|       |
//! | `Retrieve`      | 0                                    | k                 |
//! | `Rerank`        | n (one relevance score each)         | min(n, keep)      |
//! | `Generate`      | 1 (list/free); ≤ 2n + 1 (free\|agg)  | 1                 |
//!
//! All row counts are themselves upper bounds, and every per-operator
//! bound is monotone in its input cardinality, so the composition is a
//! sound upper bound for the whole tree.

use crate::verifier::SchemaSource;
use tag_sql::{GenFormat, SemNode};

/// Assumed base-table cardinality when the schema source has no row
/// count for a scanned table (e.g. verification without a database).
pub const DEFAULT_SCAN_ROWS: u64 = 1000;

/// `sem_topk`'s Borda cutover (`tag_semops::ops::BORDA_LIMIT`): inputs
/// larger than this quickselect down to `max(k, 20)` before ranking.
const BORDA_LIMIT: u64 = 40;

/// A static upper bound on a plan subtree's LM cost and output size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostBound {
    /// Upper bound on LM prompts submitted by this subtree.
    pub lm_calls: u64,
    /// Upper bound on rows the subtree can produce.
    pub out_rows: u64,
}

impl CostBound {
    /// Loose token upper bound: every prompt and completion fits the
    /// model's context window, so `calls × window` dominates both
    /// prompt and completion tokens (each, not summed).
    pub fn token_bound(&self, context_window: u64) -> u64 {
        self.lm_calls.saturating_mul(context_window)
    }
}

/// Unordered pairs C(n, 2) — the pairwise-comparison prompt count.
fn pairs(n: u64) -> u64 {
    n.saturating_mul(n.saturating_sub(1)) / 2
}

/// Upper bound on `sem_topk` prompts for `n` input rows, keeping `k`.
///
/// `n ≤ 1` or `k == 0` short-circuits with no prompts. Otherwise the
/// quickselect pre-pass (taken when `n > BORDA_LIMIT` and `k < n`)
/// compares at most `pool − 1` pairs per round against the pivot, which
/// telescopes to at most C(n,2) in the worst case, and the Borda pass
/// ranks the kept `w = min(n, max(k, 20))` values exactly with C(w,2)
/// prompts. Small inputs skip quickselect and Borda-rank all n.
pub fn topk_call_bound(n: u64, k: u64) -> u64 {
    if n <= 1 || k == 0 {
        return 0;
    }
    let mut bound = pairs(n);
    if n > BORDA_LIMIT && k < n {
        let w = n.min(k.max(BORDA_LIMIT / 2));
        bound = bound.saturating_add(pairs(w));
    }
    bound
}

/// Prompt bound for a `Generate` node over `n` rows.
fn generate_call_bound(format: &GenFormat, n: u64) -> u64 {
    match format {
        // One prompt, which may fail on context overflow but is still
        // the only submission.
        GenFormat::List | GenFormat::Free => 1,
        // One prompt when the table fits the window, else the
        // hierarchical `sem_agg` fold: ≤ n chunk prompts across all
        // rounds of a halving recursion (≤ 2n total) plus the final
        // fold call.
        GenFormat::FreeOrAgg => n.saturating_mul(2).saturating_add(1).max(1),
    }
}

/// Compute the static LM-cost bound of a plan bottom-up.
///
/// `schema` supplies base-table cardinalities; scans of tables it does
/// not know fall back to [`DEFAULT_SCAN_ROWS`].
pub fn plan_cost(root: &SemNode, schema: &dyn SchemaSource) -> CostBound {
    match root {
        SemNode::Scan { table } => CostBound {
            lm_calls: 0,
            out_rows: schema
                .table_rows(table)
                .map(|n| n as u64)
                .unwrap_or(DEFAULT_SCAN_ROWS),
        },
        SemNode::Input { rows, .. } => CostBound {
            lm_calls: 0,
            out_rows: rows.len() as u64,
        },
        SemNode::Predicate { input, .. } => plan_cost(input, schema),
        SemNode::Cut { input, cut } => {
            let c = plan_cost(input, schema);
            CostBound {
                lm_calls: c.lm_calls,
                out_rows: c.out_rows.min(cut.k as u64),
            }
        }
        SemNode::SemFilter {
            input, early_stop, ..
        } => {
            let c = plan_cost(input, schema);
            // Row-wise judges every row; distinct judges every distinct
            // value (≤ n); early-stop judges distinct values in sorted
            // order until k survive (≤ n). All bounded by input rows.
            CostBound {
                lm_calls: c.lm_calls.saturating_add(c.out_rows),
                out_rows: match early_stop {
                    Some(cut) => c.out_rows.min(cut.k as u64),
                    None => c.out_rows,
                },
            }
        }
        SemNode::SemTopK { input, k, .. } => {
            let c = plan_cost(input, schema);
            CostBound {
                lm_calls: c
                    .lm_calls
                    .saturating_add(topk_call_bound(c.out_rows, *k as u64)),
                out_rows: c.out_rows.min(*k as u64),
            }
        }
        SemNode::SemAgg { input, .. } => {
            let c = plan_cost(input, schema);
            CostBound {
                lm_calls: c
                    .lm_calls
                    .saturating_add(c.out_rows.saturating_mul(2).saturating_add(1)),
                out_rows: 1,
            }
        }
        SemNode::SemMap { input, .. } => {
            let c = plan_cost(input, schema);
            CostBound {
                lm_calls: c.lm_calls.saturating_add(c.out_rows),
                out_rows: c.out_rows,
            }
        }
        SemNode::SemJoin { left, right, .. } => {
            let l = plan_cost(left, schema);
            let r = plan_cost(right, schema);
            let cross = l.out_rows.saturating_mul(r.out_rows);
            CostBound {
                lm_calls: l.lm_calls.saturating_add(r.lm_calls).saturating_add(cross),
                out_rows: cross,
            }
        }
        SemNode::Retrieve { k, .. } => CostBound {
            lm_calls: 0,
            out_rows: *k as u64,
        },
        SemNode::Rerank { input, keep, .. } => {
            let c = plan_cost(input, schema);
            CostBound {
                lm_calls: c.lm_calls.saturating_add(c.out_rows),
                out_rows: c.out_rows.min(*keep as u64),
            }
        }
        SemNode::Generate { input, format, .. } => {
            let c = plan_cost(input, schema);
            CostBound {
                lm_calls: c
                    .lm_calls
                    .saturating_add(generate_call_bound(format, c.out_rows)),
                out_rows: 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::NoSchema;
    use tag_sql::{CutSpec, RetrieveKind, SemClaimSpec};

    fn scan() -> SemNode {
        SemNode::Scan { table: "t".into() }
    }

    #[test]
    fn scan_without_schema_uses_default_cardinality() {
        let c = plan_cost(&scan(), &NoSchema);
        assert_eq!(c.lm_calls, 0);
        assert_eq!(c.out_rows, DEFAULT_SCAN_ROWS);
    }

    #[test]
    fn filter_bound_is_input_rows() {
        let plan = SemNode::SemFilter {
            input: Box::new(scan()),
            columns: vec!["c".into()],
            resolve: true,
            claim: SemClaimSpec::EuCountry,
            distinct: true,
            early_stop: None,
        };
        assert_eq!(plan_cost(&plan, &NoSchema).lm_calls, DEFAULT_SCAN_ROWS);
    }

    #[test]
    fn early_stop_cuts_output_not_call_bound() {
        let plan = SemNode::SemFilter {
            input: Box::new(scan()),
            columns: vec!["c".into()],
            resolve: true,
            claim: SemClaimSpec::EuCountry,
            distinct: true,
            early_stop: Some(CutSpec {
                sort_by: "rank".into(),
                descending: true,
                k: 3,
            }),
        };
        let c = plan_cost(&plan, &NoSchema);
        assert_eq!(c.lm_calls, DEFAULT_SCAN_ROWS);
        assert_eq!(c.out_rows, 3);
    }

    #[test]
    fn topk_small_input_is_all_pairs() {
        // n=5, k=3: Borda over all 5 → C(5,2)=10, no quickselect.
        assert_eq!(topk_call_bound(5, 3), 10);
        assert_eq!(topk_call_bound(1, 3), 0);
        assert_eq!(topk_call_bound(5, 0), 0);
    }

    #[test]
    fn topk_large_input_adds_quickselect_then_borda() {
        // n=100, k=5: quickselect ≤ C(100,2), Borda over w=max(5,20)=20.
        assert_eq!(topk_call_bound(100, 5), 4950 + 190);
        // k ≥ n skips quickselect entirely.
        assert_eq!(topk_call_bound(100, 100), 4950);
    }

    #[test]
    fn rerank_pipeline_bound_matches_hand_count() {
        // Retrieve pool=30 → Rerank (30 prompts) → Generate list (1).
        let plan = SemNode::Generate {
            input: Box::new(SemNode::Rerank {
                input: Box::new(SemNode::Retrieve {
                    query: "q".into(),
                    k: 30,
                    kind: RetrieveKind::Candidates,
                }),
                query: "q".into(),
                keep: 10,
            }),
            request: "q".into(),
            format: GenFormat::List,
            span_name: "answer".into(),
        };
        let c = plan_cost(&plan, &NoSchema);
        assert_eq!(c.lm_calls, 31);
        assert_eq!(c.out_rows, 1);
    }

    #[test]
    fn token_bound_scales_with_context_window() {
        let b = CostBound {
            lm_calls: 7,
            out_rows: 1,
        };
        assert_eq!(b.token_bound(4096), 7 * 4096);
    }
}
