//! Shared source scanner for `tag-lint` and `tag-audit`.
//!
//! No parser dependency: sources are scanned byte-by-byte, blanking
//! comments and string/char literals (and, via brace tracking,
//! `#[cfg(test)]` items) so rules match real code only. Blanked bytes
//! become spaces, never removing newlines, so byte offsets and line
//! numbers are preserved across every derived view.
//!
//! On top of the blanked text this module layers the lightweight
//! structure the audit passes need — function spans, statement/block
//! extents, enclosing-scope openers, and receiver-chain extraction —
//! all computed by brace/paren tracking over the blanked bytes. The
//! scanner understands the full Rust literal surface that matters for
//! blanking: nested block comments, raw strings (`r"…"`,
//! `r#"…"#` at any hash depth), byte and raw byte strings, char and
//! byte-char literals, and lifetimes.

/// Source text with comments/strings blanked (and, separately, with
/// only comments blanked, for rules that need literal strings).
pub struct ScannedSource {
    /// Comments, strings, and char literals blanked. String and
    /// raw-string delimiters are kept so literal boundaries stay
    /// visible.
    pub code: String,
    /// Comments blanked; string literals kept.
    pub with_strings: String,
}

/// Blank comments and (into `code` only) literals.
pub fn scan_source(src: &str) -> ScannedSource {
    let bytes = src.as_bytes();
    let mut code: Vec<u8> = bytes.to_vec();
    let mut with_strings: Vec<u8> = bytes.to_vec();
    let blank = |buf: &mut [u8], from: usize, to: usize| {
        for b in buf.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                blank(&mut code, start, i);
                blank(&mut with_strings, start, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Rust block comments nest: `/* a /* b */ c */` is one
                // comment, and an unbalanced inner open extends to EOF
                // exactly as rustc would treat it.
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut code, start, i);
                blank(&mut with_strings, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                // Keep the quotes so literal boundaries stay visible.
                blank(&mut code, start + 1, i.saturating_sub(1).min(bytes.len()));
            }
            b'r' if !ident_char_before(bytes, i)
                && (bytes.get(i + 1) == Some(&b'"') || bytes.get(i + 1) == Some(&b'#')) =>
            {
                // Raw string: r"..." or r#"..."# (any # depth). A lone
                // `r#ident` raw identifier has no opening quote and
                // falls through untouched.
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    let content = j + 1;
                    j += 1;
                    let mut content_end = bytes.len();
                    'outer: while j < bytes.len() {
                        if bytes[j] == b'"' {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while seen < hashes && bytes.get(k) == Some(&b'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                content_end = j;
                                j = k;
                                break 'outer;
                            }
                        }
                        j += 1;
                    }
                    // Blank the interior only: `r#"` and `"#` stay, so
                    // the blanked code never grows an unbalanced quote.
                    blank(&mut code, content, content_end);
                    i = j;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime (or loop label): a literal
                // closes within a few bytes ('x', '\n', '\u{..}'); a
                // lifetime doesn't.
                let start = i;
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    bytes[i + 2..]
                        .iter()
                        .take(8)
                        .position(|&b| b == b'\'')
                        .map(|p| i + 2 + p)
                } else if bytes.get(i + 2) == Some(&b'\'') && bytes.get(i + 1) != Some(&b'\'') {
                    Some(i + 2)
                } else {
                    None
                };
                match close {
                    Some(end) => {
                        blank(&mut code, start + 1, end);
                        i = end + 1;
                    }
                    None => i += 1, // lifetime
                }
            }
            _ => i += 1,
        }
    }
    ScannedSource {
        code: String::from_utf8_lossy(&code).into_owned(),
        with_strings: String::from_utf8_lossy(&with_strings).into_owned(),
    }
}

/// Is the byte before `i` part of an identifier? Guards the raw-string
/// arm against identifiers that merely end in `r` (`var"` never starts
/// a raw string; `br"…"` does — the `b` prefix is a literal prefix, not
/// an identifier).
fn ident_char_before(bytes: &[u8], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let b = bytes[i - 1];
    // `b` immediately before `r` is the byte-string prefix `br"…"`,
    // unless that `b` is itself preceded by an identifier char.
    if b == b'b' {
        return ident_char_before(bytes, i - 1);
    }
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte ranges of `#[cfg(test)]`-gated items (modules or functions),
/// found on the blanked code via brace tracking.
pub fn test_ranges(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let needle = b"#[cfg(test)]";
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + needle.len() <= bytes.len() {
        if &bytes[i..i + needle.len()] == needle {
            // Skip to the item's opening brace, then to its match.
            let mut j = i + needle.len();
            while j < bytes.len() && bytes[j] != b'{' {
                j += 1;
            }
            let mut depth = 0;
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            ranges.push((i, (j + 1).min(bytes.len())));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Blank the given byte ranges (newlines preserved).
pub fn blank_ranges(text: &str, ranges: &[(usize, usize)]) -> String {
    let mut bytes = text.as_bytes().to_vec();
    for &(from, to) in ranges {
        for b in bytes.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// 1-based line number of a byte offset.
pub fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Occurrences of `pattern` in `code` (already blanked), as offsets.
pub fn find_all(code: &str, pattern: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(pattern) {
        out.push(from + pos);
        from += pos + pattern.len();
    }
    out
}

/// Occurrences of `word` as a whole identifier (neither side touches an
/// identifier character).
pub fn find_word(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    find_all(code, word)
        .into_iter()
        .filter(|&pos| {
            let before_ok = pos == 0 || {
                let b = bytes[pos - 1];
                !(b.is_ascii_alphanumeric() || b == b'_')
            };
            let after = pos + word.len();
            let after_ok = after >= bytes.len() || {
                let b = bytes[after];
                !(b.is_ascii_alphanumeric() || b == b'_')
            };
            before_ok && after_ok
        })
        .collect()
}

/// One `fn` item's span in a blanked source: name plus the byte range
/// of its brace-delimited body (`body_start` is the offset of `{`,
/// `body_end` one past the matching `}`). Trait-method declarations
/// without bodies are skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Offset of the body's opening `{`.
    pub body_start: usize,
    /// One past the body's closing `}`.
    pub body_end: usize,
}

/// Extract every function span from blanked code. Nested functions get
/// their own (inner) spans; [`enclosing_fn`] resolves to the innermost.
pub fn fn_spans(code: &str) -> Vec<FnSpan> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for pos in find_word(code, "fn") {
        let mut j = pos + 2;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if j == name_start {
            continue; // `fn` in `Fn()` position already excluded by find_word; stray otherwise
        }
        let name = code[name_start..j].to_owned();
        // Scan to the body `{` or a `;` (bodiless trait method). Types
        // in the signature carry no braces, so the first `{` opens the
        // body.
        let mut k = j;
        while k < bytes.len() && bytes[k] != b'{' && bytes[k] != b';' {
            k += 1;
        }
        if k >= bytes.len() || bytes[k] == b';' {
            continue;
        }
        let body_start = k;
        let mut depth = 0;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push(FnSpan {
            name,
            body_start,
            body_end: (k + 1).min(bytes.len()),
        });
    }
    out
}

/// The innermost function span containing `pos`, if any.
pub fn enclosing_fn(spans: &[FnSpan], pos: usize) -> Option<&FnSpan> {
    spans
        .iter()
        .filter(|s| s.body_start <= pos && pos < s.body_end)
        .min_by_key(|s| s.body_end - s.body_start)
}

/// End of the statement containing `pos`: the offset one past the
/// first `;` at the statement's own nesting, one past the `}` that
/// closes a block-terminated statement (`for … { … }`, `match … { … }`),
/// or one past the `}` closing the enclosing block. This is the
/// lifetime of a statement temporary — a lock guard not bound by `let`
/// lives exactly this long, including through the body of a `for`
/// whose head created it and through every later link of a method
/// chain (`.field(&a.lock()).field(&b.lock())` holds both). Paren and
/// brace depth are tracked separately so a `)` closing an enclosing
/// call does not end the statement, while a closure body's `}` inside
/// an argument list does not either.
pub fn statement_end(code: &str, pos: usize) -> usize {
    let bytes = code.as_bytes();
    let mut parens: i32 = 0;
    let mut braces: i32 = 0;
    let mut k = pos;
    while k < bytes.len() {
        match bytes[k] {
            b'(' | b'[' => parens += 1,
            b')' | b']' => parens -= 1,
            b'{' => braces += 1,
            b'}' => {
                braces -= 1;
                if braces < 0 {
                    return k + 1; // enclosing block closed
                }
                if braces == 0 && parens <= 0 {
                    return k + 1; // block-terminated statement
                }
            }
            b';' if braces == 0 && parens <= 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    bytes.len()
}

/// End of the innermost brace block containing `pos`: one past the `}`
/// that drops the brace depth below its value at `pos`. The lifetime of
/// a `let`-bound guard.
pub fn block_end(code: &str, pos: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth: i32 = 0;
    let mut k = pos;
    while k < bytes.len() {
        match bytes[k] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    bytes.len()
}

/// Keywords of the brace scopes enclosing `pos`, innermost last,
/// scanning from `from` (a function body's `{`). Each `{` is tagged
/// with the most recent control keyword seen since the last statement
/// boundary (`;`, `{`, `}`) — `while`, `loop`, `for`, `if`, `else`,
/// `match` — or `""` for plain/struct-literal/closure blocks.
pub fn scope_openers(code: &str, from: usize, pos: usize) -> Vec<String> {
    const KEYWORDS: &[&str] = &["loop", "while", "for", "if", "else", "match", "unsafe"];
    let bytes = code.as_bytes();
    let mut stack: Vec<String> = Vec::new();
    let mut last_kw = String::new();
    let mut k = from;
    while k < pos.min(bytes.len()) {
        let b = bytes[k];
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = k;
            while k < bytes.len() && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'_') {
                k += 1;
            }
            let word = &code[start..k];
            if KEYWORDS.contains(&word) {
                last_kw = word.to_owned();
            }
            continue;
        }
        match b {
            b'{' => {
                stack.push(std::mem::take(&mut last_kw));
            }
            b'}' => {
                stack.pop();
                last_kw.clear();
            }
            b';' => last_kw.clear(),
            _ => {}
        }
        k += 1;
    }
    stack
}

/// The receiver name of a `.method(` call whose `.` sits at `dot`:
/// walking left over whitespace and `?`, a `]`- or `)`-group collapses
/// to the identifier before it (index base or method name), and the
/// nearest plain identifier (or tuple index like `0`) is the answer.
/// `self.shard_for(&key).entries.lock()` → `entries`;
/// `results[i].lock()` → `results`; `self.0.lock()` → `0`;
/// `pool.lock()` → `pool`.
pub fn receiver_ident(code: &str, dot: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut k = dot;
    loop {
        // Step left over whitespace and `?`.
        while k > 0 && ((bytes[k - 1] as char).is_whitespace() || bytes[k - 1] == b'?') {
            k -= 1;
        }
        if k == 0 {
            return None;
        }
        match bytes[k - 1] {
            b']' | b')' => {
                let close = bytes[k - 1];
                let open = if close == b']' { b'[' } else { b'(' };
                let mut depth = 0;
                let mut j = k - 1;
                loop {
                    if bytes[j] == close {
                        depth += 1;
                    } else if bytes[j] == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == 0 {
                        return None;
                    }
                    j -= 1;
                }
                k = j;
                // An index expression (`results[i]`) names its base; a
                // call group names the method before it. Either way the
                // identifier left of the opener is the answer — fall
                // through and read it next iteration.
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                let end = k;
                let mut j = k;
                while j > 0 && (bytes[j - 1].is_ascii_alphanumeric() || bytes[j - 1] == b'_') {
                    j -= 1;
                }
                return Some(code[j..end].to_owned());
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unwraps(code: &str) -> usize {
        find_all(code, ".unwrap()").len()
    }

    #[test]
    fn raw_strings_blank_interior_and_keep_delimiters() {
        // Rule patterns inside raw strings at several hash depths must
        // never count; the delimiters survive so the blanked code keeps
        // balanced quotes.
        let src = r####"
let a = r".unwrap()";
let b = r#"x.unwrap() and "quoted" text"#;
let c = r###"deep ".unwrap()"# still inside"###;
let real = v.unwrap();
"####;
        let s = scan_source(src);
        assert_eq!(unwraps(&s.code), 1, "{}", s.code);
        // Delimiters survive blanking.
        assert!(s.code.contains(r##"r#""##));
        assert!(s.code.contains(r##""#"##));
        // with_strings keeps raw-string contents (they are literals).
        assert!(s.with_strings.contains(".unwrap() and"));
    }

    #[test]
    fn raw_string_mismatched_hash_runs_stay_inside() {
        // A `"#` run shorter than the opener must not close the string.
        let src = r###"let p = r##"contains "# inside"##; q.unwrap();"###;
        let s = scan_source(src);
        assert_eq!(unwraps(&s.code), 1);
        assert!(!s.code.contains("inside"));
    }

    #[test]
    fn identifiers_ending_in_r_do_not_open_raw_strings() {
        // `ptr` then a normal string: the string arm must handle it; if
        // the raw arm fired, the escape `\"` would be treated literally
        // and the scan would mis-scope the rest of the line.
        let src = "let x = matcher\"a\\\".unwrap()\"; y.unwrap();";
        let s = scan_source(src);
        assert_eq!(unwraps(&s.code), 1);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let src = "let r#type = a.unwrap(); let r#fn = b.unwrap();";
        let s = scan_source(src);
        assert_eq!(unwraps(&s.code), 2);
    }

    #[test]
    fn byte_and_raw_byte_strings_are_blanked() {
        let src = "let a = b\".unwrap()\"; let b2 = br#\".unwrap()\"#; c.unwrap();";
        let s = scan_source(src);
        assert_eq!(unwraps(&s.code), 1, "{}", s.code);
    }

    #[test]
    fn nested_block_comments_blank_to_the_outer_close() {
        let src = "/* a /* b.unwrap() */ c.unwrap() */ let x = d.unwrap();";
        let s = scan_source(src);
        assert_eq!(unwraps(&s.code), 1);
        assert_eq!(unwraps(&s.with_strings), 1);
    }

    #[test]
    fn unbalanced_inner_comment_extends_to_eof() {
        // rustc treats `/* /* */` as unterminated; the scanner must
        // blank to EOF rather than resurrecting the tail as code.
        let src = "/* outer /* inner */ x.unwrap()";
        let s = scan_source(src);
        assert_eq!(unwraps(&s.code), 0);
    }

    #[test]
    fn comment_markers_inside_strings_do_not_open_comments() {
        let src = "let p = \"/*\"; let q = r#\"/*\"#; r.unwrap(); // */ tail.unwrap()";
        let s = scan_source(src);
        assert_eq!(unwraps(&s.code), 1);
    }

    #[test]
    fn fn_spans_and_enclosing_fn() {
        let src = "fn outer(a: usize) -> usize {\n    let x = 1;\n    fn inner() { body(); }\n    x\n}\nfn second() { two(); }";
        let s = scan_source(src);
        let spans = fn_spans(&s.code);
        let names: Vec<&str> = spans.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "second"]);
        let body_pos = s.code.find("body").unwrap();
        assert_eq!(enclosing_fn(&spans, body_pos).unwrap().name, "inner");
        let x_pos = s.code.find("let x").unwrap();
        assert_eq!(enclosing_fn(&spans, x_pos).unwrap().name, "outer");
    }

    #[test]
    fn statement_end_spans_for_loop_bodies() {
        // A temporary created in a `for` head lives through the body.
        let src = "fn f() {\n    for c in list.lock().iter() {\n        use_it(c);\n    }\n    after.lock();\n}";
        let s = scan_source(src);
        let pos = s.code.find("list.lock()").unwrap();
        let end = statement_end(&s.code, pos);
        assert!(s.code[pos..end].contains("use_it"));
        assert!(!s.code[pos..end].contains("after"));
        // A plain statement ends at its semicolon.
        let p2 = s.code.find("after.lock()").unwrap();
        let e2 = statement_end(&s.code, p2);
        assert_eq!(&s.code[p2..e2], "after.lock();");
    }

    #[test]
    fn scope_openers_find_predicate_loops() {
        let src = "fn f() { loop { if done() { return; } cv.wait(&mut g); } }";
        let s = scan_source(src);
        let body = s.code.find('{').unwrap();
        let wait = s.code.find("cv.wait").unwrap();
        let scopes = scope_openers(&s.code, body, wait);
        assert!(scopes.iter().any(|k| k == "loop"), "{scopes:?}");

        let src2 = "fn g() { if !done() { cv.wait(&mut g); } }";
        let s2 = scan_source(src2);
        let wait2 = s2.code.find("cv.wait").unwrap();
        let scopes2 = scope_openers(&s2.code, s2.code.find('{').unwrap(), wait2);
        assert!(!scopes2.iter().any(|k| k == "loop" || k == "while"));
    }

    #[test]
    fn receiver_idents_collapse_chains() {
        let cases = [
            ("self.state.lock()", "state"),
            ("self.shard_for(&key).entries.lock()", "entries"),
            ("results[i].lock()", "results"),
            ("self.0.lock()", "0"),
            ("pool.lock()", "pool"),
            ("self.submit(req)?.wait()", "submit"),
        ];
        for (src, want) in cases {
            let dot = src.rfind('.').unwrap();
            assert_eq!(receiver_ident(src, dot).as_deref(), Some(want), "for {src}");
        }
    }
}
