//! Static analysis for the TAG stack.
//!
//! Three analyses, all computed from artifacts alone — no execution:
//!
//! 1. **SemPlan verifier** ([`verify_plan`], [`verify_rewrite`]): a typed
//!    well-formedness pass over [`tag_sql::SemNode`] trees. Column
//!    resolution flows through every node against the live catalog,
//!    stage tags are checked legal per operator, cardinality bounds are
//!    monotone through `Cut`/`SemTopK`/pre-cut, and each `semopt`
//!    rewrite rule's pre/postconditions are checked against the
//!    before/after pair. Runs automatically after `optimize_sem` in
//!    debug builds, interactively as `EXPLAIN VERIFY <question>`, and in
//!    CI over all 80 TAG-Bench plans × every `SemOptOptions` combination
//!    (`verify-report`).
//! 2. **Static LM-cost bounds** ([`plan_cost`]): a per-plan upper bound
//!    on LM calls (and, loosely, tokens) derived from the IR alone.
//!    `trace-report` cross-checks the bound against traced actuals; an
//!    actual exceeding its static bound fails CI.
//! 3. **`tag-lint`** ([`lint`]): a hand-rolled source-level linter (no
//!    new dependencies; the same token-scanning approach as the SQL
//!    lexer) enforcing repo invariants — no `.unwrap()`/`.expect()` on
//!    serve/sqlengine hot paths (ratcheted), every
//!    `complete_op`/`complete_batch_op` call site carries a known stage
//!    tag, and no poison-panicking `std::sync` lock use in serve.

#![warn(missing_docs)]

pub mod cost;
pub mod lint;
pub mod verifier;

pub use cost::{plan_cost, topk_call_bound, CostBound, DEFAULT_SCAN_ROWS};
pub use lint::{run_lint, LintConfig, LintFinding, LintOutcome};
pub use verifier::{
    annotated_explain, verify_plan, verify_report_text, verify_rewrite, Diagnostic, NoSchema,
    SchemaSource, VerifyReport,
};
