//! Static analysis for the TAG stack.
//!
//! Four analyses, all computed from artifacts alone — no execution:
//!
//! 1. **SemPlan verifier** ([`verify_plan`], [`verify_rewrite`]): a typed
//!    well-formedness pass over [`tag_sql::SemNode`] trees. Column
//!    resolution flows through every node against the live catalog,
//!    stage tags are checked legal per operator, cardinality bounds are
//!    monotone through `Cut`/`SemTopK`/pre-cut, and each `semopt`
//!    rewrite rule's pre/postconditions are checked against the
//!    before/after pair. Runs automatically after `optimize_sem` in
//!    debug builds, interactively as `EXPLAIN VERIFY <question>`, and in
//!    CI over all 80 TAG-Bench plans × every `SemOptOptions` combination
//!    (`verify-report`).
//! 2. **Static LM-cost bounds** ([`plan_cost`]): a per-plan upper bound
//!    on LM calls (and, loosely, tokens) derived from the IR alone.
//!    `trace-report` cross-checks the bound against traced actuals; an
//!    actual exceeding its static bound fails CI.
//! 3. **`tag-lint`** ([`lint`]): a hand-rolled source-level linter (no
//!    new dependencies; the same token-scanning approach as the SQL
//!    lexer) enforcing repo invariants — no `.unwrap()`/`.expect()` on
//!    serve/sqlengine hot paths (ratcheted), every
//!    `complete_op`/`complete_batch_op` call site carries a known stage
//!    tag, and no poison-panicking `std::sync` lock use in serve.
//! 4. **`tag-audit`** ([`audit`]): a multi-pass concurrency &
//!    determinism analyzer over the same [`scanner`] infrastructure —
//!    a lock-order pass against the declared hierarchy
//!    (`crates/analyze/lock-order.txt`), a determinism pass over
//!    result-producing executor paths (ratcheted in
//!    `crates/analyze/det-ratchet.txt`), and a liveness pass for the
//!    serve/shard pools (predicate-loop condvar waits, no blocking
//!    sends under hub/cache locks, sender-drop-before-join shutdown).

#![warn(missing_docs)]

pub mod audit;
pub mod cost;
pub mod lint;
pub mod scanner;
pub mod verifier;

pub use audit::{run_audit, AuditConfig, AuditFinding, AuditOutcome};
pub use cost::{plan_cost, topk_call_bound, CostBound, DEFAULT_SCAN_ROWS};
pub use lint::{run_lint, LintConfig, LintFinding, LintOutcome};
pub use verifier::{
    annotated_explain, verify_plan, verify_report_text, verify_rewrite, Diagnostic, NoSchema,
    SchemaSource, VerifyReport,
};
