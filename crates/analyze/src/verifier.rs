//! Typed well-formedness verification over [`SemNode`] plans.
//!
//! [`verify_plan`] checks a single plan against a [`SchemaSource`]:
//! column resolution flows bottom-up through every node (with the same
//! case-insensitive, first-existing-candidate semantics the runtime
//! uses), stage tags are legal per operator position, and cardinality
//! bounds stay monotone through `Cut`/`SemTopK`/`Rerank`/pre-cut.
//!
//! [`verify_rewrite`] checks an `optimize_sem` before/after pair: every
//! predicate, semantic filter, and cut of the input plan is conserved in
//! the output (so a rewrite can never drop or invent work), each enabled
//! rule's postcondition holds on the output (pushdown left no predicate
//! above a fusable filter, distinct marked every filter, precut left no
//! cut above a fusable filter), fused filters always judge distinct
//! values, and the static LM-call bound never increased.
//!
//! Diagnostics render deterministically: nodes are visited pre-order
//! (children in execution order, as [`SemNode::children`] yields them),
//! so repeated runs over the same plan produce byte-identical reports.

use crate::cost::plan_cost;
use std::fmt::Write as _;
use tag_sql::{Database, SemNode, SemOptOptions, SemPredicate, SemStage};

/// Where the verifier learns table shapes. Implemented by
/// [`tag_sql::Database`] (live catalog) and [`NoSchema`] (schema-free
/// verification, e.g. property tests over synthetic plans).
pub trait SchemaSource {
    /// Column names of `table`, or `None` when unknown.
    fn table_columns(&self, table: &str) -> Option<Vec<String>>;
    /// Row count of `table`, or `None` when unknown.
    fn table_rows(&self, table: &str) -> Option<usize>;
    /// True when `None` from [`Self::table_columns`] means "no such
    /// table" (an error) rather than "no information" (skip the check).
    fn authoritative(&self) -> bool {
        false
    }
}

/// A schema source that knows nothing: every column check involving a
/// scanned table is skipped rather than failed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSchema;

impl SchemaSource for NoSchema {
    fn table_columns(&self, _table: &str) -> Option<Vec<String>> {
        None
    }

    fn table_rows(&self, _table: &str) -> Option<usize> {
        None
    }
}

impl SchemaSource for Database {
    fn table_columns(&self, table: &str) -> Option<Vec<String>> {
        // The SQL binder resolves table names case-insensitively; match
        // that so the verifier never rejects a plan the engine runs.
        let catalog = self.catalog();
        if let Ok(t) = catalog.table(table) {
            return Some(t.schema().names());
        }
        catalog
            .table_names()
            .iter()
            .find(|n| n.eq_ignore_ascii_case(table))
            .and_then(|n| catalog.table(n).ok())
            .map(|t| t.schema().names())
    }

    fn table_rows(&self, table: &str) -> Option<usize> {
        let catalog = self.catalog();
        if let Ok(t) = catalog.table(table) {
            return Some(t.len());
        }
        catalog
            .table_names()
            .iter()
            .find(|n| n.eq_ignore_ascii_case(table))
            .and_then(|n| catalog.table(n).ok())
            .map(|t| t.len())
    }

    fn authoritative(&self) -> bool {
        true
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`unknown-table`, `column-missing`,
    /// `conservation`, ...).
    pub code: &'static str,
    /// Slash-separated pre-order child indexes from the root (`"0"` is
    /// the root, `"0/1"` its second child, ...).
    pub path: String,
    /// Label of the offending node (empty for whole-plan findings).
    pub node: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    fn render(&self) -> String {
        if self.node.is_empty() {
            format!("[{}] {}", self.code, self.message)
        } else {
            format!(
                "[{}] {} ({}): {}",
                self.code, self.path, self.node, self.message
            )
        }
    }
}

/// The outcome of a verification pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Findings, in deterministic pre-order discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// True when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// One line per diagnostic (empty string when clean).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}", d.render());
        }
        out
    }
}

/// What a subtree exposes to the operator above it.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ColSet {
    /// Concrete column names (catalog scan, materialized input, or a
    /// generation/aggregation result).
    Known(Vec<String>),
    /// An opaque retrieved-point frame (`Retrieve`/`Rerank` output):
    /// only `Rerank` and `Generate` may consume it.
    Points,
    /// No schema information (non-authoritative source); column checks
    /// are skipped.
    Unknown,
}

impl ColSet {
    /// `Some(true/false)` with schema knowledge, `None` when unknown.
    /// Matches the runtime's case-insensitive column resolution.
    fn contains(&self, name: &str) -> Option<bool> {
        match self {
            ColSet::Known(cols) => Some(cols.iter().any(|c| c.eq_ignore_ascii_case(name))),
            ColSet::Points => Some(false),
            ColSet::Unknown => None,
        }
    }

    fn describe(&self) -> String {
        match self {
            ColSet::Known(cols) => format!("{cols:?}"),
            ColSet::Points => "<retrieved points>".to_owned(),
            ColSet::Unknown => "<unknown>".to_owned(),
        }
    }
}

struct PlanChecker<'a> {
    schema: &'a dyn SchemaSource,
    diagnostics: Vec<Diagnostic>,
}

impl PlanChecker<'_> {
    fn diag(&mut self, code: &'static str, path: &str, node: &SemNode, message: String) {
        self.diagnostics.push(Diagnostic {
            code,
            path: path.to_owned(),
            node: node.label(),
            message,
        });
    }

    fn require_column(&mut self, path: &str, node: &SemNode, input: &ColSet, name: &str) {
        if input.contains(name) == Some(false) {
            self.diag(
                "column-missing",
                path,
                node,
                format!("column '{name}' not in input columns {}", input.describe()),
            );
        }
    }

    fn require_candidate(
        &mut self,
        path: &str,
        node: &SemNode,
        input: &ColSet,
        candidates: &[String],
    ) {
        let any = candidates
            .iter()
            .map(|c| input.contains(c))
            .try_fold(false, |acc, x| x.map(|b| acc || b));
        if any == Some(false) {
            self.diag(
                "column-missing",
                path,
                node,
                format!(
                    "none of the candidate columns {candidates:?} in input columns {}",
                    input.describe()
                ),
            );
        }
    }

    fn require_k(&mut self, path: &str, node: &SemNode, what: &str, k: usize) {
        if k == 0 {
            self.diag(
                "empty-cut",
                path,
                node,
                format!("{what} keeps k=0 rows — the plan can never produce output"),
            );
        }
    }

    /// Verify the subtree and return its output column set. `is_root`
    /// gates the gen-stage placement rule.
    fn check(&mut self, node: &SemNode, path: &str, is_root: bool) -> ColSet {
        // Gen-stage operators produce a final answer frame; anything
        // stacked above one is consuming prose as a table.
        if !is_root && node.stage() == SemStage::Gen {
            self.diag(
                "gen-not-root",
                path,
                node,
                "gen-stage operator below the plan root".to_owned(),
            );
        }

        let inputs: Vec<ColSet> = node
            .children()
            .iter()
            .enumerate()
            .map(|(i, child)| self.check(child, &format!("{path}/{i}"), false))
            .collect();

        // Exec-stage operators run frame semantics over named columns;
        // an opaque point frame from retrieval has none.
        if node.stage() == SemStage::Exec && inputs.contains(&ColSet::Points) {
            self.diag(
                "points-input",
                path,
                node,
                "exact operator over opaque retrieved points (only Rerank/Generate may consume retrieval output)"
                    .to_owned(),
            );
        }

        match node {
            SemNode::Scan { table } => match self.schema.table_columns(table) {
                Some(cols) => ColSet::Known(cols),
                None => {
                    if self.schema.authoritative() {
                        self.diag(
                            "unknown-table",
                            path,
                            node,
                            format!("table '{table}' not in the catalog"),
                        );
                    }
                    ColSet::Unknown
                }
            },
            SemNode::Input { columns, .. } => ColSet::Known(columns.clone()),
            SemNode::Predicate { pred, .. } => {
                let input = &inputs[0];
                match pred {
                    SemPredicate::NumCmp { attr, .. } | SemPredicate::TextEq { attr, .. } => {
                        self.require_column(path, node, input, attr);
                    }
                    SemPredicate::TextEqAny { columns, .. } => {
                        self.require_candidate(path, node, input, columns);
                    }
                }
                input.clone()
            }
            SemNode::SemFilter {
                columns,
                resolve,
                distinct,
                early_stop,
                ..
            } => {
                let input = &inputs[0];
                if columns.is_empty() {
                    self.diag(
                        "no-column",
                        path,
                        node,
                        "semantic filter without a column".to_owned(),
                    );
                } else if *resolve {
                    self.require_candidate(path, node, input, columns);
                } else {
                    self.require_column(path, node, input, &columns[0]);
                }
                if let Some(cut) = early_stop {
                    self.require_column(path, node, input, &cut.sort_by);
                    self.require_k(path, node, "early_stop", cut.k);
                    if !distinct {
                        // fuse_precut always marks fused filters
                        // distinct; the early-stop executor judges
                        // distinct values in sorted order, so a
                        // non-distinct fused filter is malformed IR.
                        self.diag(
                            "fused-not-distinct",
                            path,
                            node,
                            "early-stop filter not marked distinct".to_owned(),
                        );
                    }
                }
                input.clone()
            }
            SemNode::Cut { cut, .. } => {
                let input = &inputs[0];
                self.require_column(path, node, input, &cut.sort_by);
                self.require_k(path, node, "Cut", cut.k);
                input.clone()
            }
            SemNode::SemTopK { on_attr, k, .. } => {
                let input = &inputs[0];
                self.require_column(path, node, input, on_attr);
                self.require_k(path, node, "SemTopK", *k);
                input.clone()
            }
            SemNode::SemAgg { .. } => ColSet::Known(vec!["answer".to_owned()]),
            SemNode::SemMap {
                on_attr,
                out_column,
                ..
            } => {
                let input = &inputs[0];
                self.require_column(path, node, input, on_attr);
                match input {
                    ColSet::Known(cols) => {
                        let mut cols = cols.clone();
                        cols.push(out_column.clone());
                        ColSet::Known(cols)
                    }
                    other => other.clone(),
                }
            }
            SemNode::SemJoin {
                left_on, right_on, ..
            } => {
                self.require_column(path, node, &inputs[0], left_on);
                self.require_column(path, node, &inputs[1], right_on);
                match (&inputs[0], &inputs[1]) {
                    (ColSet::Known(l), ColSet::Known(r)) => {
                        let mut cols = l.clone();
                        cols.extend(r.iter().cloned());
                        ColSet::Known(cols)
                    }
                    _ => ColSet::Unknown,
                }
            }
            SemNode::Retrieve { k, .. } => {
                self.require_k(path, node, "Retrieve", *k);
                ColSet::Points
            }
            SemNode::Rerank { keep, .. } => {
                self.require_k(path, node, "Rerank", *keep);
                if inputs[0] != ColSet::Points {
                    self.diag(
                        "rerank-input",
                        path,
                        node,
                        format!(
                            "Rerank scores retrieved points, but its input produces {}",
                            inputs[0].describe()
                        ),
                    );
                }
                ColSet::Points
            }
            SemNode::Generate { .. } => ColSet::Known(vec!["answer".to_owned()]),
        }
    }
}

/// Verify one plan's well-formedness against `schema`. See the module
/// docs for the invariant list.
pub fn verify_plan(root: &SemNode, schema: &dyn SchemaSource) -> VerifyReport {
    let mut checker = PlanChecker {
        schema,
        diagnostics: Vec::new(),
    };
    checker.check(root, "0", true);

    // Cardinality monotonicity: row bounds may never grow through a
    // row-reducing operator, and cutters are bounded by their k. This is
    // a consistency check of plan × cost model (a plan whose bounds
    // violate it indicates a malformed cut spec or a model regression).
    check_cardinality(root, "0", schema, &mut checker.diagnostics);

    VerifyReport {
        diagnostics: checker.diagnostics,
    }
}

fn check_cardinality(
    node: &SemNode,
    path: &str,
    schema: &dyn SchemaSource,
    out: &mut Vec<Diagnostic>,
) {
    let bound = plan_cost(node, schema).out_rows;
    let violation = match node {
        SemNode::Predicate { input, .. }
        | SemNode::SemFilter { input, .. }
        | SemNode::Cut { input, .. }
        | SemNode::SemTopK { input, .. }
        | SemNode::Rerank { input, .. } => {
            let in_bound = plan_cost(input, schema).out_rows;
            let k = match node {
                SemNode::Cut { cut, .. } => Some(cut.k as u64),
                SemNode::SemTopK { k, .. } => Some(*k as u64),
                SemNode::Rerank { keep, .. } => Some(*keep as u64),
                SemNode::SemFilter {
                    early_stop: Some(cut),
                    ..
                } => Some(cut.k as u64),
                _ => None,
            };
            bound > in_bound || k.is_some_and(|k| bound > k)
        }
        SemNode::SemAgg { .. } | SemNode::Generate { .. } => bound > 1,
        _ => false,
    };
    if violation {
        out.push(Diagnostic {
            code: "cardinality",
            path: path.to_owned(),
            node: node.label(),
            message: format!("output row bound {bound} exceeds its structural limit"),
        });
    }
    for (i, child) in node.children().iter().enumerate() {
        check_cardinality(child, &format!("{path}/{i}"), schema, out);
    }
}

/// Conservation fingerprint of a plan: the multiset of predicates,
/// semantic-filter claims, cuts (standalone or fused), and every other
/// operator's label. The three `semopt` rules may move, mark, and fuse —
/// never drop or invent.
#[derive(Debug, Default, PartialEq, Eq)]
struct Fingerprint {
    predicates: Vec<String>,
    filters: Vec<String>,
    cuts: Vec<String>,
    others: Vec<String>,
}

impl Fingerprint {
    fn of(root: &SemNode) -> Fingerprint {
        let mut fp = Fingerprint::default();
        fp.collect(root);
        fp.predicates.sort();
        fp.filters.sort();
        fp.cuts.sort();
        fp.others.sort();
        fp
    }

    fn collect(&mut self, node: &SemNode) {
        match node {
            SemNode::Predicate { pred, .. } => self.predicates.push(format!("{pred:?}")),
            SemNode::SemFilter {
                columns,
                resolve,
                claim,
                early_stop,
                ..
            } => {
                // distinct/early_stop are the rewrite's degrees of
                // freedom; the judged claim and its columns are not.
                self.filters
                    .push(format!("{columns:?} resolve={resolve} {claim:?}"));
                if let Some(cut) = early_stop {
                    self.cuts.push(format!("{cut:?}"));
                }
            }
            SemNode::Cut { cut, .. } => self.cuts.push(format!("{cut:?}")),
            other => self.others.push(other.label()),
        }
        for child in node.children() {
            self.collect(child);
        }
    }
}

fn conservation_diag(what: &str, before: &[String], after: &[String], out: &mut Vec<Diagnostic>) {
    if before != after {
        out.push(Diagnostic {
            code: "conservation",
            path: String::new(),
            node: String::new(),
            message: format!("{what} not conserved: before {before:?}, after {after:?}"),
        });
    }
}

/// Verify an `optimize_sem` rewrite: `after` must conserve `before`'s
/// work, satisfy each enabled rule's postcondition, and never raise the
/// static LM-call bound.
pub fn verify_rewrite(
    before: &SemNode,
    after: &SemNode,
    opts: &SemOptOptions,
    schema: &dyn SchemaSource,
) -> VerifyReport {
    let mut diagnostics = Vec::new();

    let fp_before = Fingerprint::of(before);
    let fp_after = Fingerprint::of(after);
    conservation_diag(
        "predicates",
        &fp_before.predicates,
        &fp_after.predicates,
        &mut diagnostics,
    );
    conservation_diag(
        "semantic filters",
        &fp_before.filters,
        &fp_after.filters,
        &mut diagnostics,
    );
    conservation_diag("cuts", &fp_before.cuts, &fp_after.cuts, &mut diagnostics);
    conservation_diag(
        "other operators",
        &fp_before.others,
        &fp_after.others,
        &mut diagnostics,
    );

    check_postconditions(after, "0", opts, &mut diagnostics);

    let cost_before = plan_cost(before, schema);
    let cost_after = plan_cost(after, schema);
    if cost_after.lm_calls > cost_before.lm_calls {
        diagnostics.push(Diagnostic {
            code: "cost-regression",
            path: String::new(),
            node: String::new(),
            message: format!(
                "rewrite raised the static LM-call bound: {} -> {}",
                cost_before.lm_calls, cost_after.lm_calls
            ),
        });
    }

    VerifyReport { diagnostics }
}

fn check_postconditions(
    node: &SemNode,
    path: &str,
    opts: &SemOptOptions,
    out: &mut Vec<Diagnostic>,
) {
    let mut diag = |code: &'static str, message: String| {
        out.push(Diagnostic {
            code,
            path: path.to_owned(),
            node: node.label(),
            message,
        });
    };
    match node {
        // Fused filters are always distinct, regardless of options:
        // fuse_precut is the only producer of early_stop and marks it.
        SemNode::SemFilter {
            distinct: false,
            early_stop: Some(_),
            ..
        } => diag(
            "fused-not-distinct",
            "fused early-stop filter not marked distinct".to_owned(),
        ),
        // Pushdown fixpoint: no exact predicate may sit directly on a
        // still-fusable (non-early-stop) semantic filter. A predicate
        // above an early-stop filter is legal — the fused cut does not
        // commute with filtering.
        SemNode::Predicate { input, .. }
            if opts.pushdown
                && matches!(
                    **input,
                    SemNode::SemFilter {
                        early_stop: None,
                        ..
                    }
                ) =>
        {
            diag(
                "pushdown-missed",
                "exact predicate left above a semantic filter".to_owned(),
            )
        }
        // Distinct rewrite marks every semantic filter.
        SemNode::SemFilter {
            distinct: false, ..
        } if opts.distinct_rewrite => diag(
            "distinct-missed",
            "semantic filter left judging row-wise".to_owned(),
        ),
        // Precut fixpoint: no cut may sit directly on a fusable filter.
        SemNode::Cut { input, .. }
            if opts.precut
                && matches!(
                    **input,
                    SemNode::SemFilter {
                        early_stop: None,
                        ..
                    }
                ) =>
        {
            diag(
                "precut-missed",
                "exact cut left above a fusable semantic filter".to_owned(),
            )
        }
        _ => {}
    }
    for (i, child) in node.children().iter().enumerate() {
        check_postconditions(child, &format!("{path}/{i}"), opts, out);
    }
}

/// Render a plan tree with per-node static bounds.
///
/// Output is deterministic: nodes pre-order (children in execution
/// order), each line `label  [stage]  (rows<=R lm<=C)` where `R` is the
/// node's output-row bound and `C` the node's *own* LM-call bound
/// (subtree bound minus its children's). Golden tests may diff this
/// byte-for-byte.
pub fn annotated_explain(root: &SemNode, schema: &dyn SchemaSource) -> String {
    let mut out = String::new();
    annotate_into(root, schema, 0, &mut out);
    out
}

fn annotate_into(node: &SemNode, schema: &dyn SchemaSource, depth: usize, out: &mut String) {
    let subtree = plan_cost(node, schema);
    let child_calls: u64 = node
        .children()
        .iter()
        .map(|c| plan_cost(c, schema).lm_calls)
        .sum();
    let own = subtree.lm_calls.saturating_sub(child_calls);
    let _ = writeln!(
        out,
        "{}{}  [{}]  (rows<={} lm<={})",
        "  ".repeat(depth),
        node.label(),
        node.stage().as_str(),
        subtree.out_rows,
        own
    );
    for child in node.children() {
        annotate_into(child, schema, depth + 1, out);
    }
}

/// Full `EXPLAIN VERIFY` report text for a compile → optimize pair:
/// plan verdict, rewrite verdict, the static LM-call bound (optimized
/// vs naive), and the annotated plan. Deterministic line order.
pub fn verify_report_text(
    naive: &SemNode,
    optimized: &SemNode,
    opts: &SemOptOptions,
    schema: &dyn SchemaSource,
) -> String {
    let plan = verify_plan(optimized, schema);
    let rewrite = verify_rewrite(naive, optimized, opts, schema);
    let cost_naive = plan_cost(naive, schema);
    let cost_opt = plan_cost(optimized, schema);
    let mut out = String::new();
    if plan.is_ok() {
        let _ = writeln!(out, "verify: ok");
    } else {
        let _ = writeln!(
            out,
            "verify: FAILED ({} diagnostics)",
            plan.diagnostics.len()
        );
        for line in plan.render().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    if rewrite.is_ok() {
        let _ = writeln!(out, "rewrite: ok (rules={})", opts.cache_tag());
    } else {
        let _ = writeln!(
            out,
            "rewrite: FAILED (rules={}, {} diagnostics)",
            opts.cache_tag(),
            rewrite.diagnostics.len()
        );
        for line in rewrite.render().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    let _ = writeln!(
        out,
        "lm_call_bound: {} (unoptimized: {})",
        cost_opt.lm_calls, cost_naive.lm_calls
    );
    out.push_str(&annotated_explain(optimized, schema));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tag_sql::{optimize_sem, CutSpec, SemClaimSpec};

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE schools (School TEXT, City TEXT, Longitude REAL)")
            .expect("create");
        db.execute("INSERT INTO schools VALUES ('Gunn', 'Palo Alto', -122.1)")
            .expect("insert");
        db
    }

    fn filter(input: SemNode, columns: &[&str]) -> SemNode {
        SemNode::SemFilter {
            input: Box::new(input),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            resolve: true,
            claim: SemClaimSpec::CityInRegion {
                region: "Silicon Valley".into(),
            },
            distinct: false,
            early_stop: None,
        }
    }

    fn scan() -> SemNode {
        SemNode::Scan {
            table: "schools".into(),
        }
    }

    #[test]
    fn well_formed_plan_passes() {
        let plan = SemNode::Cut {
            input: Box::new(filter(scan(), &["City", "city"])),
            cut: CutSpec {
                sort_by: "Longitude".into(),
                descending: true,
                k: 1,
            },
        };
        let report = verify_plan(&plan, &db());
        assert!(report.is_ok(), "{}", report.render());
    }

    #[test]
    fn unknown_table_is_caught_with_authoritative_schema() {
        let plan = SemNode::Scan {
            table: "dragons".into(),
        };
        let report = verify_plan(&plan, &db());
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, "unknown-table");
        // ... but skipped without schema knowledge.
        assert!(verify_plan(&plan, &NoSchema).is_ok());
    }

    #[test]
    fn missing_filter_column_is_caught() {
        let plan = filter(scan(), &["Town", "Municipality"]);
        let report = verify_plan(&plan, &db());
        assert_eq!(report.diagnostics[0].code, "column-missing");
    }

    #[test]
    fn column_resolution_is_case_insensitive_like_the_runtime() {
        let plan = filter(scan(), &["CITY"]);
        assert!(verify_plan(&plan, &db()).is_ok());
    }

    #[test]
    fn exec_over_points_is_caught() {
        let plan = SemNode::Cut {
            input: Box::new(SemNode::Retrieve {
                query: "q".into(),
                k: 10,
                kind: tag_sql::RetrieveKind::Rows,
            }),
            cut: CutSpec {
                sort_by: "x".into(),
                descending: false,
                k: 5,
            },
        };
        let report = verify_plan(&plan, &db());
        assert!(report.diagnostics.iter().any(|d| d.code == "points-input"));
    }

    #[test]
    fn gen_below_root_is_caught() {
        let plan = SemNode::Cut {
            input: Box::new(SemNode::Generate {
                input: Box::new(scan()),
                request: "q".into(),
                format: tag_sql::GenFormat::Free,
                span_name: "answer".into(),
            }),
            cut: CutSpec {
                sort_by: "answer".into(),
                descending: false,
                k: 1,
            },
        };
        let report = verify_plan(&plan, &db());
        assert!(report.diagnostics.iter().any(|d| d.code == "gen-not-root"));
    }

    #[test]
    fn zero_k_cut_is_caught() {
        let plan = SemNode::Cut {
            input: Box::new(scan()),
            cut: CutSpec {
                sort_by: "Longitude".into(),
                descending: true,
                k: 0,
            },
        };
        let report = verify_plan(&plan, &db());
        assert!(report.diagnostics.iter().any(|d| d.code == "empty-cut"));
    }

    #[test]
    fn rerank_over_table_rows_is_caught() {
        let plan = SemNode::Rerank {
            input: Box::new(scan()),
            query: "q".into(),
            keep: 5,
        };
        let report = verify_plan(&plan, &db());
        assert!(report.diagnostics.iter().any(|d| d.code == "rerank-input"));
    }

    #[test]
    fn real_rewrite_passes_verify_rewrite() {
        let naive = SemNode::Cut {
            input: Box::new(filter(
                SemNode::Predicate {
                    input: Box::new(filter(scan(), &["City", "city"])),
                    pred: SemPredicate::NumCmp {
                        attr: "Longitude".into(),
                        over: false,
                        value: -120.0,
                    },
                },
                &["City", "city"],
            )),
            cut: CutSpec {
                sort_by: "Longitude".into(),
                descending: true,
                k: 1,
            },
        };
        let opts = SemOptOptions::all();
        let optimized = optimize_sem(naive.clone(), &opts);
        let db = db();
        let report = verify_rewrite(&naive, &optimized, &opts, &db);
        assert!(report.is_ok(), "{}", report.render());
        assert!(verify_plan(&optimized, &db).is_ok());
    }

    #[test]
    fn dropped_predicate_breaks_conservation() {
        let naive = SemNode::Predicate {
            input: Box::new(filter(scan(), &["City"])),
            pred: SemPredicate::TextEq {
                attr: "School".into(),
                value: "Gunn".into(),
            },
        };
        // A "rewrite" that silently drops the predicate.
        let broken = filter(scan(), &["City"]);
        let report = verify_rewrite(&naive, &broken, &SemOptOptions::none(), &NoSchema);
        assert!(report.diagnostics.iter().any(|d| d.code == "conservation"));
    }

    #[test]
    fn annotated_explain_is_deterministic_and_ordered() {
        let plan = SemNode::Cut {
            input: Box::new(filter(scan(), &["City"])),
            cut: CutSpec {
                sort_by: "Longitude".into(),
                descending: true,
                k: 1,
            },
        };
        let db = db();
        let a = annotated_explain(&plan, &db);
        let b = annotated_explain(&plan, &db);
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        // Pre-order: root cut, then filter, then scan; each annotated.
        assert!(lines[0].starts_with("Cut "), "{a}");
        assert!(lines[1].trim_start().starts_with("SemFilter "), "{a}");
        assert!(lines[2].trim_start().starts_with("Scan "), "{a}");
        assert!(lines.iter().all(|l| l.contains("(rows<=")), "{a}");
    }
}
