//! Property-based tests for the synthetic data generators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tag_datagen::corpus;
use tag_lm::lexicon;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated comments carry their planted signal for any seed/topic:
    /// positive > 0, negative < 0, sarcastic above the detector
    /// threshold.
    #[test]
    fn comment_signals_hold(seed in any::<u64>(), topic in "[a-z]{3,10}") {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(lexicon::sentiment_score(&corpus::positive_comment(&mut rng, &topic)) > 0.3);
        prop_assert!(lexicon::sentiment_score(&corpus::negative_comment(&mut rng, &topic)) < -0.3);
        prop_assert!(lexicon::sarcasm_score(&corpus::sarcastic_comment(&mut rng, &topic)) > 0.35);
    }

    /// Graded reviews order by planted level under the lexicon score,
    /// for any seed.
    #[test]
    fn review_grades_are_ordered(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scores: Vec<f64> = [-2i8, -1, 1, 2]
            .iter()
            .map(|l| lexicon::sentiment_score(&corpus::graded_review(&mut rng, "T", *l)))
            .collect();
        for w in scores.windows(2) {
            prop_assert!(w[0] < w[1], "scores must strictly increase: {scores:?}");
        }
    }

    /// Domain generation is a pure function of the seed.
    #[test]
    fn schools_deterministic(seed in any::<u64>()) {
        let a = tag_datagen::schools::generate(seed, 25);
        let b = tag_datagen::schools::generate(seed, 25);
        prop_assert_eq!(
            a.db.catalog().table("schools").unwrap().rows(),
            b.db.catalog().table("schools").unwrap().rows()
        );
    }
}
