//! The `california_schools` domain: one wide `schools` table, BIRD-style.

use crate::DomainData;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tag_lm::knowledge::{KnowledgeBase, KnowledgeConfig};
use tag_sql::Database;

/// Cities used in the table: every region city from the knowledge base
/// plus region-neutral filler towns, each with a plausible longitude.
fn city_pool(kb: &KnowledgeBase) -> Vec<(String, f64)> {
    let mut cities: Vec<String> = Vec::new();
    for region in kb.known_regions() {
        for c in kb.true_cities_in_region(region) {
            if !cities.iter().any(|x| x == c) {
                cities.push(c.to_owned());
            }
        }
    }
    for extra in [
        "Eureka",
        "Redding",
        "Chico",
        "Truckee",
        "Barstow",
        "Needles",
        "Bishop",
        "Ukiah",
        "Susanville",
        "Alturas",
    ] {
        cities.push(extra.to_owned());
    }
    cities
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            // Deterministic per-city base longitude in [-124.2, -114.2].
            let lon = -124.2 + (i as f64 * 0.37) % 10.0;
            (c, lon)
        })
        .collect()
}

const SCHOOLS_DDL: &str = "CREATE TABLE schools (
            CDSCode INTEGER PRIMARY KEY,
            School TEXT NOT NULL,
            City TEXT,
            County TEXT,
            Longitude REAL,
            Latitude REAL,
            AvgScrMath INTEGER,
            AvgScrRead INTEGER,
            Enrollment INTEGER,
            GSoffered TEXT,
            Charter INTEGER,
            FundingType TEXT,
            DOC TEXT,
            SOC TEXT,
            EdOpsName TEXT,
            Virtual TEXT,
            Magnet INTEGER,
            Phone TEXT,
            Zip TEXT,
            AdmFName TEXT,
            AdmLName TEXT,
            AdmEmail TEXT,
            LastUpdate TEXT
        )";

/// One drawn `schools` row. Both generation paths (per-row SQL and the
/// bulk typed-row fast path) consume this, so the RNG stream — and the
/// data — is identical regardless of path.
struct SchoolDraw {
    id: usize,
    name: String,
    city: String,
    lon: f64,
    lat: f64,
    math: i64,
    read: i64,
    enrollment: i64,
    grades: &'static str,
    charter: i64,
    funding: &'static str,
    doc: i64,
    soc: i64,
    magnet: i64,
    phone: i64,
    zip: i64,
    day: i64,
}

/// One drawn `frpm` + `satscores` row pair.
struct AuxDraw {
    id: i64,
    enroll: i64,
    free: i64,
    free_extra: i64,
    charter: i64,
    takers: i64,
    verbal: i64,
    ge1500: i64,
}

fn draw_school(
    rng: &mut StdRng,
    cities: &[(String, f64)],
    bay_cities: &[&str],
    id: usize,
) -> SchoolDraw {
    const NAME_PARTS: &[&str] = &[
        "Washington",
        "Lincoln",
        "Jefferson",
        "Mission",
        "Valley",
        "Creek",
        "Summit",
        "Oak",
        "Cedar",
        "Sierra",
        "Pacific",
        "Golden",
        "Bayview",
        "Hillside",
        "Meadow",
    ];
    const KINDS: &[&str] = &["Elementary", "Middle", "High", "Charter Academy"];
    const GRADES: &[&str] = &["K-5", "K-8", "K-12", "6-8", "9-12"];

    let (city, base_lon) = &cities[rng.gen_range(0..cities.len())];
    // Anchor rows: a few schools are pinned to a Bay Area city with a
    // top math score so the benchmark's rare conjunctions (Bay Area
    // AND AvgScrMath over 700/705) stay well-posed at every seed.
    // Draws happen first so the stream stays identical either way.
    let (city, base_lon) = if id < 3 && !bay_cities.is_empty() {
        let c = bay_cities[id % bay_cities.len()];
        let lon = cities
            .iter()
            .find(|(name, _)| name == c)
            .map(|(_, l)| *l)
            .unwrap_or(*base_lon);
        (c.to_owned(), lon)
    } else {
        (city.clone(), *base_lon)
    };
    let name = format!(
        "{} {} {}",
        NAME_PARTS[rng.gen_range(0..NAME_PARTS.len())],
        &city,
        KINDS[rng.gen_range(0..KINDS.len())]
    );
    let lon = base_lon + rng.gen_range(-0.05..0.05);
    let lat = 37.0 + rng.gen_range(-4.5..4.5);
    let math: i64 = {
        let drawn = rng.gen_range(380..720);
        if id < 3 {
            706 + id as i64 * 4
        } else {
            drawn
        }
    };
    let read: i64 = math + rng.gen_range(-60..60);
    let enrollment: i64 = rng.gen_range(120..3200);
    let grades = GRADES[rng.gen_range(0..GRADES.len())];
    let charter = i64::from(rng.gen_bool(0.2));
    let funding = [
        "Directly funded",
        "Locally funded",
        "Not in CS funding model",
    ][rng.gen_range(0..3)];
    SchoolDraw {
        id,
        name,
        city,
        lon,
        lat,
        math,
        read,
        enrollment,
        grades,
        charter,
        funding,
        doc: rng.gen_range(52..66),
        soc: rng.gen_range(60..70),
        magnet: i64::from(rng.gen_bool(0.1)),
        phone: rng.gen_range(0..9999),
        zip: rng.gen_range(1000..5999),
        day: rng.gen_range(1..28),
    }
}

fn draw_aux(rng: &mut StdRng, id: i64) -> AuxDraw {
    let enroll = rng.gen_range(120..3200);
    let free = rng.gen_range(0..enroll);
    let free_extra = rng.gen_range(0..50);
    let charter = i64::from(rng.gen_bool(0.2));
    let takers = rng.gen_range(20..600);
    AuxDraw {
        id,
        enroll,
        free,
        free_extra,
        charter,
        takers,
        verbal: rng.gen_range(380..720),
        ge1500: rng.gen_range(0..takers),
    }
}

/// Create the auxiliary BIRD tables (frpm, satscores): referenced by
/// Text2SQL prompts and indexed by RAG, widening schemas to realistic
/// BIRD proportions. Benchmark queries only target `schools`.
fn create_aux_tables(db: &mut Database) {
    db.execute(
        "CREATE TABLE frpm (
            CDSCode INTEGER PRIMARY KEY,
            \"Academic Year\" TEXT,
            \"Free Meal Count\" INTEGER,
            \"FRPM Count\" INTEGER,
            \"Enrollment K12\" INTEGER,
            \"Charter School\" INTEGER
        )",
    )
    .expect("create frpm");
    db.execute(
        "CREATE TABLE satscores (
            cds INTEGER PRIMARY KEY,
            NumTstTakr INTEGER,
            AvgScrVerbal INTEGER,
            NumGE1500 INTEGER
        )",
    )
    .expect("create satscores");
}

fn setup(seed: u64) -> (StdRng, Vec<(String, f64)>, Vec<&'static str>, Database) {
    let rng = StdRng::seed_from_u64(seed ^ 0x5C00);
    let kb = KnowledgeBase::new(KnowledgeConfig {
        coverage: 1.0,
        enumeration_coverage: 1.0,
        seed: 0,
    });
    let cities = city_pool(&kb);
    let bay_cities: Vec<&'static str> = kb.true_cities_in_region("Bay Area").to_vec();
    let mut db = Database::new();
    db.execute(SCHOOLS_DDL).expect("create schools");
    (rng, cities, bay_cities, db)
}

/// Generate the domain with `n` schools.
pub fn generate(seed: u64, n: usize) -> DomainData {
    let (mut rng, cities, bay_cities, mut db) = setup(seed);
    for id in 0..n {
        let d = draw_school(&mut rng, &cities, &bay_cities, id);
        db.execute(&format!(
            "INSERT INTO schools VALUES ({}, '{}', '{}', '{} County', {:.4}, {:.4}, \
             {}, {}, {}, '{}', {}, '{}', \
             '{:02}', '{:02}', 'Traditional', 'N', {}, '(555) 555-{:04}', \
             '9{:04}', 'Alex', 'Rivera', 'admin{}@example.edu', '2015-06-{:02}')",
            d.id + 1,
            d.name.replace('\'', "''"),
            d.city.replace('\'', "''"),
            d.city.replace('\'', "''"),
            d.lon,
            d.lat,
            d.math,
            d.read,
            d.enrollment,
            d.grades,
            d.charter,
            d.funding,
            d.doc,
            d.soc,
            d.magnet,
            d.phone,
            d.zip,
            d.id + 1,
            d.day,
        ))
        .expect("insert school");
    }
    create_aux_tables(&mut db);
    for id in 1..=(n as i64) {
        let a = draw_aux(&mut rng, id);
        db.execute(&format!(
            "INSERT INTO frpm VALUES ({}, '2014-2015', {}, {}, {}, {})",
            a.id,
            a.free,
            a.free + a.free_extra,
            a.enroll,
            a.charter,
        ))
        .expect("insert frpm");
        db.execute(&format!(
            "INSERT INTO satscores VALUES ({}, {}, {}, {})",
            a.id, a.takers, a.verbal, a.ge1500,
        ))
        .expect("insert satscores");
    }
    DomainData::new("california_schools", db)
}

/// Round like the SQL path's `{:.4}` literal formatting, so bulk rows
/// carry the identical stored float.
fn round4(x: f64) -> f64 {
    format!("{x:.4}").parse().expect("formatted float")
}

/// Generate the domain with `n` schools through the typed row API —
/// the same seed draws the same data as [`generate`], but rows bypass
/// per-row SQL parsing/planning. This is what makes the `huge` scale
/// tier (10⁶ rows, [`crate::Scale::huge`]) practical: bulk generation
/// is ~2 orders of magnitude faster than the SQL path.
pub fn generate_bulk(seed: u64, n: usize) -> DomainData {
    use tag_sql::Value;
    let (mut rng, cities, bay_cities, mut db) = setup(seed);
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(n);
    for id in 0..n {
        let d = draw_school(&mut rng, &cities, &bay_cities, id);
        rows.push(vec![
            Value::Int(d.id as i64 + 1),
            Value::Text(d.name),
            Value::Text(d.city.clone()),
            Value::Text(format!("{} County", d.city)),
            Value::Float(round4(d.lon)),
            Value::Float(round4(d.lat)),
            Value::Int(d.math),
            Value::Int(d.read),
            Value::Int(d.enrollment),
            Value::text(d.grades),
            Value::Int(d.charter),
            Value::text(d.funding),
            Value::Text(format!("{:02}", d.doc)),
            Value::Text(format!("{:02}", d.soc)),
            Value::text("Traditional"),
            Value::text("N"),
            Value::Int(d.magnet),
            Value::Text(format!("(555) 555-{:04}", d.phone)),
            Value::Text(format!("9{:04}", d.zip)),
            Value::text("Alex"),
            Value::text("Rivera"),
            Value::Text(format!("admin{}@example.edu", d.id + 1)),
            Value::Text(format!("2015-06-{:02}", d.day)),
        ]);
    }
    db.catalog_mut()
        .table_mut("schools")
        .expect("schools table")
        .insert_all(rows)
        .expect("bulk insert schools");
    create_aux_tables(&mut db);
    let mut frpm_rows: Vec<Vec<Value>> = Vec::with_capacity(n);
    let mut sat_rows: Vec<Vec<Value>> = Vec::with_capacity(n);
    for id in 1..=(n as i64) {
        let a = draw_aux(&mut rng, id);
        frpm_rows.push(vec![
            Value::Int(a.id),
            Value::text("2014-2015"),
            Value::Int(a.free),
            Value::Int(a.free + a.free_extra),
            Value::Int(a.enroll),
            Value::Int(a.charter),
        ]);
        sat_rows.push(vec![
            Value::Int(a.id),
            Value::Int(a.takers),
            Value::Int(a.verbal),
            Value::Int(a.ge1500),
        ]);
    }
    db.catalog_mut()
        .table_mut("frpm")
        .expect("frpm table")
        .insert_all(frpm_rows)
        .expect("bulk insert frpm");
    db.catalog_mut()
        .table_mut("satscores")
        .expect("satscores table")
        .insert_all(sat_rows)
        .expect("bulk insert satscores");
    DomainData::new("california_schools", db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_rows() {
        let d = generate(1, 300);
        let t = d.db.catalog().table("schools").unwrap();
        assert_eq!(t.len(), 300);
        assert_eq!(t.schema().len(), 23);
    }

    #[test]
    fn deterministic() {
        let a = generate(1, 50);
        let b = generate(1, 50);
        assert_eq!(
            a.db.catalog().table("schools").unwrap().rows(),
            b.db.catalog().table("schools").unwrap().rows()
        );
        let c = generate(2, 50);
        assert_ne!(
            a.db.catalog().table("schools").unwrap().rows(),
            c.db.catalog().table("schools").unwrap().rows()
        );
    }

    #[test]
    fn bulk_path_draws_identical_data() {
        let sql = generate(11, 120);
        let bulk = generate_bulk(11, 120);
        for table in ["schools", "frpm", "satscores"] {
            assert_eq!(
                sql.db.catalog().table(table).unwrap().rows(),
                bulk.db.catalog().table(table).unwrap().rows(),
                "{table} diverged between SQL and bulk generation"
            );
        }
    }

    #[test]
    fn covers_region_and_neutral_cities() {
        let d = generate(3, 500);
        let mut db = d.db;
        let sv = db
            .query_scalar(
                "SELECT COUNT(*) FROM schools WHERE City IN ('Palo Alto', 'Cupertino', 'San Jose')",
            )
            .unwrap();
        let neutral = db
            .query_scalar("SELECT COUNT(*) FROM schools WHERE City = 'Eureka'")
            .unwrap();
        assert!(sv.as_i64().unwrap() > 0);
        assert!(neutral.as_i64().unwrap() > 0);
    }
}
