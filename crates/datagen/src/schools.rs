//! The `california_schools` domain: one wide `schools` table, BIRD-style.

use crate::DomainData;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tag_lm::knowledge::{KnowledgeBase, KnowledgeConfig};
use tag_sql::Database;

/// Cities used in the table: every region city from the knowledge base
/// plus region-neutral filler towns, each with a plausible longitude.
fn city_pool(kb: &KnowledgeBase) -> Vec<(String, f64)> {
    let mut cities: Vec<String> = Vec::new();
    for region in kb.known_regions() {
        for c in kb.true_cities_in_region(region) {
            if !cities.iter().any(|x| x == c) {
                cities.push(c.to_owned());
            }
        }
    }
    for extra in [
        "Eureka",
        "Redding",
        "Chico",
        "Truckee",
        "Barstow",
        "Needles",
        "Bishop",
        "Ukiah",
        "Susanville",
        "Alturas",
    ] {
        cities.push(extra.to_owned());
    }
    cities
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            // Deterministic per-city base longitude in [-124.2, -114.2].
            let lon = -124.2 + (i as f64 * 0.37) % 10.0;
            (c, lon)
        })
        .collect()
}

/// Generate the domain with `n` schools.
pub fn generate(seed: u64, n: usize) -> DomainData {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5C00);
    let kb = KnowledgeBase::new(KnowledgeConfig {
        coverage: 1.0,
        enumeration_coverage: 1.0,
        seed: 0,
    });
    let cities = city_pool(&kb);
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE schools (
            CDSCode INTEGER PRIMARY KEY,
            School TEXT NOT NULL,
            City TEXT,
            County TEXT,
            Longitude REAL,
            Latitude REAL,
            AvgScrMath INTEGER,
            AvgScrRead INTEGER,
            Enrollment INTEGER,
            GSoffered TEXT,
            Charter INTEGER,
            FundingType TEXT,
            DOC TEXT,
            SOC TEXT,
            EdOpsName TEXT,
            Virtual TEXT,
            Magnet INTEGER,
            Phone TEXT,
            Zip TEXT,
            AdmFName TEXT,
            AdmLName TEXT,
            AdmEmail TEXT,
            LastUpdate TEXT
        )",
    )
    .expect("create schools");

    const NAME_PARTS: &[&str] = &[
        "Washington",
        "Lincoln",
        "Jefferson",
        "Mission",
        "Valley",
        "Creek",
        "Summit",
        "Oak",
        "Cedar",
        "Sierra",
        "Pacific",
        "Golden",
        "Bayview",
        "Hillside",
        "Meadow",
    ];
    const KINDS: &[&str] = &["Elementary", "Middle", "High", "Charter Academy"];
    const GRADES: &[&str] = &["K-5", "K-8", "K-12", "6-8", "9-12"];

    let bay_cities: Vec<&str> = kb.true_cities_in_region("Bay Area").to_vec();
    for id in 0..n {
        let (city, base_lon) = &cities[rng.gen_range(0..cities.len())];
        // Anchor rows: a few schools are pinned to a Bay Area city with a
        // top math score so the benchmark's rare conjunctions (Bay Area
        // AND AvgScrMath over 700/705) stay well-posed at every seed.
        // Draws happen first so the stream stays identical either way.
        let (city, base_lon) = if id < 3 && !bay_cities.is_empty() {
            let c = bay_cities[id % bay_cities.len()];
            let lon = cities
                .iter()
                .find(|(name, _)| name == c)
                .map(|(_, l)| *l)
                .unwrap_or(*base_lon);
            (c.to_owned(), lon)
        } else {
            (city.clone(), *base_lon)
        };
        let name = format!(
            "{} {} {}",
            NAME_PARTS[rng.gen_range(0..NAME_PARTS.len())],
            &city,
            KINDS[rng.gen_range(0..KINDS.len())]
        );
        let lon = base_lon + rng.gen_range(-0.05..0.05);
        let lat = 37.0 + rng.gen_range(-4.5..4.5);
        let math: i64 = {
            let drawn = rng.gen_range(380..720);
            if id < 3 {
                706 + id as i64 * 4
            } else {
                drawn
            }
        };
        let read: i64 = math + rng.gen_range(-60..60);
        let enrollment: i64 = rng.gen_range(120..3200);
        let grades = GRADES[rng.gen_range(0..GRADES.len())];
        let charter = i64::from(rng.gen_bool(0.2));
        let funding = [
            "Directly funded",
            "Locally funded",
            "Not in CS funding model",
        ][rng.gen_range(0..3)];
        db.execute(&format!(
            "INSERT INTO schools VALUES ({}, '{}', '{}', '{} County', {:.4}, {:.4}, \
             {math}, {read}, {enrollment}, '{grades}', {charter}, '{funding}', \
             '{:02}', '{:02}', 'Traditional', 'N', {}, '(555) 555-{:04}', \
             '9{:04}', 'Alex', 'Rivera', 'admin{}@example.edu', '2015-06-{:02}')",
            id + 1,
            name.replace('\'', "''"),
            city.replace('\'', "''"),
            city.replace('\'', "''"),
            lon,
            lat,
            rng.gen_range(52..66),
            rng.gen_range(60..70),
            i64::from(rng.gen_bool(0.1)),
            rng.gen_range(0..9999),
            rng.gen_range(1000..5999),
            id + 1,
            rng.gen_range(1..28),
        ))
        .expect("insert school");
    }
    // Auxiliary BIRD tables (frpm, satscores): referenced by Text2SQL
    // prompts and indexed by RAG, widening schemas to realistic BIRD
    // proportions. Benchmark queries only target `schools`.
    db.execute(
        "CREATE TABLE frpm (
            CDSCode INTEGER PRIMARY KEY,
            \"Academic Year\" TEXT,
            \"Free Meal Count\" INTEGER,
            \"FRPM Count\" INTEGER,
            \"Enrollment K12\" INTEGER,
            \"Charter School\" INTEGER
        )",
    )
    .expect("create frpm");
    db.execute(
        "CREATE TABLE satscores (
            cds INTEGER PRIMARY KEY,
            NumTstTakr INTEGER,
            AvgScrVerbal INTEGER,
            NumGE1500 INTEGER
        )",
    )
    .expect("create satscores");
    for id in 1..=(n as i64) {
        let enroll = rng.gen_range(120..3200);
        let free = rng.gen_range(0..enroll);
        db.execute(&format!(
            "INSERT INTO frpm VALUES ({id}, '2014-2015', {free}, {}, {enroll}, {})",
            free + rng.gen_range(0..50),
            i64::from(rng.gen_bool(0.2)),
        ))
        .expect("insert frpm");
        let takers = rng.gen_range(20..600);
        db.execute(&format!(
            "INSERT INTO satscores VALUES ({id}, {takers}, {}, {})",
            rng.gen_range(380..720),
            rng.gen_range(0..takers),
        ))
        .expect("insert satscores");
    }
    DomainData::new("california_schools", db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_rows() {
        let d = generate(1, 300);
        let t = d.db.catalog().table("schools").unwrap();
        assert_eq!(t.len(), 300);
        assert_eq!(t.schema().len(), 23);
    }

    #[test]
    fn deterministic() {
        let a = generate(1, 50);
        let b = generate(1, 50);
        assert_eq!(
            a.db.catalog().table("schools").unwrap().rows(),
            b.db.catalog().table("schools").unwrap().rows()
        );
        let c = generate(2, 50);
        assert_ne!(
            a.db.catalog().table("schools").unwrap().rows(),
            c.db.catalog().table("schools").unwrap().rows()
        );
    }

    #[test]
    fn covers_region_and_neutral_cities() {
        let d = generate(3, 500);
        let mut db = d.db;
        let sv = db
            .query_scalar(
                "SELECT COUNT(*) FROM schools WHERE City IN ('Palo Alto', 'Cupertino', 'San Jose')",
            )
            .unwrap();
        let neutral = db
            .query_scalar("SELECT COUNT(*) FROM schools WHERE City = 'Eureka'")
            .unwrap();
        assert!(sv.as_i64().unwrap() > 0);
        assert!(neutral.as_i64().unwrap() > 0);
    }
}
