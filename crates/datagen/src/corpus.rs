//! Text corpora for synthetic data: templated text with *planted*
//! semantic labels.
//!
//! Generated comments, reviews, and titles carry known ground-truth
//! properties (sentiment, sarcasm, technicality level). The templates
//! draw their signal words from `tag_lm::lexicon` so the simulated LM's
//! reasoning circuits can plausibly recover the labels — with realistic
//! imperfection on low-signal text — while the oracle grades against the
//! planted label, never the LM's own scores.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use tag_lm::lexicon::{NEGATIVE_WORDS, POSITIVE_WORDS, SARCASM_MARKERS, TECHNICAL_TERMS};

/// Neutral topic nouns for filler text.
pub const TOPICS: &[&str] = &[
    "dataset",
    "notebook",
    "survey",
    "figure",
    "appendix",
    "chapter",
    "course",
    "lecture",
    "homework",
    "project",
    "experiment",
    "report",
];

/// Casual, jargon-free title fragments.
pub const CASUAL_SUBJECTS: &[&str] = &[
    "my weekend hiking trip",
    "favorite lunch recipes",
    "pictures from the conference dinner",
    "thoughts on office plants",
    "a question about scheduling",
    "looking for book recommendations",
    "how to organize my desk",
    "travel tips for the summer",
];

/// Pick an element deterministically.
pub fn pick<'a, T: ?Sized>(rng: &mut StdRng, items: &'a [&'a T]) -> &'a T {
    items.choose(rng).expect("nonempty pool")
}

/// A clearly positive comment (planted sentiment = +1).
pub fn positive_comment(rng: &mut StdRng, topic: &str) -> String {
    let a = pick(rng, POSITIVE_WORDS);
    let b = pick(rng, POSITIVE_WORDS);
    format!("This {topic} answer is {a} and genuinely {b}, it settled my question.")
}

/// A clearly negative comment (planted sentiment = -1).
pub fn negative_comment(rng: &mut StdRng, topic: &str) -> String {
    let a = pick(rng, NEGATIVE_WORDS);
    let b = pick(rng, NEGATIVE_WORDS);
    format!("The {topic} derivation here is {a} and frankly {b}, it misses the point.")
}

/// A neutral comment (planted sentiment = 0, not sarcastic). A fraction
/// opens with "Obviously," — sincere emphasis that a sarcasm detector
/// (human or model) can misread, like real annotation-boundary data.
pub fn neutral_comment(rng: &mut StdRng, topic: &str) -> String {
    let t2 = pick(rng, TOPICS);
    let n: u32 = rng.gen_range(2..9);
    if rng.gen_range(0..6) == 0 {
        format!("Obviously the {topic} in section {n} assumes the {t2} is complete.")
    } else {
        format!("See also the {topic} in section {n} and the linked {t2} for details.")
    }
}

/// A sarcastic comment (planted sarcastic = true). Roughly half carry a
/// strong double signal; the rest are drier (single marker, no
/// exclamation) and sit near a detector's decision boundary.
pub fn sarcastic_comment(rng: &mut StdRng, topic: &str) -> String {
    let marker = pick(rng, SARCASM_MARKERS);
    let marker = {
        // Capitalize the leading letter for natural text.
        let mut c = marker.chars();
        match c.next() {
            Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
            None => String::new(),
        }
    };
    if rng.gen_bool(0.5) {
        format!("{marker}, yet another {topic} that ignores the assumptions entirely!")
    } else {
        format!("{marker}, the {topic} settles it then.")
    }
}

/// A post title with `level` planted technicality (0 = casual chatter,
/// higher = more jargon-dense). Levels are comparable: a level-`n` title
/// contains exactly `n` distinct jargon terms over a fixed-length frame.
pub fn technical_title(rng: &mut StdRng, level: usize) -> String {
    if level == 0 {
        return format!("Chatting about {}", pick(rng, CASUAL_SUBJECTS));
    }
    let start = rng.gen_range(0..TECHNICAL_TERMS.len());
    let terms: Vec<&str> = (0..level)
        .map(|i| TECHNICAL_TERMS[(start + i * 7) % TECHNICAL_TERMS.len()])
        .collect();
    let base = match level {
        1 => format!("A question about {} in practice", terms[0]),
        2 => format!("How does {} interact with {}?", terms[0], terms[1]),
        3 => format!(
            "Choosing {} under {} with {} constraints",
            terms[0], terms[1], terms[2]
        ),
        _ => format!(
            "On {} and {} for {} with {} guarantees",
            terms[0],
            terms[1],
            terms[2],
            terms[3 % terms.len()]
        ),
    };
    // A variable-length filler tail makes jargon *density* overlap
    // between adjacent levels — adjacent-level comparisons become
    // genuinely hard judgments, as in real ranking data.
    const TAILS: &[&str] = &[
        "",
        " - any references welcome",
        " for a small dataset",
        " when sample sizes are tiny and noisy",
    ];
    format!("{base}{}", TAILS[rng.gen_range(0..TAILS.len())])
}

/// A positive movie review (planted sentiment = +1).
pub fn positive_review(rng: &mut StdRng, title: &str) -> String {
    graded_review(rng, title, 2)
}

/// A negative movie review (planted sentiment = -1).
pub fn negative_review(rng: &mut StdRng, title: &str) -> String {
    graded_review(rng, title, -2)
}

/// A review with graded sentiment `level` in {-2, -1, 1, 2}: the mix of
/// positive/negative words is chosen so the lexicon score strictly
/// increases with the level (-1.0, -0.33, 0.33, 1.0), giving ranking
/// queries a recoverable total order.
pub fn graded_review(rng: &mut StdRng, title: &str, level: i8) -> String {
    // Each level has a strong and a hedged variant; hedged variants sit
    // closer to the neighbouring level, so rankings are recoverable but
    // not trivial.
    let strong = rng.gen_bool(0.5);
    let (pos, neg) = match (level, strong) {
        (2, true) => (3, 0),
        (2, false) => (4, 1),
        (1, true) => (2, 1),
        (1, false) => (3, 2),
        (-1, true) => (1, 2),
        (-1, false) => (2, 3),
        (_, true) => (0, 3),
        (_, false) => (1, 4),
    };
    let mut words: Vec<String> = Vec::new();
    for _ in 0..pos {
        words.push((*pick(rng, POSITIVE_WORDS)).to_owned());
    }
    for _ in 0..neg {
        words.push((*pick(rng, NEGATIVE_WORDS)).to_owned());
    }
    let mut sentence = format!("{title} is {}", words[0]);
    for (i, w) in words.iter().enumerate().skip(1) {
        if i == words.len() - 1 {
            sentence.push_str(&format!(" and {w} overall"));
        } else {
            sentence.push_str(&format!(", {w}"));
        }
    }
    sentence.push('.');
    sentence
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tag_lm::lexicon::{sarcasm_score, sentiment_score, technicality_score};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn planted_sentiment_is_recoverable() {
        let mut r = rng();
        for _ in 0..20 {
            assert!(sentiment_score(&positive_comment(&mut r, "boosting")) > 0.3);
            assert!(sentiment_score(&negative_comment(&mut r, "boosting")) < -0.3);
            assert_eq!(sentiment_score(&neutral_comment(&mut r, "boosting")), 0.0);
        }
    }

    #[test]
    fn planted_sarcasm_is_mostly_recoverable() {
        let mut r = rng();
        // Sarcastic comments always carry at least one marker; neutral
        // comments are usually clean but a deliberate minority open with
        // sincere "Obviously", which detectors misread (ambiguity is part
        // of the design).
        let mut neutral_false_positives = 0;
        for _ in 0..60 {
            let s = sarcastic_comment(&mut r, "regression");
            assert!(sarcasm_score(&s) > 0.35, "{s}");
            let n = neutral_comment(&mut r, "regression");
            if sarcasm_score(&n) >= 0.35 {
                neutral_false_positives += 1;
            }
        }
        assert!(
            (1..=25).contains(&neutral_false_positives),
            "got {neutral_false_positives}"
        );
    }

    #[test]
    fn technicality_levels_are_ordered_on_average() {
        let mut r = rng();
        // Per-sample scores may overlap between adjacent levels (the
        // filler tails create genuinely hard comparisons), but the means
        // must be strictly increasing and the extremes well separated.
        let mut means = [0.0f64; 5];
        const N: usize = 60;
        for (lvl, mean) in means.iter_mut().enumerate() {
            for _ in 0..N {
                *mean += technicality_score(&technical_title(&mut r, lvl));
            }
            *mean /= N as f64;
        }
        for w in means.windows(2) {
            assert!(w[1] > w[0], "means must increase: {means:?}");
        }
        assert!(means[0] < 0.05, "{means:?}");
        assert!(means[4] > 0.5, "{means:?}");
    }

    #[test]
    fn reviews_have_planted_signal() {
        let mut r = rng();
        assert!(sentiment_score(&positive_review(&mut r, "Titanic")) > 0.3);
        assert!(sentiment_score(&negative_review(&mut r, "Titanic")) < -0.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rng();
        let mut b = rng();
        assert_eq!(positive_comment(&mut a, "x"), positive_comment(&mut b, "x"));
    }
}
