//! Deterministic hash partitioning of generated domains across shards.
//!
//! Each domain declares which tables partition (the large, generated
//! ones) and on which column — the *partition key*. A row lives on
//! shard [`partition_for`]`(key, n)`; every other table is small and
//! replicated in full on every shard. Slices are cut from the
//! deterministically generated tables row-by-row, so the union of all
//! shard slices, re-interleaved by their recorded global row indices,
//! is byte-identical to the unsharded table — the RNG stream never
//! depends on the shard count.

use crate::DomainData;
use std::collections::HashMap;
use tag_sql::{Database, Table, Value};

/// Which shard (of `n`) owns a row whose partition key is `key`.
///
/// The hash mirrors [`Value`]'s own `Hash`/`Eq` unification: `Int(5)`
/// and `Float(5.0)` are equal values in this engine, so they must land
/// on the same shard — both hash through the f64 bit pattern. The
/// function is a fixed FNV-1a over a tag byte plus the value's bytes,
/// so placements are stable across runs, platforms, and compiler
/// versions (a re-partition must not silently reshuffle a deployment).
pub fn partition_for(key: &Value, n: usize) -> usize {
    debug_assert!(n > 0, "shard count must be positive");
    if n <= 1 {
        return 0;
    }
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    };
    match key {
        Value::Null => eat(0),
        Value::Int(i) => {
            eat(1);
            for b in (*i as f64).to_bits().to_le_bytes() {
                eat(b);
            }
        }
        Value::Float(f) => {
            eat(1);
            for b in f.to_bits().to_le_bytes() {
                eat(b);
            }
        }
        Value::Text(s) => {
            eat(2);
            for b in s.as_bytes() {
                eat(*b);
            }
        }
    }
    (h % n as u64) as usize
}

/// One table's partitioning declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Table name (as created by the domain generator).
    pub table: &'static str,
    /// The partition-key column.
    pub column: &'static str,
}

/// The partitioned tables of a domain (by the domain's BIRD name).
/// Tables not listed are replicated in full on every shard. `schools`
/// partitions on `City` — the column the benchmark's point lookups
/// filter on, so a keyed query prunes to one shard; the other large
/// tables partition on their generated key.
pub fn partition_spec(domain: &str) -> &'static [PartitionSpec] {
    match domain {
        "california_schools" => &[
            PartitionSpec {
                table: "schools",
                column: "City",
            },
            PartitionSpec {
                table: "frpm",
                column: "CDSCode",
            },
            PartitionSpec {
                table: "satscores",
                column: "cds",
            },
        ],
        "european_football_2" => &[
            PartitionSpec {
                table: "players",
                column: "id",
            },
            PartitionSpec {
                table: "matches",
                column: "match_id",
            },
        ],
        "codebase_community" => &[
            PartitionSpec {
                table: "posts",
                column: "Id",
            },
            PartitionSpec {
                table: "comments",
                column: "Id",
            },
        ],
        "debit_card_specializing" => &[
            PartitionSpec {
                table: "customers",
                column: "CustomerID",
            },
            PartitionSpec {
                table: "yearmonth",
                column: "CustomerID",
            },
        ],
        // formula_1 cardinality is circuit history and movies is the
        // fixed Figure 1 table: both stay replicated.
        _ => &[],
    }
}

/// One shard's slice of a domain: partitioned tables hold only the
/// rows this shard owns; replicated tables are full copies.
#[derive(Debug, Clone)]
pub struct ShardSlice {
    /// This shard's index in `0..n`.
    pub shard: usize,
    /// The slice database (same schemas and indexes as the original).
    pub db: Database,
    /// For each *partitioned* table (key: upper-cased name), the global
    /// row index of each local row, in local storage order. Replicated
    /// tables are absent (local order *is* global order).
    pub seq: HashMap<String, Vec<u64>>,
}

/// Cut `domain` into `n` shard slices using its registered
/// [`partition_spec`]. See [`partition_tables`].
pub fn partition_domain(domain: &DomainData, n: usize) -> Vec<ShardSlice> {
    let specs: Vec<(&str, &str)> = partition_spec(domain.name)
        .iter()
        .map(|s| (s.table, s.column))
        .collect();
    partition_tables(&domain.db, &specs, n)
}

/// Cut a database into `n` shard slices: each `(table, column)` spec
/// partitions that table by [`partition_for`] over the column; all
/// indexes are recreated per slice; unspecified tables are replicated
/// whole. Panics on `n == 0` or a spec naming a missing column (a
/// generator/spec mismatch is a bug, not an input error).
pub fn partition_tables(db: &Database, specs: &[(&str, &str)], n: usize) -> Vec<ShardSlice> {
    assert!(n > 0, "shard count must be positive");
    let mut shards: Vec<ShardSlice> = (0..n)
        .map(|shard| ShardSlice {
            shard,
            db: Database::new(),
            seq: HashMap::new(),
        })
        .collect();
    for name in db.catalog().table_names() {
        let table = db.catalog().table(&name).expect("listed table");
        let spec = specs
            .iter()
            .find(|(t, _)| t.eq_ignore_ascii_case(table.name()));
        match spec {
            Some((_, column)) => {
                let key_col = table
                    .schema()
                    .index_of(column)
                    .unwrap_or_else(|| panic!("no column {column:?} in table {}", table.name()));
                let mut slices: Vec<Table> = (0..n).map(|_| empty_like(table)).collect();
                let mut seqs: Vec<Vec<u64>> = vec![Vec::new(); n];
                for (global, row) in table.rows().iter().enumerate() {
                    let shard = partition_for(&row[key_col], n);
                    slices[shard].insert(row.clone()).expect("re-insert row");
                    seqs[shard].push(global as u64);
                }
                for (shard, (slice, seq)) in slices.into_iter().zip(seqs).enumerate() {
                    shards[shard]
                        .seq
                        .insert(table.name().to_ascii_uppercase(), seq);
                    shards[shard].db.catalog_mut().put_table(slice);
                }
            }
            None => {
                for s in &mut shards {
                    s.db.catalog_mut().put_table(table.clone());
                }
            }
        }
    }
    shards
}

/// An empty table with the same name, schema, and index definitions.
fn empty_like(table: &Table) -> Table {
    let mut t = Table::new(table.name(), table.schema().clone());
    for idx in table.indexes() {
        let column = &table.schema().column(idx.column).name;
        t.create_index(idx.name.clone(), column, idx.kind(), idx.unique)
            .expect("recreate index");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_float_keys_colocate() {
        for n in [1usize, 2, 3, 8] {
            assert_eq!(
                partition_for(&Value::Int(5), n),
                partition_for(&Value::Float(5.0), n)
            );
            assert_eq!(
                partition_for(&Value::Int(-3), n),
                partition_for(&Value::Float(-3.0), n)
            );
        }
    }

    #[test]
    fn placement_is_fixed() {
        // Pinned values: a reshuffle would repartition deployments.
        assert_eq!(partition_for(&Value::text("Palo Alto"), 8), 1);
        assert_eq!(partition_for(&Value::Int(42), 8), 1);
        assert_eq!(partition_for(&Value::Null, 8), 7);
    }

    #[test]
    fn union_of_slices_reconstructs_each_table() {
        let domain = crate::schools::generate(9, 120);
        for n in [1usize, 2, 3, 8] {
            let shards = partition_domain(&domain, n);
            for name in domain.db.catalog().table_names() {
                let original = domain.db.catalog().table(&name).unwrap();
                let mut rebuilt = vec![None; original.len()];
                for s in &shards {
                    let slice = s.db.catalog().table(&name).unwrap();
                    let seq = &s.seq[&name.to_ascii_uppercase()];
                    assert_eq!(seq.len(), slice.len());
                    for (local, global) in seq.iter().enumerate() {
                        rebuilt[*global as usize] = Some(slice.row(local).clone());
                    }
                    assert_eq!(slice.indexes().len(), original.indexes().len());
                }
                for (global, row) in rebuilt.into_iter().enumerate() {
                    assert_eq!(row.as_ref(), Some(original.row(global)), "row {global}");
                }
            }
        }
    }

    #[test]
    fn replicated_tables_are_full_copies() {
        let domain = crate::formula1::generate(4, 8);
        let shards = partition_domain(&domain, 3);
        for s in &shards {
            assert!(s.seq.is_empty());
            for name in domain.db.catalog().table_names() {
                assert_eq!(
                    s.db.catalog().table(&name).unwrap().rows(),
                    domain.db.catalog().table(&name).unwrap().rows()
                );
            }
        }
    }

    #[test]
    fn rows_route_by_partition_key() {
        let domain = crate::schools::generate(5, 90);
        let shards = partition_domain(&domain, 4);
        for s in &shards {
            let slice = s.db.catalog().table("schools").unwrap();
            let city = slice.schema().index_of("City").unwrap();
            for row in slice.rows() {
                assert_eq!(partition_for(&row[city], 4), s.shard);
            }
        }
    }
}
