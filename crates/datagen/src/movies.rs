//! The movies table from Figure 1: titles, genres, revenue, and a
//! free-text review per film. Titanic is the highest-grossing romance
//! classic, so the paper's running example has its intended answer.
//!
//! Review sentiment is *graded* (levels -2, -1, +1, +2) and keyed to the
//! revenue rank, so "most positive review" rankings over any top-k
//! (k ≤ 4) revenue cut have a unique planted ground truth.

use crate::corpus;
use crate::{DomainData, Labels};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tag_lm::knowledge::{KnowledgeBase, KnowledgeConfig};
use tag_sql::Database;

const GENRES: &[&str] = &["Romance", "SciFi", "Action", "Drama", "Comedy", "Horror"];

const FILLER_TITLES: &[&str] = &[
    "Midnight Express Lane",
    "The Quiet Harbor",
    "Steel Horizon",
    "Paper Lanterns",
    "The Last Orchard",
    "Crimson Tide Pool",
    "Echoes of Tomorrow",
    "The Glass Garden",
    "Northbound",
    "Silent Circuit",
    "The Velvet Hour",
    "Falling Slowly",
    "Desert of Mirrors",
    "The Cartographer",
    "Blue Evening",
    "Harvest Moon Waltz",
    "The Seventh Door",
    "Gravity's Edge",
    "A Winter Abroad",
    "The Lighthouse Keeper",
    "Salt and Cedar",
    "The Ninth Meridian",
    "Afternoon Static",
    "The Paper Kite",
    "Ember Season",
    "Two Rivers Down",
    "The Long Causeway",
    "Copper Sky",
    "A Quiet Arithmetic",
    "The Night Ferry",
    "Winterlight",
    "The Second Garden",
    "Stonefruit",
    "The Hollow Crown Road",
    "Driftwood Letters",
    "The Far Shore",
    "Morning Divide",
    "The Clockmaker's Son",
    "Amber Crossing",
    "The Tenth Summer",
    "Low Tide Hotel",
    "The Iron Meadow",
    "Glass Pilgrims",
    "The Orchard Gate",
    "Signal Fires",
    "The Borrowed Coast",
    "Pale Harbor Lights",
    "The Atlas Room",
];

// Permuted so sentiment order differs from revenue order on every
// top-k cut (k <= 4), in both the positive and negative direction.
const LEVELS: [i8; 4] = [-1, 2, -2, 1];

/// Generate the movies table. Classics (from the knowledge base) are
/// included alongside filler titles; Titanic gets the top revenue among
/// romance classics.
pub fn generate(seed: u64) -> DomainData {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3017);
    let kb = KnowledgeBase::new(KnowledgeConfig {
        coverage: 1.0,
        enumeration_coverage: 1.0,
        seed: 0,
    });
    let mut db = Database::new();
    let mut labels = Labels::default();
    db.execute(
        "CREATE TABLE movies (
            movie_title TEXT PRIMARY KEY,
            genre TEXT,
            revenue REAL,
            review TEXT
        )",
    )
    .expect("create movies");

    // Assemble (title, genre, revenue) first so review levels can be
    // keyed to the revenue rank.
    let mut films: Vec<(String, &str, f64)> = Vec::new();
    for classic in kb.true_classics() {
        let (genre, revenue) = if classic == "Titanic" {
            ("Romance", 2257.8)
        } else {
            (
                ["Romance", "Drama"][rng.gen_range(0..2)],
                rng.gen_range(80.0..900.0),
            )
        };
        films.push((classic.to_owned(), genre, revenue));
    }
    for (i, title) in FILLER_TITLES.iter().enumerate() {
        let genre = GENRES[i % GENRES.len()];
        let revenue = if i % 7 == 0 {
            rng.gen_range(2300.0..2900.0)
        } else {
            rng.gen_range(10.0..700.0)
        };
        films.push(((*title).to_owned(), genre, revenue));
    }

    // Revenue rank → graded review level.
    let mut order: Vec<usize> = (0..films.len()).collect();
    order.sort_by(|&a, &b| films[b].2.total_cmp(&films[a].2));
    let mut level_of = vec![0i8; films.len()];
    for (rank, &i) in order.iter().enumerate() {
        level_of[i] = LEVELS[rank % LEVELS.len()];
    }

    for (i, (title, genre, revenue)) in films.iter().enumerate() {
        let level = level_of[i];
        let review = corpus::graded_review(&mut rng, title, level);
        labels.review_sentiment.insert(title.clone(), level);
        db.execute(&format!(
            "INSERT INTO movies VALUES ('{}', '{genre}', {revenue:.1}, '{}')",
            title.replace('\'', "''"),
            review.replace('\'', "''"),
        ))
        .expect("insert movie");
    }
    DomainData::with_labels("movies", db, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tag_lm::lexicon::sentiment_score;

    #[test]
    fn titanic_tops_romance_classics() {
        let d = generate(1);
        let mut db = d.db;
        let kb = KnowledgeBase::new(KnowledgeConfig {
            coverage: 1.0,
            enumeration_coverage: 1.0,
            seed: 0,
        });
        let rs = db
            .execute("SELECT movie_title, revenue FROM movies WHERE genre = 'Romance'")
            .unwrap();
        let best = rs
            .rows
            .iter()
            .filter(|r| kb.true_is_classic_movie(&r[0].to_string()))
            .max_by(|a, b| a[1].total_cmp(&b[1]))
            .unwrap();
        assert_eq!(best[0].to_string(), "Titanic");
    }

    #[test]
    fn some_non_classics_out_gross_titanic() {
        let mut db = generate(1).db;
        let n = db
            .query_scalar("SELECT COUNT(*) FROM movies WHERE revenue > 2257.8")
            .unwrap()
            .as_i64()
            .unwrap();
        assert!(n >= 1, "the superlative must require the classic filter");
    }

    #[test]
    fn top_4_by_revenue_have_distinct_review_levels() {
        let d = generate(2);
        let mut db = d.db;
        let rs = db
            .execute("SELECT movie_title FROM movies ORDER BY revenue DESC LIMIT 4")
            .unwrap();
        let levels: Vec<i8> = rs
            .rows
            .iter()
            .map(|r| d.labels.review_sentiment[&r[0].to_string()])
            .collect();
        let mut sorted = levels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "levels: {levels:?}");
    }

    #[test]
    fn lexicon_scores_track_planted_levels() {
        let d = generate(3);
        let movies = d.db.catalog().table("movies").unwrap();
        for row in movies.rows() {
            let title = row[0].to_string();
            let review = row[3].to_string();
            let level = d.labels.review_sentiment[&title];
            let score = sentiment_score(&review);
            // Hedged variants shrink the gaps, but the sign and coarse
            // ordering must always follow the planted level.
            match level {
                2 => assert!(score > 0.5, "{review} -> {score}"),
                1 => assert!((0.1..0.5).contains(&score), "{review} -> {score}"),
                -1 => assert!((-0.5..-0.1).contains(&score), "{review} -> {score}"),
                _ => assert!(score < -0.5, "{review} -> {score}"),
            }
        }
    }
}
