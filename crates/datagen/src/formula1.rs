//! The `formula_1` domain: `races`, `drivers`, and `results` tables.
//!
//! Sepang hosts the Malaysian Grand Prix exactly 1999–2017, matching the
//! Figure 2 qualitative example.

use crate::DomainData;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tag_lm::knowledge::{KnowledgeBase, KnowledgeConfig};
use tag_sql::Database;

const DRIVER_FIRST: &[&str] = &[
    "Ayao", "Nico", "Miguel", "Jenson", "Rubens", "Felipe", "Kimi", "Fernando", "Mark", "Romain",
    "Sergio", "Valtteri",
];
const DRIVER_LAST: &[&str] = &[
    "Komatsu", "Keller", "Santos", "Field", "Moreira", "Costa", "Virtanen", "Alvarez", "Bennett",
    "Durand", "Reyes", "Niemi",
];

/// Hosting year ranges per circuit (inclusive). Sepang's range is the
/// paper's 1999–2017.
fn year_range(circuit: &str) -> (i64, i64) {
    match circuit {
        "Sepang International Circuit" => (1999, 2017),
        "Autodromo Nazionale di Monza" => (1990, 2017),
        "Silverstone Circuit" => (1990, 2017),
        "Circuit de Monaco" => (1990, 2017),
        "Marina Bay Street Circuit" => (2008, 2017),
        "Suzuka Circuit" => (1990, 2017),
        "Shanghai International Circuit" => (2004, 2017),
        "Circuit de Spa-Francorchamps" => (1992, 2017),
        "Circuit Gilles Villeneuve" => (1990, 2017),
        "Bahrain International Circuit" => (2004, 2017),
        "Autodromo Jose Carlos Pace" => (1990, 2017),
        "Yas Marina Circuit" => (2009, 2017),
        _ => (2000, 2017),
    }
}

/// Generate the domain: all circuit-years plus drivers and podium results.
pub fn generate(seed: u64, drivers: usize) -> DomainData {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1F1);
    let kb = KnowledgeBase::new(KnowledgeConfig {
        coverage: 1.0,
        enumeration_coverage: 1.0,
        seed: 0,
    });
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE races (
            raceId INTEGER PRIMARY KEY,
            year INTEGER,
            round INTEGER,
            name TEXT,
            Circuit TEXT,
            date TEXT
        )",
    )
    .expect("create races");
    db.execute(
        "CREATE TABLE drivers (
            driverId INTEGER PRIMARY KEY,
            driver_name TEXT,
            nationality TEXT
        )",
    )
    .expect("create drivers");
    db.execute(
        "CREATE TABLE results (
            resultId INTEGER PRIMARY KEY,
            raceId INTEGER,
            driverId INTEGER,
            position INTEGER,
            points REAL
        )",
    )
    .expect("create results");

    let driver_count = drivers.max(6);
    for id in 0..driver_count {
        let name = format!(
            "{} {}",
            DRIVER_FIRST[id % DRIVER_FIRST.len()],
            DRIVER_LAST[(id / DRIVER_FIRST.len() + id) % DRIVER_LAST.len()]
        );
        let nat = ["Italy", "UK", "Brazil", "Germany", "France", "Japan"][rng.gen_range(0..6)];
        db.execute(&format!(
            "INSERT INTO drivers VALUES ({}, '{name}', '{nat}')",
            id + 1
        ))
        .expect("insert driver");
    }

    let mut race_id = 0i64;
    let mut result_id = 0i64;
    for circuit in kb.circuit_names() {
        let fact = kb.true_circuit_fact(circuit).expect("known circuit");
        let (from, to) = year_range(circuit);
        for year in from..=to {
            race_id += 1;
            let round = rng.gen_range(1..=19);
            let month = rng.gen_range(3..=10);
            let day = rng.gen_range(1..=28);
            db.execute(&format!(
                "INSERT INTO races VALUES ({race_id}, {year}, {round}, \
                 '{year} {}', '{}', '{year}-{month:02}-{day:02}')",
                fact.grand_prix,
                circuit.replace('\'', "''"),
            ))
            .expect("insert race");
            // Podium results for each race.
            let mut podium: Vec<i64> = Vec::new();
            while podium.len() < 3 {
                let d = rng.gen_range(1..=driver_count as i64);
                if !podium.contains(&d) {
                    podium.push(d);
                }
            }
            for (pos, d) in podium.iter().enumerate() {
                result_id += 1;
                let points = [25.0, 18.0, 15.0][pos];
                db.execute(&format!(
                    "INSERT INTO results VALUES ({result_id}, {race_id}, {d}, {}, {points})",
                    pos + 1
                ))
                .expect("insert result");
            }
        }
    }
    DomainData::new("formula_1", db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sepang_hosts_1999_to_2017() {
        let mut db = generate(1, 12).db;
        let n = db
            .query_scalar(
                "SELECT COUNT(*) FROM races WHERE Circuit = 'Sepang International Circuit'",
            )
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(n, 19);
        let years = db
            .execute(
                "SELECT MIN(year), MAX(year) FROM races \
                 WHERE Circuit = 'Sepang International Circuit'",
            )
            .unwrap();
        assert_eq!(years.rows[0][0].as_i64(), Some(1999));
        assert_eq!(years.rows[0][1].as_i64(), Some(2017));
    }

    #[test]
    fn every_circuit_has_races_and_results_join() {
        let mut db = generate(1, 12).db;
        let circuits = db
            .query_scalar("SELECT COUNT(DISTINCT Circuit) FROM races")
            .unwrap()
            .as_i64()
            .unwrap();
        assert!(circuits >= 10);
        let podium = db
            .query_scalar(
                "SELECT COUNT(*) FROM results r JOIN races ra ON r.raceId = ra.raceId \
                 WHERE ra.year = 2010 AND r.position = 1",
            )
            .unwrap()
            .as_i64()
            .unwrap();
        assert!(podium > 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(4, 10).db.catalog().table("races").unwrap().rows(),
            generate(4, 10).db.catalog().table("races").unwrap().rows()
        );
    }
}
