//! The `codebase_community` domain (stats.stackexchange-style): `posts`,
//! `comments` (denormalized with `PostTitle`, as BIRD tables are wide),
//! and `users` — with *planted* technicality / sentiment / sarcasm labels.

use crate::corpus;
use crate::{DomainData, Labels};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tag_sql::Database;

/// Generate the domain with `n_posts` posts (comments scale ~4× that).
pub fn generate(seed: u64, n_posts: usize) -> DomainData {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
    let mut db = Database::new();
    let mut labels = Labels::default();

    db.execute(
        "CREATE TABLE users (
            Id INTEGER PRIMARY KEY,
            DisplayName TEXT,
            Reputation INTEGER
        )",
    )
    .expect("create users");
    db.execute(
        "CREATE TABLE posts (
            Id INTEGER PRIMARY KEY,
            Title TEXT,
            ViewCount INTEGER,
            Score INTEGER,
            OwnerUserId INTEGER,
            AnswerCount INTEGER,
            CommentCount INTEGER,
            FavoriteCount INTEGER,
            CreationDate TEXT
        )",
    )
    .expect("create posts");
    db.execute(
        "CREATE TABLE comments (
            Id INTEGER PRIMARY KEY,
            PostId INTEGER,
            PostTitle TEXT,
            Text TEXT,
            Score INTEGER,
            UserId INTEGER,
            CreationDate TEXT
        )",
    )
    .expect("create comments");

    let n_users = (n_posts / 4).max(8);
    for id in 0..n_users {
        db.execute(&format!(
            "INSERT INTO users VALUES ({}, 'user{}', {})",
            id + 1,
            id + 1,
            rng.gen_range(1..20_000)
        ))
        .expect("insert user");
    }

    // Distinct ViewCounts so "top k posts by ViewCount" has a unique
    // answer set; technicality level planted per post. The benchmark
    // relies on the *top* posts having distinct levels, so levels cycle
    // 0..=4 with the sequence phase-shifted against the view ordering.
    let mut view_counts: Vec<i64> = (0..n_posts as i64)
        .map(|i| 10_000 - i * 7 - (i % 5))
        .collect();
    // Shuffle-lite: deterministic swap pattern decorrelates views and ids.
    for i in (1..view_counts.len()).rev() {
        let j = rng.gen_range(0..=i);
        view_counts.swap(i, j);
    }

    // Rank of each post's ViewCount (0 = highest). Technicality level is
    // keyed to the view rank so every top-k cut (k <= 5) has distinct
    // planted levels — ranking queries then have a unique ground truth.
    let mut rank_of: Vec<usize> = vec![0; n_posts];
    {
        let mut order: Vec<usize> = (0..n_posts).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(view_counts[i]));
        for (rank, &i) in order.iter().enumerate() {
            rank_of[i] = rank;
        }
    }
    // Permuted so the technicality order of any top-k (k <= 5) view cut
    // differs from the view order itself — otherwise ORDER BY ViewCount
    // would accidentally produce the semantic ranking.
    const LEVEL_OF_RANK: [usize; 5] = [1, 3, 0, 4, 2];
    for id in 0..n_posts {
        let level = LEVEL_OF_RANK[rank_of[id] % 5];
        let title = corpus::technical_title(&mut rng, level).replace('\'', "''");
        labels
            .post_technicality
            .insert((id + 1) as i64, level as u8);
        db.execute(&format!(
            "INSERT INTO posts VALUES ({}, '{title}', {}, {}, {}, {}, {}, {}, \
             '201{}-0{}-2{}')",
            id + 1,
            view_counts[id],
            rng.gen_range(-4..120),
            rng.gen_range(1..=n_users),
            rng.gen_range(0..9),
            rng.gen_range(0..20),
            rng.gen_range(0..30),
            rng.gen_range(0..6),
            rng.gen_range(1..9),
            rng.gen_range(0..8),
        ))
        .expect("insert post");
    }

    // Comments: a deterministic mix of neutral / positive / negative /
    // sarcastic per post.
    let mut comment_id = 0i64;
    for post_id in 1..=(n_posts as i64) {
        let title: String = {
            let rs = db
                .execute(&format!("SELECT Title FROM posts WHERE Id = {post_id}"))
                .expect("post title");
            rs.rows[0][0].to_string()
        };
        // At least 4 comments per post: the cyclic type pattern then
        // guarantees every post has a neutral, positive, negative, and
        // sarcastic comment — keeping per-post semantic queries nonempty.
        let n_comments = rng.gen_range(8..17);
        for c in 0..n_comments {
            comment_id += 1;
            let topic = corpus::pick(&mut rng, corpus::TOPICS);
            let (text, sentiment, sarcastic) = match (post_id + c) % 4 {
                0 => (corpus::neutral_comment(&mut rng, topic), 0i8, false),
                1 => (corpus::positive_comment(&mut rng, topic), 1, false),
                2 => (corpus::negative_comment(&mut rng, topic), -1, false),
                _ => (corpus::sarcastic_comment(&mut rng, topic), -1, true),
            };
            labels.comment_sentiment.insert(comment_id, sentiment);
            labels.comment_sarcastic.insert(comment_id, sarcastic);
            db.execute(&format!(
                "INSERT INTO comments VALUES ({comment_id}, {post_id}, '{}', '{}', {}, \
                 {}, '201{}-0{}-1{}')",
                title.replace('\'', "''"),
                text.replace('\'', "''"),
                rng.gen_range(0..25),
                rng.gen_range(1..=n_users),
                rng.gen_range(0..6),
                rng.gen_range(1..9),
                rng.gen_range(0..8),
            ))
            .expect("insert comment");
        }
    }

    // Auxiliary badges table (BIRD's codebase_community has many side
    // tables; one suffices to widen the schema realistically).
    db.execute(
        "CREATE TABLE badges (
            Id INTEGER PRIMARY KEY,
            UserId INTEGER,
            Name TEXT,
            Date TEXT
        )",
    )
    .expect("create badges");
    const BADGES: &[&str] = &["Teacher", "Student", "Editor", "Supporter", "Scholar"];
    for b in 1..=(n_users as i64 * 2) {
        db.execute(&format!(
            "INSERT INTO badges VALUES ({b}, {}, '{}', '2014-0{}-15')",
            rng.gen_range(1..=n_users),
            BADGES[rng.gen_range(0..BADGES.len())],
            rng.gen_range(1..10),
        ))
        .expect("insert badge");
    }
    DomainData::with_labels("codebase_community", db, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tag_lm::lexicon;

    #[test]
    fn tables_and_labels_align() {
        let d = generate(1, 60);
        let posts = d.db.catalog().table("posts").unwrap();
        assert_eq!(posts.len(), 60);
        assert_eq!(d.labels.post_technicality.len(), 60);
        let comments = d.db.catalog().table("comments").unwrap();
        assert_eq!(d.labels.comment_sentiment.len(), comments.len());
        assert!(comments.len() >= 120);
    }

    #[test]
    fn view_counts_are_distinct() {
        let d = generate(2, 80);
        let mut db = d.db;
        let distinct = db
            .query_scalar("SELECT COUNT(DISTINCT ViewCount) FROM posts")
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(distinct, 80);
    }

    #[test]
    fn planted_sarcasm_recoverable_by_lexicon() {
        let d = generate(3, 40);
        let comments = d.db.catalog().table("comments").unwrap();
        let mut agree = 0usize;
        for row in comments.rows() {
            let id = row[0].as_i64().unwrap();
            let text = row[3].to_string();
            let planted = d.labels.comment_sarcastic[&id];
            let detected = lexicon::sarcasm_score(&text) > 0.35;
            if planted == detected {
                agree += 1;
            }
        }
        let rate = agree as f64 / comments.len() as f64;
        assert!(rate > 0.9, "lexicon agreement too low: {rate}");
    }

    #[test]
    fn comments_carry_post_title() {
        let mut db = generate(4, 20).db;
        let n = db
            .query_scalar(
                "SELECT COUNT(*) FROM comments c JOIN posts p ON c.PostId = p.Id \
                 WHERE c.PostTitle != p.Title",
            )
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(n, 0, "denormalized PostTitle must match");
    }
}
