//! # tag-datagen — synthetic BIRD-style domain databases
//!
//! TAG-Bench (§4.1) draws its queries from five BIRD domains. The real
//! BIRD data cannot ship here, so each domain is regenerated
//! deterministically at realistic scale, embedding exactly the entity
//! classes the benchmark's knowledge/reasoning clauses probe (region
//! cities, player heights, F1 circuits incl. Sepang 1999–2017,
//! stats.SE-style posts/comments with planted semantic labels, EU /
//! non-EU customers) plus the Figure 1 movies table. Ground-truth labels
//! for semantic properties are *planted at generation time* and returned
//! alongside the data, so the benchmark oracle never depends on the
//! simulated LM's own judgments.

#![warn(missing_docs)]

pub mod community;
pub mod corpus;
pub mod debit;
pub mod football;
pub mod formula1;
pub mod movies;
pub mod partition;
pub mod schools;

use std::collections::HashMap;
use tag_sql::Database;

/// Planted ground-truth labels for generated text.
#[derive(Debug, Clone, Default)]
pub struct Labels {
    /// comment id → sentiment (-1, 0, +1).
    pub comment_sentiment: HashMap<i64, i8>,
    /// comment id → sarcastic?
    pub comment_sarcastic: HashMap<i64, bool>,
    /// post id → technicality level (0 casual … 4 dense jargon).
    pub post_technicality: HashMap<i64, u8>,
    /// movie title → review sentiment (-1 / +1).
    pub review_sentiment: HashMap<String, i8>,
}

/// One generated domain: its database plus planted labels.
#[derive(Debug, Clone)]
pub struct DomainData {
    /// Domain name (matches the paper's BIRD domain names).
    pub name: &'static str,
    /// The populated database.
    pub db: Database,
    /// Planted labels (empty for purely numeric domains).
    pub labels: Labels,
}

impl DomainData {
    /// A domain without text labels.
    pub fn new(name: &'static str, db: Database) -> Self {
        DomainData {
            name,
            db,
            labels: Labels::default(),
        }
    }

    /// A domain with planted labels.
    pub fn with_labels(name: &'static str, db: Database, labels: Labels) -> Self {
        DomainData { name, db, labels }
    }
}

/// Scale knobs for the standard benchmark dataset.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Rows in `schools`.
    pub schools: usize,
    /// Rows in `players`.
    pub players: usize,
    /// Posts in the community domain (comments ≈ 4×).
    pub posts: usize,
    /// Customers in the debit domain.
    pub customers: usize,
    /// Drivers in the F1 domain (races are fixed by circuit history).
    pub drivers: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            schools: 600,
            players: 800,
            posts: 250,
            customers: 500,
            drivers: 18,
        }
    }
}

impl Scale {
    /// The `small` tier: a fast-everything dataset for smoke tests.
    pub fn small() -> Scale {
        Scale {
            schools: 60,
            players: 80,
            posts: 25,
            customers: 50,
            drivers: 8,
        }
    }

    /// The seeded `huge` tier: ≥10⁶ rows in each scalable domain's
    /// largest table (schools/players/customers directly; community
    /// via its ≈4× comments fan-out; F1 stays fixed — its cardinality
    /// is circuit history, not a knob). Generating this tier through
    /// the per-row SQL path takes minutes; the scale sweep uses the
    /// bulk fast path ([`schools::generate_bulk`]) instead, which
    /// draws the identical rows through the typed row API.
    pub fn huge() -> Scale {
        Scale {
            schools: 1_000_000,
            players: 1_000_000,
            posts: 250_000,
            customers: 1_000_000,
            drivers: 18,
        }
    }
}

/// Generate every benchmark domain (plus movies) at the given scale.
pub fn generate_all(seed: u64, scale: Scale) -> Vec<DomainData> {
    vec![
        schools::generate(seed, scale.schools),
        football::generate(seed, scale.players),
        formula1::generate(seed, scale.drivers),
        community::generate(seed, scale.posts),
        debit::generate(seed, scale.customers),
        movies::generate(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_all_covers_the_five_domains_plus_movies() {
        let domains = generate_all(
            7,
            Scale {
                schools: 50,
                players: 50,
                posts: 20,
                customers: 40,
                drivers: 8,
            },
        );
        let names: Vec<&str> = domains.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec![
                "california_schools",
                "european_football_2",
                "formula_1",
                "codebase_community",
                "debit_card_specializing",
                "movies"
            ]
        );
        for d in &domains {
            assert!(!d.db.catalog().is_empty(), "{} has no tables", d.name);
        }
    }
}
