//! The `debit_card_specializing` domain: `customers` and monthly
//! consumption (`yearmonth`), with EU / non-EU countries.

use crate::DomainData;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tag_sql::Database;

const COUNTRIES: &[&str] = &[
    "Italy",
    "Belgium",
    "Germany",
    "France",
    "Spain",
    "Netherlands",
    "Poland",
    "Austria",
    "Czech Republic",
    "Slovakia",
    "UK",
    "Switzerland",
    "Norway",
    "USA",
];
const SEGMENTS: &[&str] = &["SME", "LAM", "KAM"];
const CURRENCIES: &[&str] = &["EUR", "CZK", "GBP", "CHF", "NOK", "USD"];

/// Generate the domain with `n` customers.
pub fn generate(seed: u64, n: usize) -> DomainData {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEB1);
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE customers (
            CustomerID INTEGER PRIMARY KEY,
            Segment TEXT,
            Country TEXT,
            Currency TEXT,
            Consumption REAL,
            ContractType TEXT,
            JoinDate TEXT,
            CardCount INTEGER
        )",
    )
    .expect("create customers");
    db.execute(
        "CREATE TABLE yearmonth (
            CustomerID INTEGER,
            Date TEXT,
            Consumption REAL
        )",
    )
    .expect("create yearmonth");

    for id in 1..=(n as i64) {
        let country = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
        let segment = SEGMENTS[rng.gen_range(0..SEGMENTS.len())];
        let currency = CURRENCIES[rng.gen_range(0..CURRENCIES.len())];
        let annual: f64 = rng.gen_range(50.0..9000.0);
        db.execute(&format!(
            "INSERT INTO customers VALUES ({id}, '{segment}', '{country}', \
             '{currency}', {annual:.2}, '{}', '201{}-0{}-0{}', {})",
            ["Prepaid", "Postpaid"][rng.gen_range(0..2)],
            rng.gen_range(0..6),
            rng.gen_range(1..9),
            rng.gen_range(1..9),
            rng.gen_range(1..40),
        ))
        .expect("insert customer");
        // A few monthly records per customer.
        for month in 1..=rng.gen_range(2..6) {
            let c = annual / 12.0 * rng.gen_range(0.5..1.5);
            db.execute(&format!(
                "INSERT INTO yearmonth VALUES ({id}, '2013-{month:02}', {c:.2})"
            ))
            .expect("insert yearmonth");
        }
    }
    // Auxiliary tables from the BIRD domain.
    db.execute(
        "CREATE TABLE gasstations (
            GasStationID INTEGER PRIMARY KEY,
            ChainID INTEGER,
            Country TEXT,
            Segment TEXT
        )",
    )
    .expect("create gasstations");
    for g in 1..=(n as i64 / 3).max(20) {
        db.execute(&format!(
            "INSERT INTO gasstations VALUES ({g}, {}, '{}', '{}')",
            rng.gen_range(1..40),
            COUNTRIES[rng.gen_range(0..COUNTRIES.len())],
            SEGMENTS[rng.gen_range(0..SEGMENTS.len())],
        ))
        .expect("insert gasstation");
    }
    db.execute(
        "CREATE TABLE products (
            ProductID INTEGER PRIMARY KEY,
            Description TEXT
        )",
    )
    .expect("create products");
    for (i, p) in [
        "Diesel",
        "Petrol 95",
        "Petrol 98",
        "LPG",
        "AdBlue",
        "Car wash",
        "Motor oil",
        "Snacks",
        "Coffee",
        "Windshield fluid",
    ]
    .iter()
    .enumerate()
    {
        db.execute(&format!("INSERT INTO products VALUES ({}, '{p}')", i + 1))
            .expect("insert product");
    }
    DomainData::new("debit_card_specializing", db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_eu_and_non_eu_present() {
        let mut db = generate(1, 300).db;
        let eu = db
            .query_scalar(
                "SELECT COUNT(*) FROM customers WHERE Country IN ('Italy','Germany','France')",
            )
            .unwrap()
            .as_i64()
            .unwrap();
        let non = db
            .query_scalar("SELECT COUNT(*) FROM customers WHERE Country IN ('UK','USA','Norway')")
            .unwrap()
            .as_i64()
            .unwrap();
        assert!(eu > 20);
        assert!(non > 20);
    }

    #[test]
    fn yearmonth_joins_back() {
        let mut db = generate(2, 100).db;
        let orphans = db
            .query_scalar(
                "SELECT COUNT(*) FROM yearmonth y \
                 WHERE y.CustomerID NOT IN (SELECT CustomerID FROM customers)",
            )
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(orphans, 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(5, 50)
                .db
                .catalog()
                .table("customers")
                .unwrap()
                .rows(),
            generate(5, 50)
                .db
                .catalog()
                .table("customers")
                .unwrap()
                .rows()
        );
    }
}
