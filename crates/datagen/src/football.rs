//! The `european_football_2` domain: a `players` table with physical
//! and skill attributes (the source of the "taller than Stephen Curry"
//! comparison queries).

use crate::DomainData;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tag_sql::Database;

const FIRST: &[&str] = &[
    "Luka", "Marco", "Jan", "Pavel", "Sergio", "Thomas", "Niklas", "Andrei", "Milan", "Victor",
    "Jonas", "Emil", "Mateo", "Ivan", "Felix", "Oscar", "Hugo", "Dario",
];
const LAST: &[&str] = &[
    "Novak", "Rossi", "Keller", "Svoboda", "Garcia", "Meyer", "Larsen", "Petrov", "Horvat",
    "Lindgren", "Bakker", "Weber", "Moretti", "Kovac", "Jansen", "Berg",
];
const COUNTRIES: &[&str] = &[
    "Italy",
    "Belgium",
    "Germany",
    "France",
    "Spain",
    "Netherlands",
    "Poland",
    "Austria",
    "Czech Republic",
    "Slovakia",
    "UK",
    "Switzerland",
    "Norway",
    "Brazil",
];

/// Generate the domain with `n` players.
pub fn generate(seed: u64, n: usize) -> DomainData {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00B);
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE players (
            id INTEGER PRIMARY KEY,
            player_name TEXT NOT NULL,
            height REAL,
            weight INTEGER,
            overall_rating INTEGER,
            volley INTEGER,
            dribbling INTEGER,
            Country TEXT,
            preferred_foot TEXT,
            crossing INTEGER,
            finishing INTEGER,
            agility INTEGER,
            stamina INTEGER,
            strength INTEGER,
            birthday TEXT
        )",
    )
    .expect("create players");

    for id in 0..n {
        let name = format!(
            "{} {}",
            FIRST[rng.gen_range(0..FIRST.len())],
            LAST[rng.gen_range(0..LAST.len())]
        );
        // Heights straddle the famous reference heights (Curry 188,
        // Messi 170, Crouch 201, Durant 208) so "taller than X" clauses
        // genuinely discriminate.
        // A per-id epsilon makes heights unique, so height rankings are
        // always well-posed.
        let height: f64 = 162.0 + rng.gen_range(0.0..50.0) + id as f64 * 1e-4;
        let weight: i64 = (height - 100.0) as i64 + rng.gen_range(-8..12);
        let rating: i64 = rng.gen_range(48..94);
        let volley: i64 = rng.gen_range(20..95);
        let dribbling: i64 = rng.gen_range(25..96);
        let country = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
        db.execute(&format!(
            "INSERT INTO players VALUES ({}, '{name}', {height:.4}, {weight}, {rating}, \
             {volley}, {dribbling}, '{country}', '{}', {}, {}, {}, {}, {}, \
             '19{}-0{}-1{}')",
            id + 1,
            if rng.gen_bool(0.75) { "right" } else { "left" },
            rng.gen_range(20..95),
            rng.gen_range(20..95),
            rng.gen_range(30..95),
            rng.gen_range(30..95),
            rng.gen_range(30..95),
            rng.gen_range(80..99),
            rng.gen_range(1..9),
            rng.gen_range(0..9),
        ))
        .expect("insert player");
    }
    // Auxiliary tables mirroring the BIRD domain's breadth.
    db.execute(
        "CREATE TABLE teams (
            team_id INTEGER PRIMARY KEY,
            team_name TEXT,
            Country TEXT
        )",
    )
    .expect("create teams");
    let n_teams = 40;
    for t in 1..=n_teams {
        let country = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
        db.execute(&format!(
            "INSERT INTO teams VALUES ({t}, 'FC {} {t}', '{country}')",
            LAST[t as usize % LAST.len()]
        ))
        .expect("insert team");
    }
    db.execute(
        "CREATE TABLE matches (
            match_id INTEGER PRIMARY KEY,
            season TEXT,
            home_team INTEGER,
            away_team INTEGER,
            home_goals INTEGER,
            away_goals INTEGER
        )",
    )
    .expect("create matches");
    for m in 1..=(n as i64) {
        let home = rng.gen_range(1..=n_teams);
        let mut away = rng.gen_range(1..=n_teams);
        if away == home {
            away = home % n_teams + 1;
        }
        db.execute(&format!(
            "INSERT INTO matches VALUES ({m}, '2015/2016', {home}, {away}, {}, {})",
            rng.gen_range(0..6),
            rng.gen_range(0..6),
        ))
        .expect("insert match");
    }
    DomainData::new("european_football_2", db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heights_straddle_references() {
        let d = generate(1, 400);
        let mut db = d.db;
        let above = db
            .query_scalar("SELECT COUNT(*) FROM players WHERE height > 188")
            .unwrap()
            .as_i64()
            .unwrap();
        let below = db
            .query_scalar("SELECT COUNT(*) FROM players WHERE height <= 188")
            .unwrap()
            .as_i64()
            .unwrap();
        assert!(above > 50, "above={above}");
        assert!(below > 50, "below={below}");
    }

    #[test]
    fn eu_and_non_eu_countries_present() {
        let d = generate(2, 300);
        let mut db = d.db;
        let eu = db
            .query_scalar("SELECT COUNT(*) FROM players WHERE Country = 'Italy'")
            .unwrap()
            .as_i64()
            .unwrap();
        let non_eu = db
            .query_scalar("SELECT COUNT(*) FROM players WHERE Country IN ('UK', 'Brazil')")
            .unwrap()
            .as_i64()
            .unwrap();
        assert!(eu > 0);
        assert!(non_eu > 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(9, 40)
                .db
                .catalog()
                .table("players")
                .unwrap()
                .rows(),
            generate(9, 40)
                .db
                .catalog()
                .table("players")
                .unwrap()
                .rows()
        );
    }
}
