//! Property-based tests for the semantic operator runtime.

use proptest::prelude::*;
use std::sync::Arc;
use tag_lm::nlq::SemProperty;
use tag_lm::prompts::SemClaim;
use tag_lm::sim::{SimConfig, SimLm};
use tag_lm::KnowledgeConfig;
use tag_semops::{sem_filter, sem_topk, DataFrame, SemEngine};
use tag_sql::Value;

fn engine() -> SemEngine {
    SemEngine::new(Arc::new(SimLm::new(SimConfig {
        knowledge: KnowledgeConfig {
            coverage: 1.0,
            enumeration_coverage: 1.0,
            seed: 3,
        },
        judgment_noise: 0.0,
        ..SimConfig::default()
    })))
}

fn text_frame(texts: &[String]) -> DataFrame {
    DataFrame::new(
        vec!["t".into()],
        texts.iter().map(|t| vec![Value::text(t.clone())]).collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// sem_filter output is always a subset of the input, preserving
    /// order, and is idempotent (filtering the output changes nothing).
    #[test]
    fn sem_filter_subset_and_idempotent(
        texts in prop::collection::vec("[a-z ]{1,30}", 0..20)
    ) {
        let e = engine();
        let df = text_frame(&texts);
        let claim = SemClaim::Property(SemProperty::Positive);
        let once = sem_filter(&e, &df, "t", &claim).unwrap();
        prop_assert!(once.len() <= df.len());
        // Order preservation: the output appears in input order.
        let input: Vec<String> = texts.clone();
        let output: Vec<String> = once.column("t").unwrap().iter().map(|v| v.to_string()).collect();
        let mut cursor = 0usize;
        for o in &output {
            let pos = input[cursor..].iter().position(|i| i == o);
            prop_assert!(pos.is_some(), "output not a subsequence");
            cursor += pos.unwrap() + 1;
        }
        let twice = sem_filter(&e, &once, "t", &claim).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// sem_topk returns exactly min(k, n) rows, all drawn from the input.
    #[test]
    fn sem_topk_size_and_membership(
        texts in prop::collection::vec("[a-z ]{1,30}", 0..15),
        k in 0usize..8,
    ) {
        let e = engine();
        let df = text_frame(&texts);
        let top = sem_topk(&e, &df, "t", SemProperty::Technical, k).unwrap();
        prop_assert_eq!(top.len(), k.min(texts.len()));
        for v in top.column("t").unwrap() {
            prop_assert!(texts.contains(&v.to_string()));
        }
    }

    /// With a noise-free judge, the top-1 by sem_topk scores at least as
    /// high (lexicon technicality) as every other row.
    #[test]
    fn sem_topk_top1_is_maximal_under_exact_judge(
        texts in prop::collection::vec("[a-z ]{1,40}", 1..12)
    ) {
        let e = engine();
        let df = text_frame(&texts);
        let top = sem_topk(&e, &df, "t", SemProperty::Technical, 1).unwrap();
        let best = top.column("t").unwrap()[0].to_string();
        let score = tag_lm::lexicon::technicality_score(&best);
        for t in &texts {
            // Ties can legitimately pick either row; only a strictly
            // higher-scoring row may not be beaten.
            prop_assert!(
                tag_lm::lexicon::technicality_score(t) <= score + 0.25,
                "row {t:?} clearly outranks reported best {best:?}"
            );
        }
    }
}
