//! A small dependency-free LRU cache.
//!
//! Shared by the [`crate::SemEngine`] prompt cache and the serving
//! runtime's answer cache. Recency is tracked with a monotonic tick and
//! a `BTreeMap<tick, key>` index, so `get`/`insert` are `O(log n)` and
//! eviction pops the smallest tick — no unsafe, no external crates.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A bounded map evicting the least-recently-used entry on overflow.
#[derive(Debug)]
pub struct LruCache<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (V, u64)>,
    order: BTreeMap<u64, K>,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            cap: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            evictions: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted (not replaced or cleared) since construction or
    /// the last [`clear`](Self::clear).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up a key, marking it most-recently-used on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((_, t)) => {
                self.order.remove(t);
                *t = tick;
                self.order.insert(tick, key.clone());
                self.map.get(key).map(|(v, _)| v)
            }
            None => None,
        }
    }

    /// Look up a key without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    /// Whether a key is present (does not touch recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Insert a key, evicting the least-recently-used entry if full.
    /// Returns the previous value for the key, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((old, t)) = self.map.remove(&key) {
            self.order.remove(&t);
            self.map.insert(key.clone(), (value, tick));
            self.order.insert(tick, key);
            return Some(old);
        }
        if self.map.len() >= self.cap {
            if let Some((&oldest, _)) = self.order.iter().next() {
                if let Some(victim) = self.order.remove(&oldest) {
                    self.map.remove(&victim);
                    self.evictions += 1;
                }
            }
        }
        self.map.insert(key.clone(), (value, tick));
        self.order.insert(tick, key);
        None
    }

    /// Drop all entries and reset the eviction counter.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // a is now MRU
        c.insert("c", 3); // evicts b
        assert!(c.contains(&"a"));
        assert!(!c.contains(&"b"));
        assert!(c.contains(&"c"));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replace_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.insert("a", 10), Some(1));
        assert_eq!(c.peek(&"a"), Some(&10));
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.peek(&"a"), Some(&1)); // a stays LRU
        c.insert("c", 3); // evicts a
        assert!(!c.contains(&"a"));
        assert!(c.contains(&"b"));
    }

    #[test]
    fn clear_resets_state() {
        let mut c = LruCache::new(1);
        c.insert("a", 1);
        c.insert("b", 2); // evicts a
        assert_eq!(c.evictions(), 1);
        c.clear();
        assert_eq!(c.evictions(), 0);
        assert!(c.is_empty());
        c.insert("c", 3);
        assert_eq!(c.peek(&"c"), Some(&3));
    }

    #[test]
    fn stress_capacity_invariant() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.insert(i % 37, i);
            assert!(c.len() <= 8);
            // A key inserted this round is always retrievable.
            assert!(c.contains(&(i % 37)));
        }
        assert!(c.evictions() > 0);
    }
}
