//! A small DataFrame: the host structure for semantic operators.
//!
//! Mirrors the pandas surface the LOTUS pipelines in the paper's
//! Appendix C are written against: column selection, filtering, sorting,
//! head, and merge (equi-join) — plus conversion from/to the SQL engine's
//! result sets.

use tag_sql::{ResultSet, SqlError, SqlResult, Value};

/// An ordered, named-column, row-major data frame.
#[derive(Debug, Clone, PartialEq)]
pub struct DataFrame {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl DataFrame {
    /// Build from columns and rows; every row must match the width.
    pub fn new(columns: Vec<String>, rows: Vec<Vec<Value>>) -> SqlResult<DataFrame> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != columns.len() {
                return Err(SqlError::Catalog(format!(
                    "row {i} has {} values for {} columns",
                    r.len(),
                    columns.len()
                )));
            }
        }
        Ok(DataFrame { columns, rows })
    }

    /// An empty frame with the given columns.
    pub fn empty(columns: Vec<String>) -> DataFrame {
        DataFrame {
            columns,
            rows: Vec::new(),
        }
    }

    /// Build from a SQL result set.
    pub fn from_result(rs: ResultSet) -> DataFrame {
        DataFrame {
            columns: rs.columns,
            rows: rs.rows,
        }
    }

    /// Convert into a SQL result set.
    pub fn into_result(self) -> ResultSet {
        ResultSet::new(self.columns, self.rows)
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column (case-insensitive).
    pub fn column_index(&self, name: &str) -> SqlResult<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
            .ok_or_else(|| SqlError::Binding(format!("no such column: {name}")))
    }

    /// The values of one column.
    pub fn column(&self, name: &str) -> SqlResult<Vec<Value>> {
        let i = self.column_index(name)?;
        Ok(self.rows.iter().map(|r| r[i].clone()).collect())
    }

    /// Keep rows where `pred(row)` is true.
    pub fn filter(&self, mut pred: impl FnMut(&[Value]) -> bool) -> DataFrame {
        DataFrame {
            columns: self.columns.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Keep rows whose `column` value satisfies `pred`.
    pub fn filter_col(
        &self,
        column: &str,
        mut pred: impl FnMut(&Value) -> bool,
    ) -> SqlResult<DataFrame> {
        let i = self.column_index(column)?;
        Ok(self.filter(|r| pred(&r[i])))
    }

    /// Keep rows whose `column` value is in `values`.
    pub fn is_in(&self, column: &str, values: &[Value]) -> SqlResult<DataFrame> {
        let set: std::collections::HashSet<&Value> = values.iter().collect();
        self.filter_col(column, |v| set.contains(v))
    }

    /// Stable sort by one column.
    pub fn sort_by(&self, column: &str, descending: bool) -> SqlResult<DataFrame> {
        let i = self.column_index(column)?;
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            let ord = a[i].total_cmp(&b[i]);
            if descending {
                ord.reverse()
            } else {
                ord
            }
        });
        Ok(DataFrame {
            columns: self.columns.clone(),
            rows,
        })
    }

    /// Stable sort by the absolute numeric value of one column
    /// (`key=abs` in the Appendix C pipelines).
    pub fn sort_by_abs(&self, column: &str, descending: bool) -> SqlResult<DataFrame> {
        let i = self.column_index(column)?;
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            let xa = a[i].as_f64().map(f64::abs).unwrap_or(f64::NEG_INFINITY);
            let xb = b[i].as_f64().map(f64::abs).unwrap_or(f64::NEG_INFINITY);
            let ord = xa.total_cmp(&xb);
            if descending {
                ord.reverse()
            } else {
                ord
            }
        });
        Ok(DataFrame {
            columns: self.columns.clone(),
            rows,
        })
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        DataFrame {
            columns: self.columns.clone(),
            rows: self.rows.iter().take(n).cloned().collect(),
        }
    }

    /// Project to a subset of columns.
    pub fn select(&self, columns: &[&str]) -> SqlResult<DataFrame> {
        let idxs: Vec<usize> = columns
            .iter()
            .map(|c| self.column_index(c))
            .collect::<SqlResult<_>>()?;
        Ok(DataFrame {
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: self
                .rows
                .iter()
                .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
                .collect(),
        })
    }

    /// Distinct values of one column, in first-seen order.
    pub fn unique(&self, column: &str) -> SqlResult<Vec<Value>> {
        let i = self.column_index(column)?;
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in &self.rows {
            if seen.insert(r[i].clone()) {
                out.push(r[i].clone());
            }
        }
        Ok(out)
    }

    /// Inner equi-join (pandas `merge`). Right columns are suffixed with
    /// `_r` when they collide with left columns.
    pub fn merge(&self, right: &DataFrame, left_on: &str, right_on: &str) -> SqlResult<DataFrame> {
        let li = self.column_index(left_on)?;
        let ri = right.column_index(right_on)?;
        let mut columns = self.columns.clone();
        for c in &right.columns {
            if self.columns.iter().any(|l| l.eq_ignore_ascii_case(c)) {
                columns.push(format!("{c}_r"));
            } else {
                columns.push(c.clone());
            }
        }
        let mut table: std::collections::HashMap<&Value, Vec<usize>> =
            std::collections::HashMap::new();
        for (j, r) in right.rows.iter().enumerate() {
            if !r[ri].is_null() {
                table.entry(&r[ri]).or_default().push(j);
            }
        }
        let mut rows = Vec::new();
        for l in &self.rows {
            if let Some(ids) = table.get(&l[li]) {
                for &j in ids {
                    let mut row = l.clone();
                    row.extend(right.rows[j].iter().cloned());
                    rows.push(row);
                }
            }
        }
        Ok(DataFrame { columns, rows })
    }

    /// Add a column computed from each row.
    pub fn with_column(
        &self,
        name: impl Into<String>,
        mut f: impl FnMut(&[Value]) -> Value,
    ) -> DataFrame {
        let mut columns = self.columns.clone();
        columns.push(name.into());
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut row = r.clone();
                row.push(f(r));
                row
            })
            .collect();
        DataFrame { columns, rows }
    }

    /// Render each row as the `(column, value)` string pairs used for LM
    /// context ("data points").
    pub fn to_data_points(&self) -> Vec<Vec<(String, String)>> {
        self.rows
            .iter()
            .map(|r| {
                self.columns
                    .iter()
                    .zip(r)
                    .map(|(c, v)| (c.clone(), v.to_string()))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::new(
            vec!["id".into(), "city".into(), "score".into()],
            vec![
                vec![Value::Int(1), Value::text("PA"), Value::Float(3.0)],
                vec![Value::Int(2), Value::text("SF"), Value::Float(1.0)],
                vec![Value::Int(3), Value::text("PA"), Value::Float(2.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_width() {
        assert!(DataFrame::new(vec!["a".into()], vec![vec![]]).is_err());
    }

    #[test]
    fn filter_sort_head() {
        let d = df();
        let pa = d.filter_col("city", |v| v == &Value::text("PA")).unwrap();
        assert_eq!(pa.len(), 2);
        let sorted = d.sort_by("score", true).unwrap();
        assert_eq!(sorted.rows()[0][0], Value::Int(1));
        assert_eq!(sorted.head(1).len(), 1);
    }

    #[test]
    fn sort_by_abs() {
        let d = DataFrame::new(
            vec!["x".into()],
            vec![
                vec![Value::Float(-5.0)],
                vec![Value::Float(3.0)],
                vec![Value::Float(-1.0)],
            ],
        )
        .unwrap();
        let s = d.sort_by_abs("x", true).unwrap();
        assert_eq!(s.rows()[0][0], Value::Float(-5.0));
        assert_eq!(s.rows()[2][0], Value::Float(-1.0));
    }

    #[test]
    fn select_unique_is_in() {
        let d = df();
        let sel = d.select(&["city"]).unwrap();
        assert_eq!(sel.columns(), &["city".to_string()]);
        assert_eq!(
            d.unique("city").unwrap(),
            vec![Value::text("PA"), Value::text("SF")]
        );
        let only = d.is_in("city", &[Value::text("SF")]).unwrap();
        assert_eq!(only.len(), 1);
    }

    #[test]
    fn merge_inner_join_with_collision_suffix() {
        let left = df();
        let right = DataFrame::new(
            vec!["id".into(), "tag".into()],
            vec![
                vec![Value::Int(1), Value::text("one")],
                vec![Value::Int(3), Value::text("three")],
                vec![Value::Int(9), Value::text("nine")],
            ],
        )
        .unwrap();
        let joined = left.merge(&right, "id", "id").unwrap();
        assert_eq!(joined.len(), 2);
        assert!(joined.columns().contains(&"id_r".to_string()));
        assert!(joined.columns().contains(&"tag".to_string()));
    }

    #[test]
    fn with_column_and_data_points() {
        let d = df().with_column("double", |r| {
            Value::Float(r[2].as_f64().unwrap_or(0.0) * 2.0)
        });
        assert_eq!(d.rows()[0][3], Value::Float(6.0));
        let pts = d.head(1).to_data_points();
        assert_eq!(pts[0][1], ("city".to_string(), "PA".to_string()));
    }

    #[test]
    fn missing_column_errors() {
        assert!(df().column("nope").is_err());
        assert!(df().sort_by("nope", false).is_err());
    }

    #[test]
    fn result_set_round_trip() {
        let d = df();
        let rs = d.clone().into_result();
        let back = DataFrame::from_result(rs);
        assert_eq!(d, back);
    }
}
