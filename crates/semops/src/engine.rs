//! The semantic execution engine: batched, cached LM access.
//!
//! The paper attributes the hand-written TAG pipelines' 3.1× execution-
//! time advantage to "efficient batched inference of LMs" (§4.3). This
//! engine is where that happens: semantic operators submit whole prompt
//! batches; identical prompts are answered from a cache.

use crate::lru::LruCache;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use tag_lm::model::{LanguageModel, LmRequest, LmResult};
use tag_trace::LmUsage;

/// Default bound on the prompt cache. Long-running serving processes
/// replay many distinct prompts; an unbounded map grows without limit.
pub const DEFAULT_PROMPT_CACHE_CAPACITY: usize = 4096;

/// Execution statistics for one engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Prompts answered from cache.
    pub cache_hits: u64,
    /// Prompts sent to the model.
    pub lm_prompts: u64,
    /// Batches sent to the model.
    pub lm_batches: u64,
    /// Prompt tokens consumed by prompts that reached the model.
    pub prompt_tokens: u64,
    /// Completion tokens produced by prompts that reached the model.
    pub completion_tokens: u64,
    /// Prompt-cache entries evicted by the LRU bound.
    pub evictions: u64,
}

impl EngineStats {
    /// Mean batch-round occupancy: prompts that reached the model per
    /// batch round, as a fraction of `batch_size`. 1.0 means every
    /// round went out full; low values mean the engine is paying
    /// per-round latency for underfilled batches. 0.0 when no batch
    /// has been sent.
    pub fn round_occupancy(&self, batch_size: usize) -> f64 {
        if self.lm_batches == 0 || batch_size == 0 {
            0.0
        } else {
            self.lm_prompts as f64 / (self.lm_batches * batch_size as u64) as f64
        }
    }
}

/// Counters for one named semantic operator (`sem_filter`, `sem_topk`,
/// ...). The aggregate [`EngineStats`] answers "how much LM work"; these
/// answer "which operator caused it".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Operator invocations routed through the engine.
    pub invocations: u64,
    /// Prompts the operator submitted (before cache dedup).
    pub prompts: u64,
    /// Prompts answered from the cache.
    pub cache_hits: u64,
    /// Prompts that reached the model.
    pub lm_prompts: u64,
    /// Batches sent to the model.
    pub lm_batches: u64,
    /// Prompt tokens consumed by the operator's model calls.
    pub prompt_tokens: u64,
    /// Completion tokens produced by the operator's model calls.
    pub completion_tokens: u64,
    /// Cache evictions triggered while the operator ran.
    pub evictions: u64,
}

/// What one `complete_batch` call did, counted locally so attribution is
/// race-free under concurrent engine use (unlike deltas of the shared
/// aggregate counters).
#[derive(Debug, Default, Clone, Copy)]
struct BatchOutcome {
    cache_hits: u64,
    lm_prompts: u64,
    lm_batches: u64,
    prompt_tokens: u64,
    completion_tokens: u64,
    evictions: u64,
}

/// Batched + cached LM executor shared by all semantic operators.
pub struct SemEngine {
    lm: Arc<dyn LanguageModel>,
    /// Maximum prompts per LM round (further split by the model's own
    /// batching limits).
    batch_size: usize,
    cache: Mutex<LruCache<String, String>>,
    stats: Mutex<EngineStats>,
    ops: Mutex<BTreeMap<&'static str, OpStats>>,
}

impl SemEngine {
    /// Wrap a model with the default batch size.
    pub fn new(lm: Arc<dyn LanguageModel>) -> Self {
        Self::with_batch_size(lm, 64)
    }

    /// Wrap a model with an explicit batch size (ablation hook).
    pub fn with_batch_size(lm: Arc<dyn LanguageModel>, batch_size: usize) -> Self {
        Self::with_batch_size_and_cache(lm, batch_size, DEFAULT_PROMPT_CACHE_CAPACITY)
    }

    /// Wrap a model with explicit batch size and prompt-cache bound.
    pub fn with_batch_size_and_cache(
        lm: Arc<dyn LanguageModel>,
        batch_size: usize,
        cache_capacity: usize,
    ) -> Self {
        SemEngine {
            lm,
            batch_size: batch_size.max(1),
            cache: Mutex::new(LruCache::new(cache_capacity)),
            stats: Mutex::new(EngineStats::default()),
            ops: Mutex::new(BTreeMap::new()),
        }
    }

    /// The wrapped model.
    pub fn lm(&self) -> &Arc<dyn LanguageModel> {
        &self.lm
    }

    /// Configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Current statistics (evictions read live from the cache).
    pub fn stats(&self) -> EngineStats {
        let mut s = *self.stats.lock();
        s.evictions = self.cache.lock().evictions();
        s
    }

    /// Mean batch-round occupancy so far (see
    /// [`EngineStats::round_occupancy`]).
    pub fn round_occupancy(&self) -> f64 {
        self.stats().round_occupancy(self.batch_size)
    }

    /// Clear cache and statistics (aggregate and per-operator).
    pub fn reset(&self) {
        self.cache.lock().clear();
        *self.stats.lock() = EngineStats::default();
        self.ops.lock().clear();
    }

    /// Per-operator counters, in operator-name order.
    pub fn op_stats(&self) -> Vec<(&'static str, OpStats)> {
        self.ops.lock().iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Complete a batch of prompts, deduplicating against the cache and
    /// batching the misses. Attributed to the `"adhoc"` operator; named
    /// operators use [`SemEngine::complete_batch_op`].
    pub fn complete_batch(&self, prompts: &[String]) -> LmResult<Vec<String>> {
        self.complete_batch_op("adhoc", prompts)
    }

    /// [`SemEngine::complete_batch`] with the work attributed to a named
    /// operator (per-op counters) and, when a trace is installed, to the
    /// innermost open span (LM usage).
    pub fn complete_batch_op(&self, op: &'static str, prompts: &[String]) -> LmResult<Vec<String>> {
        let trace_active = tag_trace::is_active();
        let clock_before = if trace_active { self.lm.usage().0 } else { 0.0 };
        let mut outcome = BatchOutcome::default();
        // The outcome accumulates across chunks even when a later chunk
        // errors, so partial work is still attributed.
        let result = self.complete_batch_inner(prompts, &mut outcome);
        {
            let mut ops = self.ops.lock();
            let entry = ops.entry(op).or_default();
            entry.invocations += 1;
            entry.prompts += prompts.len() as u64;
            entry.cache_hits += outcome.cache_hits;
            entry.lm_prompts += outcome.lm_prompts;
            entry.lm_batches += outcome.lm_batches;
            entry.prompt_tokens += outcome.prompt_tokens;
            entry.completion_tokens += outcome.completion_tokens;
            entry.evictions += outcome.evictions;
        }
        if trace_active {
            tag_trace::record_lm(LmUsage {
                calls: outcome.lm_prompts,
                rounds: outcome.lm_batches,
                cache_hits: outcome.cache_hits,
                prompt_tokens: outcome.prompt_tokens,
                completion_tokens: outcome.completion_tokens,
                virtual_seconds: (self.lm.usage().0 - clock_before).max(0.0),
            });
        }
        result
    }

    fn complete_batch_inner(
        &self,
        prompts: &[String],
        outcome: &mut BatchOutcome,
    ) -> LmResult<Vec<String>> {
        let mut results: Vec<Option<String>> = vec![None; prompts.len()];
        let mut misses: Vec<usize> = Vec::new();
        {
            let mut cache = self.cache.lock();
            for (i, p) in prompts.iter().enumerate() {
                if let Some(hit) = cache.get(p) {
                    results[i] = Some(hit.clone());
                } else {
                    misses.push(i);
                }
            }
        }
        outcome.cache_hits = (prompts.len() - misses.len()) as u64;
        {
            let mut stats = self.stats.lock();
            stats.cache_hits += outcome.cache_hits;
        }
        // Dedup identical prompts within the miss set too.
        let mut unique: Vec<usize> = Vec::new();
        let mut assign: HashMap<&str, usize> = HashMap::new();
        for &i in &misses {
            let p = prompts[i].as_str();
            if !assign.contains_key(p) {
                assign.insert(p, unique.len());
                unique.push(i);
            }
        }
        for chunk in unique.chunks(self.batch_size) {
            let requests: Vec<LmRequest> = chunk
                .iter()
                .map(|&i| LmRequest::new(prompts[i].clone()))
                .collect();
            let responses = self.lm.generate_batch(&requests)?;
            outcome.lm_prompts += requests.len() as u64;
            outcome.lm_batches += 1;
            let mut chunk_prompt_tokens = 0u64;
            let mut chunk_completion_tokens = 0u64;
            for r in &responses {
                chunk_prompt_tokens += r.prompt_tokens as u64;
                chunk_completion_tokens += r.completion_tokens as u64;
            }
            outcome.prompt_tokens += chunk_prompt_tokens;
            outcome.completion_tokens += chunk_completion_tokens;
            let mut stats = self.stats.lock();
            stats.lm_prompts += requests.len() as u64;
            stats.lm_batches += 1;
            stats.prompt_tokens += chunk_prompt_tokens;
            stats.completion_tokens += chunk_completion_tokens;
            drop(stats);
            // Fill results directly from the responses — the bounded
            // cache may evict an entry before any readback could see it.
            let mut cache = self.cache.lock();
            let evictions_before = cache.evictions();
            for (&i, r) in chunk.iter().zip(responses) {
                results[i] = Some(r.text.clone());
                cache.insert(prompts[i].clone(), r.text);
            }
            outcome.evictions += cache.evictions() - evictions_before;
        }
        // Duplicate misses copy their representative's response.
        for &i in &misses {
            if results[i].is_none() {
                let rep = unique[assign[prompts[i].as_str()]];
                results[i] = results[rep].clone();
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every prompt resolved"))
            .collect())
    }

    /// Complete one prompt (cached), attributed to `"adhoc"`.
    pub fn complete(&self, prompt: &str) -> LmResult<String> {
        self.complete_op("adhoc", prompt)
    }

    /// Complete one prompt (cached), attributed to a named operator.
    pub fn complete_op(&self, op: &'static str, prompt: &str) -> LmResult<String> {
        Ok(self
            .complete_batch_op(op, std::slice::from_ref(&prompt.to_owned()))?
            .pop()
            .expect("one prompt yields one result"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tag_lm::model::{LmError, LmResponse};

    /// A counting fake model for engine tests.
    struct EchoLm {
        calls: Mutex<u64>,
        batches: Mutex<u64>,
    }

    impl EchoLm {
        fn new() -> Self {
            EchoLm {
                calls: Mutex::new(0),
                batches: Mutex::new(0),
            }
        }
    }

    impl LanguageModel for EchoLm {
        fn generate_batch(&self, requests: &[LmRequest]) -> LmResult<Vec<LmResponse>> {
            *self.calls.lock() += requests.len() as u64;
            *self.batches.lock() += 1;
            Ok(requests
                .iter()
                .map(|r| LmResponse {
                    text: format!("echo:{}", r.prompt),
                    prompt_tokens: 1,
                    completion_tokens: 1,
                })
                .collect())
        }
        fn elapsed_seconds(&self) -> f64 {
            0.0
        }
        fn reset_metrics(&self) {}
        fn batches(&self) -> u64 {
            *self.batches.lock()
        }
        fn calls(&self) -> u64 {
            *self.calls.lock()
        }
        fn context_window(&self) -> usize {
            8192
        }
    }

    #[test]
    fn caching_deduplicates() {
        let lm = Arc::new(EchoLm::new());
        let engine = SemEngine::new(lm.clone());
        let prompts: Vec<String> = vec!["a".into(), "b".into(), "a".into(), "a".into()];
        let out = engine.complete_batch(&prompts).unwrap();
        assert_eq!(out, vec!["echo:a", "echo:b", "echo:a", "echo:a"]);
        assert_eq!(lm.calls(), 2, "only unique prompts hit the model");
        // Second round: fully cached.
        engine.complete_batch(&prompts).unwrap();
        assert_eq!(lm.calls(), 2);
        let stats = engine.stats();
        assert_eq!(stats.lm_prompts, 2);
        assert!(stats.cache_hits >= 4);
    }

    #[test]
    fn batch_size_splits_rounds() {
        let lm = Arc::new(EchoLm::new());
        let engine = SemEngine::with_batch_size(lm.clone(), 4);
        let prompts: Vec<String> = (0..10).map(|i| format!("p{i}")).collect();
        engine.complete_batch(&prompts).unwrap();
        assert_eq!(lm.batches(), 3); // 4 + 4 + 2
        assert_eq!(lm.calls(), 10);
    }

    #[test]
    fn reset_clears_cache() {
        let lm = Arc::new(EchoLm::new());
        let engine = SemEngine::new(lm.clone());
        engine.complete("x").unwrap();
        engine.reset();
        engine.complete("x").unwrap();
        assert_eq!(lm.calls(), 2);
    }

    #[test]
    fn bounded_cache_evicts_and_stays_correct() {
        let lm = Arc::new(EchoLm::new());
        // Capacity 2 is smaller than the 5-prompt batch: the first
        // responses are evicted before the batch finishes.
        let engine = SemEngine::with_batch_size_and_cache(lm.clone(), 64, 2);
        let prompts: Vec<String> = (0..5).map(|i| format!("p{i}")).collect();
        let out = engine.complete_batch(&prompts).unwrap();
        let expect: Vec<String> = (0..5).map(|i| format!("echo:p{i}")).collect();
        assert_eq!(out, expect, "results survive mid-batch eviction");
        assert!(engine.stats().evictions >= 3);
        // An evicted prompt goes back to the model; a cached one does not.
        let before = lm.calls();
        engine.complete("p0").unwrap(); // evicted long ago
        assert_eq!(lm.calls(), before + 1);
        engine.complete("p4").unwrap(); // most recent, still cached
        assert_eq!(lm.calls(), before + 1);
    }

    #[test]
    fn duplicate_misses_resolve_without_cache() {
        let lm = Arc::new(EchoLm::new());
        let engine = SemEngine::with_batch_size_and_cache(lm.clone(), 64, 1);
        let prompts: Vec<String> = vec!["x".into(), "y".into(), "x".into(), "y".into(), "x".into()];
        let out = engine.complete_batch(&prompts).unwrap();
        assert_eq!(out, vec!["echo:x", "echo:y", "echo:x", "echo:y", "echo:x"]);
        assert_eq!(lm.calls(), 2, "duplicates never hit the model");
    }

    #[test]
    fn per_op_counters_attribute_work() {
        let lm = Arc::new(EchoLm::new());
        let engine = SemEngine::new(lm);
        engine
            .complete_batch_op("sem_filter", &["a".into(), "b".into(), "a".into()])
            .unwrap();
        engine
            .complete_batch_op("sem_filter", &["a".into()])
            .unwrap();
        engine.complete_op("sem_topk", "rank it").unwrap();
        engine.complete("plain").unwrap();

        let ops: std::collections::BTreeMap<_, _> = engine.op_stats().into_iter().collect();
        let filter = ops["sem_filter"];
        assert_eq!(filter.invocations, 2);
        assert_eq!(filter.prompts, 4);
        assert_eq!(filter.lm_prompts, 2, "a deduped, b fresh");
        // In-batch duplicates are deduped without touching the cache
        // counter; only the second call's "a" is a cache hit.
        assert_eq!(filter.cache_hits, 1);
        let topk = ops["sem_topk"];
        assert_eq!(topk.invocations, 1);
        assert_eq!(topk.lm_prompts, 1);
        assert_eq!(ops["adhoc"].invocations, 1);
        // Aggregate stats are the sum over operators.
        let agg = engine.stats();
        let (p, h): (u64, u64) = ops
            .values()
            .fold((0, 0), |(p, h), s| (p + s.lm_prompts, h + s.cache_hits));
        assert_eq!(agg.lm_prompts, p);
        assert_eq!(agg.cache_hits, h);

        engine.reset();
        assert!(engine.op_stats().is_empty());
    }

    #[test]
    fn token_counters_track_model_work_only() {
        let lm = Arc::new(EchoLm::new());
        let engine = SemEngine::new(lm);
        engine
            .complete_batch_op("sem_filter", &["a".into(), "b".into(), "a".into()])
            .unwrap();
        // Fully cached second round: token counters must not move.
        engine
            .complete_batch_op("sem_filter", &["a".into(), "b".into()])
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.prompt_tokens, 2, "EchoLm meters 1 token/prompt");
        assert_eq!(stats.completion_tokens, 2);
        let ops: std::collections::BTreeMap<_, _> = engine.op_stats().into_iter().collect();
        assert_eq!(ops["sem_filter"].prompt_tokens, 2);
        assert_eq!(ops["sem_filter"].completion_tokens, 2);
    }

    #[test]
    fn per_op_evictions_are_counted() {
        let lm = Arc::new(EchoLm::new());
        let engine = SemEngine::with_batch_size_and_cache(lm, 64, 2);
        let prompts: Vec<String> = (0..5).map(|i| format!("p{i}")).collect();
        engine.complete_batch_op("sem_map", &prompts).unwrap();
        let ops: std::collections::BTreeMap<_, _> = engine.op_stats().into_iter().collect();
        assert!(ops["sem_map"].evictions >= 3, "{:?}", ops["sem_map"]);
    }

    #[test]
    fn traced_batch_records_usage_on_current_span() {
        let lm = Arc::new(EchoLm::new());
        let engine = SemEngine::new(lm);
        let (trace, sink) = tag_trace::Trace::memory();
        tag_trace::with_trace(&trace, || {
            let _span = tag_trace::span(tag_trace::Stage::Exec, "filter");
            engine
                .complete_batch_op("sem_filter", &["a".into(), "b".into(), "a".into()])
                .unwrap();
        });
        let spans = sink.take();
        assert_eq!(spans.len(), 1);
        let lm_usage = spans[0].lm;
        assert_eq!(lm_usage.calls, 2);
        assert_eq!(lm_usage.rounds, 1);
        assert_eq!(lm_usage.cache_hits, 0, "in-batch dup is not a cache hit");
        assert_eq!(lm_usage.prompt_tokens, 2, "EchoLm meters 1 token/prompt");
        assert_eq!(lm_usage.completion_tokens, 2);
    }

    #[test]
    fn untraced_batch_records_nothing() {
        // Identical call with no trace installed: only counters move.
        let lm = Arc::new(EchoLm::new());
        let engine = SemEngine::new(lm);
        let out = engine
            .complete_batch_op("sem_filter", &["a".into(), "b".into()])
            .unwrap();
        assert_eq!(out, vec!["echo:a", "echo:b"]);
        assert!(!tag_trace::is_active());
    }

    #[test]
    fn errors_propagate() {
        struct FailLm;
        impl LanguageModel for FailLm {
            fn generate_batch(&self, _: &[LmRequest]) -> LmResult<Vec<LmResponse>> {
                Err(LmError::Other("down".into()))
            }
            fn elapsed_seconds(&self) -> f64 {
                0.0
            }
            fn reset_metrics(&self) {}
            fn batches(&self) -> u64 {
                0
            }
            fn calls(&self) -> u64 {
                0
            }
            fn context_window(&self) -> usize {
                0
            }
        }
        let engine = SemEngine::new(Arc::new(FailLm));
        assert!(engine.complete("x").is_err());
    }

    #[test]
    fn round_occupancy_tracks_batch_fill() {
        let stats = EngineStats {
            lm_prompts: 96,
            lm_batches: 2,
            ..EngineStats::default()
        };
        assert_eq!(stats.round_occupancy(64), 0.75);
        assert_eq!(EngineStats::default().round_occupancy(64), 0.0);
        assert_eq!(stats.round_occupancy(0), 0.0);

        // Live engine: 3 distinct prompts with batch size 2 → two
        // rounds (2 + 1) → 3 / 4 occupancy.
        let engine = SemEngine::with_batch_size(Arc::new(EchoLm::new()), 2);
        engine
            .complete_batch(&["a".into(), "b".into(), "c".into()])
            .unwrap();
        assert_eq!(engine.round_occupancy(), 0.75);
    }
}
