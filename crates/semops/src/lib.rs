//! # tag-semops — LOTUS-style semantic operator runtime
//!
//! Reimplements the semantic-operator layer the paper's hand-written TAG
//! pipelines are built on (LOTUS, ref. 21 of the paper): a small [`frame::DataFrame`]
//! with pandas-like verbs, plus LM-powered operators — [`ops::sem_filter`],
//! [`ops::sem_topk`], [`ops::sem_agg`], [`ops::sem_score`],
//! [`ops::sem_join`] — executed through a batched, cached
//! [`engine::SemEngine`]. Batched inference is what gives TAG its
//! execution-time advantage in Table 1.

#![warn(missing_docs)]

pub mod engine;
pub mod frame;
pub mod lru;
pub mod ops;

pub use engine::{EngineStats, OpStats, SemEngine};
pub use frame::DataFrame;
pub use lru::LruCache;
pub use ops::{
    sem_agg, sem_agg_refine, sem_filter, sem_join, sem_map, sem_score, sem_topk, SemError,
    SemResult,
};
