//! Semantic operators over data frames (the LOTUS operator algebra).
//!
//! - [`sem_filter`] — LM-judged row filter (`sem_filter` in Appendix C);
//! - [`sem_topk`] — LM-ranked top-k via batched pairwise comparisons;
//! - [`sem_agg`] — LM aggregation with hierarchical fold for large inputs;
//! - [`sem_score`] — attach a 0–1 LM relevance/property score column;
//! - [`sem_join`] — LM-judged predicate join over the cross product.

use crate::engine::SemEngine;
use crate::frame::DataFrame;
use tag_lm::nlq::SemProperty;
use tag_lm::prompts::{
    relevance_prompt, sem_agg_prompt, sem_compare_prompt, sem_filter_prompt, sem_map_prompt,
    SemClaim,
};
use tag_lm::tokenizer::count_tokens;
use tag_sql::{SqlError, Value};

/// Errors from semantic operators.
#[derive(Debug)]
pub enum SemError {
    /// Underlying LM failure.
    Lm(tag_lm::model::LmError),
    /// Frame-level failure (missing column, width mismatch).
    Frame(SqlError),
}

impl std::fmt::Display for SemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SemError::Lm(e) => write!(f, "semantic operator LM error: {e}"),
            SemError::Frame(e) => write!(f, "semantic operator frame error: {e}"),
        }
    }
}

impl std::error::Error for SemError {}

impl From<tag_lm::model::LmError> for SemError {
    fn from(e: tag_lm::model::LmError) -> Self {
        SemError::Lm(e)
    }
}

impl From<SqlError> for SemError {
    fn from(e: SqlError) -> Self {
        SemError::Frame(e)
    }
}

/// Result alias for semantic operators.
pub type SemResult<T> = Result<T, SemError>;

/// Keep the rows whose `column` value makes `claim` true, judged by the
/// LM. All judgments for the frame go out as one batch; duplicate values
/// are answered once (engine cache).
pub fn sem_filter(
    engine: &SemEngine,
    df: &DataFrame,
    column: &str,
    claim: &SemClaim,
) -> SemResult<DataFrame> {
    let _span = tag_trace::span(tag_trace::Stage::Exec, "sem_filter");
    let idx = df.column_index(column)?;
    let prompts: Vec<String> = df
        .rows()
        .iter()
        .map(|r| sem_filter_prompt(claim, &r[idx].to_string()))
        .collect();
    let verdicts = engine.complete_batch_op("sem_filter", &prompts)?;
    let keep: Vec<bool> = verdicts
        .iter()
        .map(|v| v.trim().eq_ignore_ascii_case("true"))
        .collect();
    let mut i = 0;
    Ok(df.filter(|_| {
        let k = keep[i];
        i += 1;
        k
    }))
}

/// Order the frame by an LM-judged property of `column` (most-first) and
/// keep the top `k`.
///
/// Small inputs (≤ `BORDA_LIMIT` rows) run a Borda-count tournament —
/// every pair compared in one batched round, rank by wins; it is robust
/// to a noisy judge. Larger inputs first narrow to the top-k candidates
/// with batched **quickselect** (the LOTUS strategy: each round compares
/// every surviving row against a pivot in one batch), then Borda-rank
/// the survivors exactly. Expected O(n) comparisons for the narrowing
/// plus O(k²) for the final ordering.
pub fn sem_topk(
    engine: &SemEngine,
    df: &DataFrame,
    column: &str,
    property: SemProperty,
    k: usize,
) -> SemResult<DataFrame> {
    /// Above this row count, narrow with quickselect before ranking.
    const BORDA_LIMIT: usize = 40;

    let _span = tag_trace::span(tag_trace::Stage::Exec, "sem_topk");
    let idx = df.column_index(column)?;
    let n = df.len();
    if n <= 1 || k == 0 {
        return Ok(df.head(k));
    }
    let texts: Vec<String> = df.rows().iter().map(|r| r[idx].to_string()).collect();

    let candidates: Vec<usize> = if n > BORDA_LIMIT && k < n {
        quickselect_top(engine, &texts, property, k.max(BORDA_LIMIT / 2))?
    } else {
        (0..n).collect()
    };

    let order = borda_rank(engine, &texts, &candidates, property)?;
    let rows: Vec<Vec<Value>> = order
        .into_iter()
        .take(k)
        .map(|i| df.rows()[i].clone())
        .collect();
    Ok(DataFrame::new(df.columns().to_vec(), rows).expect("width preserved"))
}

/// Batched quickselect: repeatedly pick a pivot, compare every surviving
/// candidate against it in one LM round, and keep the side that still
/// contains the boundary until at most `want` candidates remain (or a
/// round stops making progress, when judge noise creates degenerate
/// partitions).
fn quickselect_top(
    engine: &SemEngine,
    texts: &[String],
    property: SemProperty,
    want: usize,
) -> SemResult<Vec<usize>> {
    let mut pool: Vec<usize> = (0..texts.len()).collect();
    let mut kept: Vec<usize> = Vec::new();
    while kept.len() + pool.len() > want && pool.len() > 1 {
        // Deterministic pivot: middle of the pool.
        let pivot = pool[pool.len() / 2];
        let others: Vec<usize> = pool.iter().copied().filter(|&i| i != pivot).collect();
        let prompts: Vec<String> = others
            .iter()
            .map(|&i| sem_compare_prompt(property, &texts[i], &texts[pivot]))
            .collect();
        let answers = engine.complete_batch_op("sem_topk", &prompts)?;
        let mut above = Vec::new();
        let mut below = Vec::new();
        for (&i, a) in others.iter().zip(&answers) {
            if a.trim().eq_ignore_ascii_case("a") {
                above.push(i);
            } else {
                below.push(i);
            }
        }
        if kept.len() + above.len() < want {
            // Everything above the pivot (plus the pivot) survives; the
            // boundary lies in `below`.
            kept.extend(above);
            kept.push(pivot);
            if below.is_empty() {
                break;
            }
            pool = below;
        } else if above.is_empty() {
            // Degenerate partition (noise): accept the pivot and stop.
            kept.push(pivot);
            break;
        } else {
            // The boundary lies in `above`.
            pool = above;
        }
    }
    kept.extend(pool);
    kept.truncate(want.max(1));
    Ok(kept)
}

/// Borda tournament over the candidate indices; returns them best-first.
fn borda_rank(
    engine: &SemEngine,
    texts: &[String],
    candidates: &[usize],
    property: SemProperty,
) -> SemResult<Vec<usize>> {
    let m = candidates.len();
    if m <= 1 {
        return Ok(candidates.to_vec());
    }
    let mut prompts = Vec::with_capacity(m * (m - 1) / 2);
    let mut pairs = Vec::with_capacity(m * (m - 1) / 2);
    for a in 0..m {
        for b in (a + 1)..m {
            prompts.push(sem_compare_prompt(
                property,
                &texts[candidates[a]],
                &texts[candidates[b]],
            ));
            pairs.push((a, b));
        }
    }
    let answers = engine.complete_batch_op("sem_topk", &prompts)?;
    let mut wins = vec![0usize; m];
    for ((a, b), ans) in pairs.into_iter().zip(answers) {
        if ans.trim().eq_ignore_ascii_case("a") {
            wins[a] += 1;
        } else {
            wins[b] += 1;
        }
    }
    let mut order: Vec<usize> = (0..m).collect();
    // Most wins first; ties broken by original position (stable).
    order.sort_by(|&x, &y| {
        wins[y]
            .cmp(&wins[x])
            .then(candidates[x].cmp(&candidates[y]))
    });
    Ok(order.into_iter().map(|i| candidates[i]).collect())
}

/// Summarize the frame with the LM. Rows are serialized as compact
/// records; when the serialized input exceeds the model's usable window,
/// the operator folds hierarchically: chunks are summarized in one
/// batch, then the summaries are summarized (the "iterative or recursive
/// patterns over the data" of §2.3).
pub fn sem_agg(
    engine: &SemEngine,
    df: &DataFrame,
    instruction: &str,
    columns: Option<&[&str]>,
) -> SemResult<String> {
    let _span = tag_trace::span(tag_trace::Stage::Gen, "sem_agg");
    let projected = match columns {
        Some(cols) => df.select(cols)?,
        None => df.clone(),
    };
    let items: Vec<String> = projected
        .to_data_points()
        .iter()
        .map(|p| {
            p.iter()
                .map(|(c, v)| format!("{c} {v}"))
                .collect::<Vec<_>>()
                .join(", ")
        })
        .collect();
    agg_fold(engine, instruction, items)
}

fn agg_fold(engine: &SemEngine, instruction: &str, items: Vec<String>) -> SemResult<String> {
    // Usable budget well under the window to leave room for output.
    let budget = engine.lm().context_window().saturating_sub(1024).max(256);
    let total: usize = items.iter().map(|i| count_tokens(i)).sum();
    if total <= budget || items.len() <= 1 {
        return Ok(engine.complete_op("sem_agg", &sem_agg_prompt(instruction, &items))?);
    }
    // Chunk so each chunk fits, summarize every chunk in one batch, then
    // recurse over the partial summaries.
    let mut chunks: Vec<Vec<String>> = Vec::new();
    let mut current = Vec::new();
    let mut used = 0usize;
    for item in items {
        let t = count_tokens(&item);
        if used + t > budget && !current.is_empty() {
            chunks.push(std::mem::take(&mut current));
            used = 0;
        }
        used += t;
        current.push(item);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    if chunks.len() <= 1 {
        // Cannot shrink further by chunking (individual items exceed the
        // budget); fall back to a single call and let the model truncate.
        let items = chunks.pop().unwrap_or_default();
        return Ok(engine.complete_op("sem_agg", &sem_agg_prompt(instruction, &items))?);
    }
    let prompts: Vec<String> = chunks
        .iter()
        .map(|c| sem_agg_prompt(instruction, c))
        .collect();
    let partials = engine.complete_batch_op("sem_agg", &prompts)?;
    agg_fold(engine, instruction, partials)
}

/// Map each value of `column` through the LM with a natural-language
/// instruction, appending the results as `out_column` (LOTUS `sem_map`).
/// One batch; duplicate values answered once via the engine cache.
pub fn sem_map(
    engine: &SemEngine,
    df: &DataFrame,
    column: &str,
    instruction: &str,
    out_column: &str,
) -> SemResult<DataFrame> {
    let _span = tag_trace::span(tag_trace::Stage::Exec, "sem_map");
    let idx = df.column_index(column)?;
    let prompts: Vec<String> = df
        .rows()
        .iter()
        .map(|r| sem_map_prompt(instruction, &r[idx].to_string()))
        .collect();
    let outputs = engine.complete_batch_op("sem_map", &prompts)?;
    let mut it = outputs.into_iter();
    Ok(df.with_column(out_column, |_| {
        Value::Text(it.next().expect("one output per row"))
    }))
}

/// Summarize the frame with the *sequential refinement* generation
/// pattern (§2.3's "iterative" alternative to the hierarchical fold of
/// [`sem_agg`]): chunks are folded one at a time into a running summary.
/// One LM call per chunk, strictly serial — higher quality control in
/// principle, but no batching, so execution time grows linearly with the
/// data (the trade-off the batch ablation quantifies).
pub fn sem_agg_refine(
    engine: &SemEngine,
    df: &DataFrame,
    instruction: &str,
    columns: Option<&[&str]>,
) -> SemResult<String> {
    let _span = tag_trace::span(tag_trace::Stage::Gen, "sem_agg_refine");
    let projected = match columns {
        Some(cols) => df.select(cols)?,
        None => df.clone(),
    };
    let items: Vec<String> = projected
        .to_data_points()
        .iter()
        .map(|p| {
            p.iter()
                .map(|(c, v)| format!("{c} {v}"))
                .collect::<Vec<_>>()
                .join(", ")
        })
        .collect();
    let budget = engine.lm().context_window().saturating_sub(1024).max(256);
    let mut summary: Option<String> = None;
    let mut chunk: Vec<String> = Vec::new();
    let mut used = 0usize;
    let flush = |chunk: &mut Vec<String>, summary: &mut Option<String>| -> SemResult<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let mut round = Vec::with_capacity(chunk.len() + 1);
        if let Some(s) = summary.take() {
            round.push(format!("Summary so far: {s}"));
        }
        round.append(chunk);
        *summary =
            Some(engine.complete_op("sem_agg_refine", &sem_agg_prompt(instruction, &round))?);
        Ok(())
    };
    for item in items {
        let t = count_tokens(&item);
        if used + t > budget && !chunk.is_empty() {
            flush(&mut chunk, &mut summary)?;
            used = summary.as_deref().map(count_tokens).unwrap_or(0);
        }
        used += t;
        chunk.push(item);
    }
    flush(&mut chunk, &mut summary)?;
    Ok(summary.unwrap_or_default())
}

/// Attach a `score` column: the LM's 0–1 judgment of how relevant each
/// row (serialized) is to `question`. Used by the Retrieval + LM Rank
/// baseline and available as a LOTUS-style operator.
pub fn sem_score(
    engine: &SemEngine,
    df: &DataFrame,
    question: &str,
    score_column: &str,
) -> SemResult<DataFrame> {
    // Relevance scoring sits between retrieval and generation in the
    // SemPlan stage taxonomy, so it traces as `rerank` (not `exec`):
    // per-stage LM cost tables then attribute scoring work to the same
    // stage as the Retrieval + LM Rank baseline's rerank step.
    let _span = tag_trace::span(tag_trace::Stage::Rerank, "sem_score");
    let points = df.to_data_points();
    let prompts: Vec<String> = points
        .iter()
        .map(|p| {
            let text = p
                .iter()
                .map(|(c, v)| format!("- {c}: {v}"))
                .collect::<Vec<_>>()
                .join("\n");
            relevance_prompt(question, &text)
        })
        .collect();
    let answers = engine.complete_batch_op("sem_score", &prompts)?;
    let scores: Vec<f64> = answers
        .iter()
        .map(|a| a.trim().parse::<f64>().unwrap_or(0.0).clamp(0.0, 1.0))
        .collect();
    let mut it = scores.into_iter();
    Ok(df.with_column(score_column, |_| {
        Value::Float(it.next().expect("one score per row"))
    }))
}

/// LM-predicate join: keep (left, right) pairs where `claim`, applied to
/// the concatenation `"{left_val} / {right_val}"`, is judged true.
/// Cross-product cost; intended for small frames (as in LOTUS).
pub fn sem_join(
    engine: &SemEngine,
    left: &DataFrame,
    left_col: &str,
    right: &DataFrame,
    right_col: &str,
    claim: &SemClaim,
) -> SemResult<DataFrame> {
    let _span = tag_trace::span(tag_trace::Stage::Exec, "sem_join");
    let li = left.column_index(left_col)?;
    let ri = right.column_index(right_col)?;
    let mut prompts = Vec::with_capacity(left.len() * right.len());
    for l in left.rows() {
        for r in right.rows() {
            let value = format!("{} / {}", l[li], r[ri]);
            prompts.push(sem_filter_prompt(claim, &value));
        }
    }
    let verdicts = engine.complete_batch_op("sem_join", &prompts)?;
    let mut columns = left.columns().to_vec();
    for c in right.columns() {
        if left.columns().iter().any(|l| l.eq_ignore_ascii_case(c)) {
            columns.push(format!("{c}_r"));
        } else {
            columns.push(c.clone());
        }
    }
    let mut rows = Vec::new();
    let mut v = verdicts.iter();
    for l in left.rows() {
        for r in right.rows() {
            let keep = v
                .next()
                .map(|a| a.trim().eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            if keep {
                let mut row = l.clone();
                row.extend(r.iter().cloned());
                rows.push(row);
            }
        }
    }
    Ok(DataFrame::new(columns, rows).expect("widths consistent"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tag_lm::sim::{SimConfig, SimLm};
    use tag_lm::KnowledgeConfig;

    fn engine() -> SemEngine {
        SemEngine::new(Arc::new(SimLm::new(SimConfig {
            knowledge: KnowledgeConfig {
                coverage: 1.0,
                enumeration_coverage: 1.0,
                seed: 11,
            },
            judgment_noise: 0.0,
            ..SimConfig::default()
        })))
    }

    fn cities() -> DataFrame {
        DataFrame::new(
            vec!["City".into(), "n".into()],
            vec![
                vec![Value::text("Palo Alto"), Value::Int(1)],
                vec![Value::text("Fresno"), Value::Int(2)],
                vec![Value::text("Cupertino"), Value::Int(3)],
                vec![Value::text("San Diego"), Value::Int(4)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn sem_filter_region() {
        let e = engine();
        let out = sem_filter(
            &e,
            &cities(),
            "City",
            &SemClaim::CityInRegion {
                region: "Silicon Valley".into(),
            },
        )
        .unwrap();
        let names: Vec<String> = out
            .column("City")
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(names, vec!["Palo Alto", "Cupertino"]);
    }

    #[test]
    fn sem_filter_batches_once() {
        let e = engine();
        sem_filter(
            &e,
            &cities(),
            "City",
            &SemClaim::CityInRegion {
                region: "Bay Area".into(),
            },
        )
        .unwrap();
        assert_eq!(e.stats().lm_batches, 1);
        assert_eq!(e.stats().lm_prompts, 4);
    }

    #[test]
    fn sem_topk_orders_by_technicality() {
        let e = engine();
        let df = DataFrame::new(
            vec!["Title".into()],
            vec![
                vec![Value::text("My favorite lunch spots")],
                vec![Value::text(
                    "Bayesian kernel regression with regularization",
                )],
                vec![Value::text("Gradient boosting hyperparameter optimization")],
                vec![Value::text("Pictures of my cat")],
            ],
        )
        .unwrap();
        let top = sem_topk(&e, &df, "Title", SemProperty::Technical, 2).unwrap();
        let titles: Vec<String> = top
            .column("Title")
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(titles.len(), 2);
        assert!(titles[0].contains("Bayesian") || titles[0].contains("Gradient"));
        assert!(titles[1].contains("Bayesian") || titles[1].contains("Gradient"));
    }

    #[test]
    fn sem_topk_small_inputs() {
        let e = engine();
        let df = DataFrame::new(vec!["t".into()], vec![vec![Value::text("only")]]).unwrap();
        let out = sem_topk(&e, &df, "t", SemProperty::Positive, 5).unwrap();
        assert_eq!(out.len(), 1);
        let empty = DataFrame::empty(vec!["t".into()]);
        assert_eq!(
            sem_topk(&e, &empty, "t", SemProperty::Positive, 3)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn sem_topk_quickselect_on_large_input() {
        let e = engine();
        // 100 rows: 5 clearly technical, the rest casual. Quickselect must
        // surface the technical ones without the full O(n^2) tournament.
        let mut rows: Vec<Vec<Value>> = (0..95)
            .map(|i| vec![Value::text(format!("my favorite lunch spot number {i}"))])
            .collect();
        for t in [
            "Bayesian kernel regression with regularization",
            "Gradient boosting hyperparameter optimization tricks",
            "Eigenvalue convergence of stochastic estimators",
            "Posterior variance of quantile regression",
            "Covariance matrix regularization under dropout",
        ] {
            rows.push(vec![Value::text(t)]);
        }
        let df = DataFrame::new(vec!["Title".into()], rows).unwrap();
        let top = sem_topk(&e, &df, "Title", SemProperty::Technical, 5).unwrap();
        assert_eq!(top.len(), 5);
        for v in top.column("Title").unwrap() {
            assert!(
                !v.to_string().contains("lunch"),
                "casual row leaked into top-5: {v}"
            );
        }
        // Far fewer comparisons than the full 100*99/2 = 4950 tournament.
        let stats = e.stats();
        assert!(
            stats.lm_prompts < 1500,
            "quickselect should cut comparisons, used {}",
            stats.lm_prompts
        );
    }

    #[test]
    fn quickselect_agrees_with_borda_on_clean_data() {
        // On clearly separated data, the quickselect path (large n) must
        // select the same top set the exhaustive tournament would.
        let e = engine();
        let mut rows: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::text(format!("chatting about plants number {i}"))])
            .collect();
        let technical = [
            "Bayesian kernel regression with regularization",
            "Gradient boosting hyperparameter optimization",
            "Eigenvalue convergence of stochastic estimators",
        ];
        for t in technical {
            rows.push(vec![Value::text(t)]);
        }
        let df = DataFrame::new(vec!["t".into()], rows).unwrap();
        let top = sem_topk(&e, &df, "t", SemProperty::Technical, 3).unwrap();
        let got: std::collections::HashSet<String> = top
            .column("t")
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        let want: std::collections::HashSet<String> =
            technical.iter().map(|s| s.to_string()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn sem_topk_k_zero_and_k_exceeding_n() {
        let e = engine();
        let df = DataFrame::new(
            vec!["t".into()],
            vec![vec![Value::text("a")], vec![Value::text("b")]],
        )
        .unwrap();
        assert_eq!(
            sem_topk(&e, &df, "t", SemProperty::Positive, 0)
                .unwrap()
                .len(),
            0
        );
        assert_eq!(
            sem_topk(&e, &df, "t", SemProperty::Positive, 10)
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn sem_agg_small_single_call() {
        let e = engine();
        let df = DataFrame::new(
            vec!["year".into(), "name".into()],
            (1999..=2005)
                .map(|y| {
                    vec![
                        Value::Int(y),
                        Value::text(format!("{y} Malaysian Grand Prix")),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let summary = sem_agg(&e, &df, "Summarize the races", None).unwrap();
        assert!(!summary.is_empty());
        assert_eq!(e.stats().lm_batches, 1);
    }

    #[test]
    fn sem_agg_hierarchical_fold_on_large_input() {
        // Tiny context forces the fold path.
        let lm = SimLm::new(SimConfig {
            context_window: 400,
            ..SimConfig::default()
        });
        let e = SemEngine::new(Arc::new(lm));
        let df = DataFrame::new(
            vec!["text".into()],
            (0..60)
                .map(|i| {
                    vec![Value::text(format!(
                        "comment number {i} about gradient boosting and residuals"
                    ))]
                })
                .collect(),
        )
        .unwrap();
        let summary = sem_agg(&e, &df, "Summarize the comments", None).unwrap();
        assert!(!summary.is_empty());
        assert!(
            e.stats().lm_prompts > 1,
            "expected a hierarchical fold, got {:?}",
            e.stats()
        );
    }

    #[test]
    fn sem_agg_refine_small_input_single_call() {
        let e = engine();
        let df = DataFrame::new(
            vec!["text".into()],
            vec![
                vec![Value::text("boosting combines weak learners")],
                vec![Value::text("gentle boosting uses smaller steps")],
            ],
        )
        .unwrap();
        let s = sem_agg_refine(&e, &df, "Summarize the comments", None).unwrap();
        assert!(!s.is_empty());
        assert_eq!(e.stats().lm_prompts, 1);
    }

    #[test]
    fn sem_agg_refine_is_serial_on_large_input() {
        let lm = SimLm::new(SimConfig {
            context_window: 400,
            ..SimConfig::default()
        });
        let e = SemEngine::new(Arc::new(lm));
        let df = DataFrame::new(
            vec!["text".into()],
            (0..60)
                .map(|i| {
                    vec![Value::text(format!(
                        "comment number {i} about gradient boosting and residuals"
                    ))]
                })
                .collect(),
        )
        .unwrap();
        let s = sem_agg_refine(&e, &df, "Summarize the comments", None).unwrap();
        assert!(!s.is_empty());
        let stats = e.stats();
        assert!(stats.lm_prompts > 1, "{stats:?}");
        // Strictly serial: every round is a batch of one.
        assert_eq!(stats.lm_prompts, stats.lm_batches, "{stats:?}");
    }

    #[test]
    fn sem_agg_refine_empty_frame() {
        let e = engine();
        let df = DataFrame::empty(vec!["text".into()]);
        assert_eq!(sem_agg_refine(&e, &df, "Summarize", None).unwrap(), "");
    }

    #[test]
    fn sem_map_classifies_sentiment() {
        let e = engine();
        let df = DataFrame::new(
            vec!["review".into()],
            vec![
                vec![Value::text("an excellent, wonderful film")],
                vec![Value::text("a boring, terrible mess")],
                vec![Value::text("the runtime is two hours")],
            ],
        )
        .unwrap();
        let out = sem_map(
            &e,
            &df,
            "review",
            "classify the sentiment as positive, negative, or neutral",
            "label",
        )
        .unwrap();
        let labels: Vec<String> = out
            .column("label")
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(labels, vec!["positive", "negative", "neutral"]);
    }

    #[test]
    fn sem_map_extracts_years_with_cached_duplicates() {
        let e = engine();
        let df = DataFrame::new(
            vec!["name".into()],
            vec![
                vec![Value::text("2004 Malaysian Grand Prix")],
                vec![Value::text("2017 Malaysian Grand Prix")],
                vec![Value::text("2004 Malaysian Grand Prix")],
            ],
        )
        .unwrap();
        let out = sem_map(&e, &df, "name", "extract the year", "year").unwrap();
        let years: Vec<String> = out
            .column("year")
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(years, vec!["2004", "2017", "2004"]);
        // Duplicate value answered from cache: only 2 prompts hit the LM.
        assert_eq!(e.stats().lm_prompts, 2);
    }

    #[test]
    fn sem_score_attaches_bounded_scores() {
        let e = engine();
        let scored = sem_score(&e, &cities(), "Which cities are in California?", "score").unwrap();
        assert!(scored.columns().contains(&"score".to_string()));
        for r in scored.rows() {
            let s = r[2].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn sem_score_traces_as_rerank_stage() {
        let e = engine();
        let (trace, sink) = tag_trace::Trace::memory();
        tag_trace::with_trace(&trace, || {
            sem_score(&e, &cities(), "Which cities are in California?", "score").unwrap()
        });
        let spans = sink.take();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].label, "sem_score");
        assert_eq!(
            spans[0].stage,
            tag_trace::Stage::Rerank,
            "relevance scoring belongs to the rerank stage"
        );
    }

    #[test]
    fn sem_join_cross_product_filter() {
        let e = engine();
        // Join heights against people: keep pairs where height > person's.
        let heights = DataFrame::new(
            vec!["h".into()],
            vec![vec![Value::Int(170)], vec![Value::Int(210)]],
        )
        .unwrap();
        let people = DataFrame::new(
            vec!["person".into()],
            vec![vec![Value::text("Stephen Curry")]],
        )
        .unwrap();
        // The claim sees "h / person"; HeightTallerThan parses the number
        // before the separator. 210 > 188 keeps; 170 doesn't.
        let joined = sem_join(
            &e,
            &heights,
            "h",
            &people,
            "person",
            &SemClaim::Property(SemProperty::Positive),
        )
        .unwrap();
        // Property(positive) on "170 / Stephen Curry" is neutral => FALSE.
        assert_eq!(joined.len(), 0);
        assert_eq!(joined.columns(), &["h".to_string(), "person".to_string()]);
    }

    #[test]
    fn missing_column_errors() {
        let e = engine();
        assert!(sem_filter(&e, &cities(), "nope", &SemClaim::ClassicMovie).is_err());
    }
}
