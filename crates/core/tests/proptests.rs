//! Property-based tests for answers and the exact-match metric.

use proptest::prelude::*;
use tag_core::answer::{exact_match, normalize_value, Answer};

proptest! {
    /// Normalization is idempotent and insensitive to surrounding quotes
    /// and whitespace.
    #[test]
    fn normalize_idempotent(v in "\\PC{0,30}") {
        let once = normalize_value(&v);
        prop_assert_eq!(normalize_value(&once), once.clone());
        let decorated = format!("  \"{v}\"  ");
        // Quoting + trimming must not change the normal form unless the
        // value itself contains quote characters.
        if !v.contains('"') {
            prop_assert_eq!(normalize_value(&decorated), once);
        }
    }

    /// Integer-valued floats normalize to the integer form.
    #[test]
    fn normalize_numeric_forms(n in -100000i64..100000) {
        prop_assert_eq!(normalize_value(&n.to_string()), n.to_string());
        prop_assert_eq!(normalize_value(&format!("{n}.0")), n.to_string());
    }

    /// Unordered exact match is symmetric under permutation; ordered
    /// match is not (unless the permutation is the identity).
    #[test]
    fn match_order_semantics(vals in prop::collection::vec("[a-z]{1,6}", 1..6)) {
        let answer = Answer::List(vals.clone());
        let mut reversed = vals.clone();
        reversed.reverse();
        prop_assert!(exact_match(&answer, &vals, true));
        prop_assert!(exact_match(&answer, &reversed, false));
        if reversed != vals {
            prop_assert!(!exact_match(&answer, &reversed, true));
        }
    }

    /// Errors and free text never match any truth.
    #[test]
    fn non_lists_never_match(vals in prop::collection::vec("[a-z]{1,6}", 0..4)) {
        prop_assert!(!exact_match(&Answer::Error("x".into()), &vals, false));
        prop_assert!(!exact_match(&Answer::Text("x".into()), &vals, false));
    }
}
