//! Golden-stability tests for the explain surfaces: `EXPLAIN`,
//! `EXPLAIN SEMPLAN`, and `EXPLAIN VERIFY` must render byte-identical
//! output across repeated runs *and* across independently built (but
//! identical) databases. The verifier's CI sweep and any golden tests
//! diff this text, so hash-order-dependent rendering anywhere in the
//! plan, catalog, or annotation paths would show up here as flakes.

use std::sync::Arc;
use tag_core::env::TagEnv;
use tag_lm::sim::{SimConfig, SimLm};
use tag_sql::Database;

const QUESTION: &str = "How many schools are there?";

fn env() -> TagEnv {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE schools (CDSCode INTEGER PRIMARY KEY, School TEXT, City TEXT);
         CREATE TABLE posts (Id INTEGER PRIMARY KEY, Body TEXT, Score INTEGER);
         INSERT INTO schools VALUES (1, 'Gunn High', 'Palo Alto'), (2, 'Fresno High', 'Fresno');
         INSERT INTO posts VALUES (1, 'hello', 4), (2, 'world', 9);",
    )
    .unwrap();
    TagEnv::new(db, Arc::new(SimLm::new(SimConfig::default())))
}

fn render(env: &TagEnv, statement: &str) -> String {
    let rs = env.db.query(statement).unwrap();
    rs.rows
        .iter()
        .map(|r| r[0].to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn explain_semplan_is_stable_across_runs_and_databases() {
    let a = env();
    let b = env();
    let stmt = format!("EXPLAIN SEMPLAN {QUESTION}");
    let first = render(&a, &stmt);
    for _ in 0..3 {
        assert_eq!(render(&a, &stmt), first, "unstable across runs");
    }
    assert_eq!(render(&b, &stmt), first, "unstable across databases");
}

#[test]
fn explain_verify_is_stable_across_runs_and_databases() {
    let a = env();
    let b = env();
    let stmt = format!("EXPLAIN VERIFY {QUESTION}");
    let first = render(&a, &stmt);
    assert!(first.starts_with("verify: ok"), "{first}");
    for _ in 0..3 {
        assert_eq!(render(&a, &stmt), first, "unstable across runs");
    }
    assert_eq!(render(&b, &stmt), first, "unstable across databases");
}

#[test]
fn relational_explain_is_stable_across_databases() {
    let a = env();
    let b = env();
    // Compare first-run against first-run so both see the same
    // plan-cache state (the `plan_cache: hit|miss` tail is stateful by
    // design; operator rendering above it must not be).
    let stmt = "EXPLAIN SELECT City FROM schools WHERE CDSCode = 2 ORDER BY School";
    assert_eq!(render(&a, stmt), render(&b, stmt));
    // Re-explaining flips only the cache line, never the plan text.
    let again_a = render(&a, stmt);
    let again_b = render(&b, stmt);
    assert_eq!(again_a, again_b);
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with("plan_cache:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&render(&a, stmt)), strip(&again_a));
}
