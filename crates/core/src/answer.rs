//! Answer representation and the exact-match metric.

use std::fmt;

/// The natural-language answer `A` produced by a TAG system.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// A list of values, the format the benchmark's match-based,
    /// comparison, and ranking queries are graded on.
    List(Vec<String>),
    /// Free text (aggregation queries; graded qualitatively, as in §4.3).
    Text(String),
    /// The method failed outright (invalid SQL, context overflow, ...).
    Error(String),
}

impl Answer {
    /// The list values, if this is a list answer.
    pub fn as_list(&self) -> Option<&[String]> {
        match self {
            Answer::List(v) => Some(v),
            _ => None,
        }
    }

    /// The text, if this is a free-text answer.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Answer::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Did the method fail?
    pub fn is_error(&self) -> bool {
        matches!(self, Answer::Error(_))
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::List(v) => write!(f, "[{}]", v.join(", ")),
            Answer::Text(t) => write!(f, "{t}"),
            Answer::Error(e) => write!(f, "<error: {e}>"),
        }
    }
}

/// Normalize one value for comparison: trim, lowercase, and collapse
/// numeric formatting (so `"560"`, `560`, and `560.0` all match).
pub fn normalize_value(v: &str) -> String {
    let t = v.trim().trim_matches('"').trim();
    if let Ok(x) = t.parse::<f64>() {
        if x.fract() == 0.0 && x.is_finite() {
            return format!("{}", x as i64);
        }
        return format!("{x}");
    }
    t.to_lowercase()
}

/// Exact match between a produced answer and the labeled truth.
///
/// `ordered` is true for ranking queries (the order is the answer) and
/// false for match-based / comparison queries (set semantics, as "a list
/// of values evaluatable in Python" compared against labels).
pub fn exact_match(answer: &Answer, truth: &[String], ordered: bool) -> bool {
    let Some(values) = answer.as_list() else {
        return false;
    };
    let got: Vec<String> = values.iter().map(|v| normalize_value(v)).collect();
    let want: Vec<String> = truth.iter().map(|v| normalize_value(v)).collect();
    if ordered {
        got == want
    } else {
        let mut g = got;
        let mut w = want;
        g.sort_unstable();
        w.sort_unstable();
        g == w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(normalize_value(" \"Gunn High\" "), "gunn high");
        assert_eq!(normalize_value("560.0"), "560");
        assert_eq!(normalize_value("560"), "560");
        assert_eq!(normalize_value("2.5"), "2.5");
    }

    #[test]
    fn unordered_match() {
        let a = Answer::List(vec!["B".into(), "a".into()]);
        assert!(exact_match(&a, &["A".into(), "b".into()], false));
        assert!(!exact_match(&a, &["A".into()], false));
    }

    #[test]
    fn ordered_match() {
        let a = Answer::List(vec!["x".into(), "y".into()]);
        assert!(exact_match(&a, &["X".into(), "Y".into()], true));
        assert!(!exact_match(&a, &["Y".into(), "X".into()], true));
    }

    #[test]
    fn numeric_equivalence() {
        let a = Answer::List(vec!["8".into()]);
        assert!(exact_match(&a, &["8.0".into()], false));
    }

    #[test]
    fn errors_and_text_never_match() {
        assert!(!exact_match(
            &Answer::Error("x".into()),
            &["8".into()],
            false
        ));
        assert!(!exact_match(
            &Answer::Text("8".into()),
            &["8".into()],
            false
        ));
    }

    #[test]
    fn display() {
        assert_eq!(Answer::List(vec!["a".into()]).to_string(), "[a]");
        assert!(Answer::Error("boom".into()).to_string().contains("boom"));
    }
}
