//! Multi-hop TAG (§2: "one can consider extending TAG in a multi-hop
//! fashion"; §5: "future work may explore extending this in an agentic
//! loop").
//!
//! A two-hop query runs a first TAG iteration, substitutes its answer
//! into the second question's filter, and runs a second iteration. The
//! ablation harness compares this against forcing both constraints into
//! a single hop.

use crate::answer::Answer;
use crate::env::TagEnv;
use crate::methods::HandWrittenTag;
use tag_lm::nlq::{NlFilter, NlQuery};

/// A compositional two-hop question: hop 1 computes a value set; hop 2
/// consumes it as an `attr IN (hop-1 answers)` constraint.
///
/// `hop2` must be a filterable shape (Superlative / Count / List / TopK /
/// Summarize / ProvideInfo); a `SemanticRank` hop 2 has no filter slot
/// and would silently ignore the hop-1 constraint.
#[derive(Debug, Clone)]
pub struct TwoHopQuery {
    /// The first hop (must produce a list answer).
    pub hop1: NlQuery,
    /// Column of `hop2`'s entity matched against hop 1's answers.
    pub join_attr: String,
    /// The second hop, evaluated with the extra membership constraint.
    pub hop2: NlQuery,
}

/// Run a two-hop query with hand-written TAG pipelines per hop.
pub fn run_two_hop(query: &TwoHopQuery, env: &TagEnv) -> Answer {
    let first = HandWrittenTag.answer_structured(&query.hop1, env);
    let values = match first {
        Answer::List(v) => v,
        other => return other,
    };
    if values.is_empty() {
        return Answer::List(Vec::new());
    }
    // Inject the hop-1 result as TextEq constraints (one per value,
    // OR-semantics realised by unioning per-value runs).
    let mut merged: Vec<String> = Vec::new();
    for v in &values {
        let mut hop2 = query.hop2.clone();
        push_filter(
            &mut hop2,
            NlFilter::TextEq {
                attr: query.join_attr.clone(),
                value: v.clone(),
            },
        );
        match HandWrittenTag.answer_structured(&hop2, env) {
            Answer::List(mut vs) => merged.append(&mut vs),
            other => return other,
        }
    }
    // Counts compose additively; value lists concatenate.
    if matches!(query.hop2, NlQuery::Count { .. }) {
        let total: i64 = merged.iter().filter_map(|v| v.parse::<i64>().ok()).sum();
        Answer::List(vec![total.to_string()])
    } else {
        Answer::List(merged)
    }
}

fn push_filter(q: &mut NlQuery, f: NlFilter) {
    match q {
        NlQuery::Superlative { filters, .. }
        | NlQuery::Count { filters, .. }
        | NlQuery::List { filters, .. }
        | NlQuery::TopK { filters, .. }
        | NlQuery::Summarize { filters, .. }
        | NlQuery::ProvideInfo { filters, .. } => filters.push(f),
        NlQuery::SemanticRank { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tag_lm::nlq::{CmpOp, SemProperty};
    use tag_lm::sim::{SimConfig, SimLm};
    use tag_lm::KnowledgeConfig;
    use tag_sql::Database;

    fn env() -> TagEnv {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE posts (Id INTEGER, Title TEXT, OwnerId INTEGER, ViewCount INTEGER);
             INSERT INTO posts VALUES
               (1, 'Bayesian regression with kernel regularization tricks', 10, 900),
               (2, 'My lunch diary', 11, 800),
               (3, 'Gradient boosting optimization', 10, 700);
             CREATE TABLE comments (Id INTEGER, PostId INTEGER, Text TEXT);
             INSERT INTO comments VALUES
               (1, 1, 'helpful and clear derivation, excellent'),
               (2, 1, 'what a surprise, it diverges. pure genius'),
               (3, 2, 'nice lunch'),
               (4, 3, 'oh great, another boosting question. truly groundbreaking'),
               (5, 1, 'thanks, this is wonderful');",
        )
        .unwrap();
        TagEnv::new(
            db,
            Arc::new(SimLm::new(SimConfig {
                knowledge: KnowledgeConfig {
                    coverage: 1.0,
                    enumeration_coverage: 1.0,
                    seed: 3,
                },
                judgment_noise: 0.0,
                ..SimConfig::default()
            })),
        )
    }

    #[test]
    fn two_hop_counts_compose() {
        // Hop 1: ids of technical posts. Hop 2: count their sarcastic comments.
        let q = TwoHopQuery {
            hop1: NlQuery::List {
                entity: "posts".into(),
                select_attr: "Id".into(),
                filters: vec![NlFilter::Semantic {
                    attr: "Title".into(),
                    property: SemProperty::Technical,
                }],
            },
            join_attr: "PostId".into(),
            hop2: NlQuery::Count {
                entity: "comments".into(),
                filters: vec![NlFilter::Semantic {
                    attr: "Text".into(),
                    property: SemProperty::Sarcastic,
                }],
            },
        };
        let env = env();
        let ans = run_two_hop(&q, &env);
        // Posts 1 and 3 are technical; each has one sarcastic comment.
        assert_eq!(ans, Answer::List(vec!["2".into()]));
    }

    #[test]
    fn empty_first_hop_short_circuits() {
        let q = TwoHopQuery {
            hop1: NlQuery::List {
                entity: "posts".into(),
                select_attr: "Id".into(),
                filters: vec![NlFilter::NumCmp {
                    attr: "ViewCount".into(),
                    op: CmpOp::Over,
                    value: 100_000.0,
                }],
            },
            join_attr: "PostId".into(),
            hop2: NlQuery::Count {
                entity: "comments".into(),
                filters: vec![],
            },
        };
        let env = env();
        assert_eq!(run_two_hop(&q, &env), Answer::List(vec![]));
    }
}
