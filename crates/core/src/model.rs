//! The TAG model: `syn`, `exec`, `gen` (§2).
//!
//! TAG is defined by three functions:
//!
//! ```text
//! syn(R)    -> Q      (query synthesis)
//! exec(Q)   -> T      (query execution)
//! gen(R, T) -> A      (answer generation)
//! ```
//!
//! [`TagPipeline`] composes pluggable `syn` and `gen` stages around the
//! database engine's `exec`. The baselines in [`crate::methods`] are
//! special cases: Text2SQL uses an LM `syn` and the identity `gen`; RAG
//! uses retrieval as `syn`+`exec` and a single LM call as `gen`.

use crate::answer::Answer;
use crate::env::TagEnv;
use tag_sql::ResultSet;

/// The query-synthesis stage: natural language request → database query.
pub trait QuerySynthesis {
    /// Produce an executable SQL query for the request.
    fn synthesize(&self, request: &str, env: &TagEnv) -> Result<String, String>;
}

/// The answer-generation stage: request + computed table → answer.
pub trait AnswerGeneration {
    /// Produce the final answer from the request and the computed table.
    fn generate(&self, request: &str, table: &ResultSet, env: &TagEnv) -> Answer;
}

/// A composable single-iteration TAG pipeline over the SQL engine.
pub struct TagPipeline<S, G> {
    syn: S,
    gen: G,
}

impl<S: QuerySynthesis, G: AnswerGeneration> TagPipeline<S, G> {
    /// Compose a pipeline from its stages.
    pub fn new(syn: S, gen: G) -> Self {
        TagPipeline { syn, gen }
    }

    /// Run `gen(R, exec(syn(R)))`.
    pub fn answer(&self, request: &str, env: &TagEnv) -> Answer {
        let query = {
            let _span = tag_trace::span(tag_trace::Stage::Syn, "synthesize");
            match self.syn.synthesize(request, env) {
                Ok(q) => q,
                Err(e) => return Answer::Error(format!("query synthesis failed: {e}")),
            }
        };
        let table = match env.run_sql(&query) {
            Ok(t) => t,
            Err(e) => return Answer::Error(format!("query execution failed: {e}")),
        };
        let _span = tag_trace::span(tag_trace::Stage::Gen, "generate");
        self.gen.generate(request, &table, env)
    }
}

/// A named method under evaluation (one row of Table 1).
pub trait TagMethod {
    /// Display name, matching the paper's method names.
    fn name(&self) -> &'static str;
    /// Answer a natural-language request over the environment.
    fn answer(&self, request: &str, env: &TagEnv) -> Answer;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tag_lm::sim::{SimConfig, SimLm};
    use tag_sql::Database;

    struct FixedSyn(&'static str);
    impl QuerySynthesis for FixedSyn {
        fn synthesize(&self, _r: &str, _e: &TagEnv) -> Result<String, String> {
            Ok(self.0.to_owned())
        }
    }

    struct CountGen;
    impl AnswerGeneration for CountGen {
        fn generate(&self, _r: &str, t: &ResultSet, _e: &TagEnv) -> Answer {
            Answer::List(vec![t.len().to_string()])
        }
    }

    fn env() -> TagEnv {
        let mut db = Database::new();
        db.execute_script("CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1), (2), (3);")
            .unwrap();
        TagEnv::new(db, Arc::new(SimLm::new(SimConfig::default())))
    }

    #[test]
    fn pipeline_composes_stages() {
        let p = TagPipeline::new(FixedSyn("SELECT * FROM t WHERE x > 1"), CountGen);
        let env = env();
        assert_eq!(p.answer("how many?", &env), Answer::List(vec!["2".into()]));
    }

    #[test]
    fn execution_failure_surfaces_as_error() {
        let p = TagPipeline::new(FixedSyn("SELECT * FROM missing"), CountGen);
        let env = env();
        assert!(p.answer("?", &env).is_error());
    }
}
