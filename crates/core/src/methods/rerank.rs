//! The Retrieval + LM Rank baseline (§4.2): retrieve a candidate pool,
//! rerank with LM relevance scores (STaRK-style), keep the top rows.

use crate::answer::Answer;
use crate::env::TagEnv;
use crate::methods::gen_frame_to_answer;
use crate::model::TagMethod;
use crate::semplan::{compile_rerank, run_semplan};

/// Retrieval with LM reranking.
#[derive(Debug, Clone, Copy)]
pub struct RetrievalLmRank {
    /// Candidate pool retrieved by embedding similarity.
    pub pool: usize,
    /// Rows kept after reranking (fed to generation).
    pub k: usize,
    /// List-answer vs free-form prompt.
    pub list_format: bool,
}

impl Default for RetrievalLmRank {
    fn default() -> Self {
        RetrievalLmRank {
            pool: 30,
            k: 10,
            list_format: true,
        }
    }
}

impl RetrievalLmRank {
    /// Variant with the free-form aggregation prompt.
    pub fn aggregation() -> Self {
        RetrievalLmRank {
            list_format: false,
            ..Self::default()
        }
    }
}

impl TagMethod for RetrievalLmRank {
    fn name(&self) -> &'static str {
        "Retrieval + LM Rank"
    }

    fn answer(&self, request: &str, env: &TagEnv) -> Answer {
        // retrieve -> rerank -> generate as a semantic plan through the
        // shared planner. The rerank stage scores every candidate 0–1
        // with the LM in one batch, exactly as before.
        let key = format!(
            "rerank:pool={}:k={}:list={}:{request}",
            self.pool, self.k, self.list_format
        );
        match run_semplan(env, Some(&key), || {
            compile_rerank(request, self.pool, self.k, self.list_format)
        }) {
            Ok(frame) => gen_frame_to_answer(&frame, self.list_format),
            Err(e) => Answer::Error(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tag_lm::sim::{SimConfig, SimLm};
    use tag_sql::Database;

    #[test]
    fn rerank_keeps_k_and_answers() {
        let mut db = Database::new();
        db.execute("CREATE TABLE posts (Id INTEGER, Title TEXT, ViewCount INTEGER)")
            .unwrap();
        for i in 0..40 {
            db.execute(&format!(
                "INSERT INTO posts VALUES ({i}, 'post about topic {i}', {})",
                1000 - i
            ))
            .unwrap();
        }
        let env = TagEnv::new(db, Arc::new(SimLm::new(SimConfig::default())));
        let ans = RetrievalLmRank::default()
            .answer("How many posts with ViewCount over 990 are there?", &env);
        // The reranker feeds only 10 rows; the true count is 10 (views
        // 991..1000). Whether it matches depends on retrieval quality —
        // the method must at least produce a list.
        assert!(matches!(ans, Answer::List(_)), "{ans:?}");
    }
}
