//! The Retrieval + LM Rank baseline (§4.2): retrieve a candidate pool,
//! rerank with LM relevance scores (STaRK-style), keep the top rows.

use crate::answer::Answer;
use crate::env::TagEnv;
use crate::methods::response_to_answer;
use crate::model::TagMethod;
use tag_lm::model::LmRequest;
use tag_lm::prompts::{answer_free_prompt, answer_list_prompt, relevance_prompt};

/// Retrieval with LM reranking.
#[derive(Debug, Clone, Copy)]
pub struct RetrievalLmRank {
    /// Candidate pool retrieved by embedding similarity.
    pub pool: usize,
    /// Rows kept after reranking (fed to generation).
    pub k: usize,
    /// List-answer vs free-form prompt.
    pub list_format: bool,
}

impl Default for RetrievalLmRank {
    fn default() -> Self {
        RetrievalLmRank {
            pool: 30,
            k: 10,
            list_format: true,
        }
    }
}

impl RetrievalLmRank {
    /// Variant with the free-form aggregation prompt.
    pub fn aggregation() -> Self {
        RetrievalLmRank {
            list_format: false,
            ..Self::default()
        }
    }
}

impl TagMethod for RetrievalLmRank {
    fn name(&self) -> &'static str {
        "Retrieval + LM Rank"
    }

    fn answer(&self, request: &str, env: &TagEnv) -> Answer {
        let candidates: Vec<Vec<(String, String)>> = {
            let _span = tag_trace::span(tag_trace::Stage::Retrieve, "candidate pool");
            let candidates: Vec<Vec<(String, String)>> = env
                .row_store()
                .retrieve(request, self.pool)
                .into_iter()
                .map(|(row, _)| row.clone())
                .collect();
            tag_trace::annotate(format!(
                "retrieved {} candidates (pool={})",
                candidates.len(),
                self.pool
            ));
            candidates
        };

        // Score every candidate 0–1 with the LM, in one batch.
        let points: Vec<Vec<(String, String)>> = {
            let _span = tag_trace::span(tag_trace::Stage::Rerank, "relevance scores");
            let prompts: Vec<String> = candidates
                .iter()
                .map(|row| {
                    let text = row
                        .iter()
                        .map(|(c, v)| format!("- {c}: {v}"))
                        .collect::<Vec<_>>()
                        .join("\n");
                    relevance_prompt(request, &text)
                })
                .collect();
            let scores = match env.engine.complete_batch_op("rerank", &prompts) {
                Ok(s) => s,
                Err(e) => return Answer::Error(e.to_string()),
            };
            let mut scored: Vec<(f64, usize)> = scores
                .iter()
                .enumerate()
                .map(|(i, s)| (s.trim().parse::<f64>().unwrap_or(0.0), i))
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            scored
                .iter()
                .take(self.k)
                .map(|(_, i)| candidates[*i].clone())
                .collect()
        };

        let _span = tag_trace::span(tag_trace::Stage::Gen, "answer");
        let prompt = if self.list_format {
            answer_list_prompt(request, &points)
        } else {
            answer_free_prompt(request, &points)
        };
        match env.generate(&LmRequest::new(prompt)) {
            Ok(r) => response_to_answer(&r.text, self.list_format),
            Err(e) => Answer::Error(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tag_lm::sim::{SimConfig, SimLm};
    use tag_sql::Database;

    #[test]
    fn rerank_keeps_k_and_answers() {
        let mut db = Database::new();
        db.execute("CREATE TABLE posts (Id INTEGER, Title TEXT, ViewCount INTEGER)")
            .unwrap();
        for i in 0..40 {
            db.execute(&format!(
                "INSERT INTO posts VALUES ({i}, 'post about topic {i}', {})",
                1000 - i
            ))
            .unwrap();
        }
        let env = TagEnv::new(db, Arc::new(SimLm::new(SimConfig::default())));
        let ans = RetrievalLmRank::default().answer(
            "How many posts with ViewCount over 990 are there?",
            &env,
        );
        // The reranker feeds only 10 rows; the true count is 10 (views
        // 991..1000). Whether it matches depends on retrieval quality —
        // the method must at least produce a list.
        assert!(matches!(ans, Answer::List(_)), "{ans:?}");
    }
}
