//! The vanilla Text2SQL baseline (§4.2).
//!
//! The LM generates SQL which is executed to obtain the answer directly;
//! there is no generation step. Questions whose knowledge or reasoning
//! clauses have no relational equivalent fail here — the paper's central
//! observation.

use crate::answer::Answer;
use crate::env::TagEnv;
use crate::methods::result_to_answer;
use crate::model::{QuerySynthesis, TagMethod};
use tag_lm::prompts::text2sql_prompt;

/// Vanilla Text2SQL: `syn` = LM over a BIRD prompt, `gen` = identity.
#[derive(Debug, Clone, Copy, Default)]
pub struct Text2Sql;

impl QuerySynthesis for Text2Sql {
    fn synthesize(&self, request: &str, env: &TagEnv) -> Result<String, String> {
        let _span = tag_trace::span(tag_trace::Stage::Syn, "text2sql");
        let prompt = text2sql_prompt(env.schema_prompt(), request, false);
        let completion = env
            .engine
            .complete_op("text2sql", &prompt)
            .map_err(|e| e.to_string())?;
        Ok(format!("SELECT {completion}"))
    }
}

impl TagMethod for Text2Sql {
    fn name(&self) -> &'static str {
        "Text2SQL"
    }

    fn answer(&self, request: &str, env: &TagEnv) -> Answer {
        let sql = match self.synthesize(request, env) {
            Ok(s) => s,
            Err(e) => return Answer::Error(e),
        };
        match env.run_sql(&sql) {
            Ok(rs) => result_to_answer(&rs),
            Err(e) => Answer::Error(format!("generated SQL failed: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tag_lm::sim::{SimConfig, SimLm};
    use tag_lm::KnowledgeConfig;
    use tag_sql::Database;

    fn env() -> TagEnv {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE schools (CDSCode INTEGER PRIMARY KEY, School TEXT, City TEXT, \
                                   Longitude REAL, GSoffered TEXT);
             INSERT INTO schools VALUES
               (1, 'Gunn High', 'Palo Alto', -122.1, 'K-12'),
               (2, 'Fresno High', 'Fresno', -119.8, '9-12'),
               (3, 'Lincoln High', 'San Jose', -121.9, '9-12');",
        )
        .unwrap();
        TagEnv::new(
            db,
            Arc::new(SimLm::new(SimConfig {
                knowledge: KnowledgeConfig {
                    coverage: 1.0,
                    enumeration_coverage: 1.0,
                    seed: 3,
                },
                judgment_noise: 0.0,
                ..SimConfig::default()
            })),
        )
    }

    #[test]
    fn relational_question_answers_correctly() {
        let env = env();
        let ans = Text2Sql.answer(
            "How many schools with Longitude under -120 are there?",
            &env,
        );
        assert_eq!(ans, Answer::List(vec!["2".into()]));
    }

    #[test]
    fn knowledge_question_uses_inlined_memory() {
        let env = env();
        let ans = Text2Sql.answer(
            "What is the GSoffered of the schools with the highest Longitude \
             among those located in the Silicon Valley region?",
            &env,
        );
        // With full knowledge coverage this succeeds: Gunn High (Palo
        // Alto) has the highest longitude magnitude... highest value is
        // San Jose (-121.9 > -122.1).
        assert_eq!(ans, Answer::List(vec!["9-12".into()]));
    }

    #[test]
    fn reasoning_question_fails() {
        let env = env();
        // A semantic filter that either gets dropped (wrong count) or
        // produces invalid SQL (error) — never a correct pipeline.
        let ans = Text2Sql.answer("How many schools whose School is positive are there?", &env);
        match ans {
            Answer::List(v) => assert_eq!(v, vec!["3".to_string()], "clause dropped"),
            Answer::Error(e) => assert!(e.contains("failed"), "{e}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
