//! The Text2SQL + LM baseline (§4.2): the LM first writes SQL that
//! *retrieves relevant rows*, then a second LM call generates the answer
//! from those rows in context. Large retrieved sets overflow the context
//! window — the failure the paper observes on match-based and comparison
//! queries.

use crate::answer::Answer;
use crate::env::TagEnv;
use crate::methods::gen_frame_to_answer;
use crate::model::TagMethod;
use crate::semplan::{compile_generate_over, run_semplan};
use tag_lm::prompts::text2sql_prompt;

/// Text2SQL for retrieval, LM for generation.
#[derive(Debug, Clone, Copy)]
pub struct Text2SqlLm {
    /// List-answer vs free-form prompt for the generation step.
    pub list_format: bool,
}

impl Default for Text2SqlLm {
    fn default() -> Self {
        Text2SqlLm { list_format: true }
    }
}

impl Text2SqlLm {
    /// Variant with the free-form aggregation prompt.
    pub fn aggregation() -> Self {
        Text2SqlLm { list_format: false }
    }
}

impl TagMethod for Text2SqlLm {
    fn name(&self) -> &'static str {
        "Text2SQL + LM"
    }

    fn answer(&self, request: &str, env: &TagEnv) -> Answer {
        // Step 1: LM writes retrieval SQL (relational clauses only; the
        // knowledge/reasoning clauses are deferred to generation).
        let completion = {
            let _span = tag_trace::span(tag_trace::Stage::Syn, "text2sql");
            let prompt = text2sql_prompt(env.schema_prompt(), request, true);
            match env.engine.complete_op("text2sql", &prompt) {
                Ok(c) => c,
                Err(e) => return Answer::Error(e.to_string()),
            }
        };
        let sql = format!("SELECT {completion}");
        let rows = match env.run_sql(&sql) {
            Ok(rs) => rs,
            Err(e) => {
                // Retrieval failed: generation proceeds with no data and
                // must rely on parametric knowledge (Figure 2, middle).
                // Plans embedding materialized rows skip the plan cache.
                return match run_semplan(env, None, || {
                    compile_generate_over(
                        Vec::new(),
                        Vec::new(),
                        request,
                        self.list_format,
                        "answer (no data)",
                    )
                }) {
                    Ok(frame) => gen_frame_to_answer(&frame, self.list_format),
                    Err(lm_e) => Answer::Error(format!("{e}; then LM: {lm_e}")),
                };
            }
        };

        // Step 2: feed every retrieved row in context, through a
        // generation plan over the materialized result.
        match run_semplan(env, None, || {
            compile_generate_over(rows.columns, rows.rows, request, self.list_format, "answer")
        }) {
            Ok(frame) => gen_frame_to_answer(&frame, self.list_format),
            Err(e) => Answer::Error(e), // context overflow lands here
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tag_lm::sim::{SimConfig, SimLm};
    use tag_lm::KnowledgeConfig;
    use tag_sql::Database;

    fn lm() -> Arc<SimLm> {
        Arc::new(SimLm::new(SimConfig {
            knowledge: KnowledgeConfig {
                coverage: 1.0,
                enumeration_coverage: 1.0,
                seed: 3,
            },
            judgment_noise: 0.0,
            ..SimConfig::default()
        }))
    }

    #[test]
    fn defers_knowledge_to_generation() {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE schools (CDSCode INTEGER PRIMARY KEY, School TEXT, City TEXT, \
             Longitude REAL, GSoffered TEXT)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO schools VALUES
               (1, 'Gunn High', 'Palo Alto', -122.1, 'K-12'),
               (2, 'Fresno High', 'Fresno', -119.8, '9-12'),
               (3, 'Lincoln High', 'San Jose', -121.9, '9-12')",
        )
        .unwrap();
        let env = TagEnv::new(db, lm());
        let ans = Text2SqlLm::default().answer(
            "What is the GSoffered of the schools with the highest Longitude \
             among those located in the Silicon Valley region?",
            &env,
        );
        // 3 rows fit comfortably; generation applies the region knowledge.
        assert_eq!(ans, Answer::List(vec!["9-12".into()]));
        // Two LM calls happened.
        assert_eq!(env.lm.calls(), 2);
    }

    #[test]
    fn large_retrieval_overflows_context() {
        let mut db = Database::new();
        db.execute("CREATE TABLE posts (Id INTEGER, Title TEXT, Body TEXT)")
            .unwrap();
        for i in 0..200 {
            db.execute(&format!(
                "INSERT INTO posts VALUES ({i}, 'title {i}', '{}')",
                "long body text with many words repeated over and over ".repeat(5)
            ))
            .unwrap();
        }
        let lm = Arc::new(SimLm::new(SimConfig {
            context_window: 2048,
            ..SimConfig::default()
        }));
        let env = TagEnv::new(db, lm);
        let ans = Text2SqlLm::default().answer("How many posts with Id over 50 are there?", &env);
        match ans {
            Answer::Error(e) => assert!(e.contains("context"), "{e}"),
            other => panic!("expected context error, got {other:?}"),
        }
    }
}
