//! Hand-written TAG pipelines over the LOTUS-style runtime (§4.2,
//! Appendix C).
//!
//! These pipelines "leverage expert knowledge of the table schema rather
//! than automatic query synthesis": exact computation (filters, sorts,
//! cuts) runs on the data system, semantic steps run as batched LM
//! operators. The method is now a *compiler*: the structured question
//! lowers to a [`SemNode`](tag_sql::SemNode) plan
//! ([`compile_nlq`](crate::semplan::compile_nlq)), the shared planner
//! applies the LM-call-minimizing rewrite rules (predicate pushdown, the
//! Appendix C distinct-value rewrite, early-stop pre-cut fusion), and the
//! plan executes through the common [`SemRuntime`](crate::semplan::SemRuntime).
//! The division of labour is the TAG thesis; the plan IR makes it
//! inspectable (`EXPLAIN SEMPLAN`) and optimizable.

use crate::answer::Answer;
use crate::env::TagEnv;
use crate::model::TagMethod;
use crate::semplan::{compile_nlq, run_semplan};
use tag_lm::nlq::NlQuery;
use tag_semops::DataFrame;

/// The hand-written TAG method. `answer` parses the canonical question;
/// [`HandWrittenTag::answer_structured`] takes the structured form
/// directly (how the benchmark harness calls it, mirroring the paper's
/// per-query expert pipelines).
#[derive(Debug, Clone, Copy, Default)]
pub struct HandWrittenTag;

impl HandWrittenTag {
    /// Run the expert pipeline for a structured query.
    pub fn answer_structured(&self, query: &NlQuery, env: &TagEnv) -> Answer {
        match self.run(query, env) {
            Ok(a) => a,
            Err(e) => Answer::Error(e),
        }
    }

    fn run(&self, query: &NlQuery, env: &TagEnv) -> Result<Answer, String> {
        let key = format!("nlq:{}", query.render());
        let frame = run_semplan(env, Some(&key), || compile_nlq(query))?;
        let df = DataFrame::new(frame.columns, frame.rows).map_err(|e| e.to_string())?;
        match query {
            NlQuery::Superlative { select_attr, .. }
            | NlQuery::List { select_attr, .. }
            | NlQuery::TopK { select_attr, .. }
            | NlQuery::SemanticRank { select_attr, .. } => {
                Ok(Answer::List(column_strings(&df, select_attr)?))
            }
            NlQuery::Count { .. } => Ok(Answer::List(vec![df.len().to_string()])),
            NlQuery::Summarize { .. } | NlQuery::ProvideInfo { .. } => {
                // The plan's Generate node produced a one-cell frame.
                let text = df
                    .rows()
                    .first()
                    .and_then(|r| r.first())
                    .map(|v| v.to_string())
                    .unwrap_or_default();
                Ok(Answer::Text(text))
            }
        }
    }
}

fn column_strings(df: &DataFrame, column: &str) -> Result<Vec<String>, String> {
    Ok(df
        .column(column)
        .map_err(|e| e.to_string())?
        .iter()
        .map(|v| v.to_string())
        .collect())
}

impl TagMethod for HandWrittenTag {
    fn name(&self) -> &'static str {
        "Hand-written TAG"
    }

    fn answer(&self, request: &str, env: &TagEnv) -> Answer {
        match NlQuery::parse(request) {
            Some(q) => self.answer_structured(&q, env),
            None => Answer::Error(format!("no hand-written pipeline for: {request}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tag_lm::sim::{SimConfig, SimLm};
    use tag_lm::KnowledgeConfig;
    use tag_sql::Database;

    fn env() -> TagEnv {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE schools (CDSCode INTEGER PRIMARY KEY, School TEXT, City TEXT, \
                                   Longitude REAL, GSoffered TEXT);
             INSERT INTO schools VALUES
               (1, 'Gunn High', 'Palo Alto', -122.1, 'K-12'),
               (2, 'Fresno High', 'Fresno', -119.8, '9-12'),
               (3, 'Lincoln High', 'San Jose', -121.9, '9-12'),
               (4, 'Mission High', 'Fresno', -119.7, 'K-8');",
        )
        .unwrap();
        db.execute_script(
            "CREATE TABLE posts (Id INTEGER, Title TEXT, ViewCount INTEGER);
             INSERT INTO posts VALUES
               (1, 'Bayesian kernel regression with regularization', 900),
               (2, 'My favorite lunch spots', 800),
               (3, 'Gradient boosting hyperparameter optimization', 700),
               (4, 'Pictures of my cat', 600),
               (5, 'Eigenvalue convergence of stochastic matrix estimators', 500),
               (6, 'Weekend hiking trip', 400);",
        )
        .unwrap();
        TagEnv::new(
            db,
            Arc::new(SimLm::new(SimConfig {
                knowledge: KnowledgeConfig {
                    coverage: 1.0,
                    enumeration_coverage: 1.0,
                    seed: 3,
                },
                judgment_noise: 0.0,
                ..SimConfig::default()
            })),
        )
    }

    #[test]
    fn knowledge_superlative_pipeline() {
        let env = env();
        let ans = HandWrittenTag.answer(
            "What is the GSoffered of the schools with the highest Longitude \
             among those located in the Silicon Valley region?",
            &env,
        );
        assert_eq!(ans, Answer::List(vec!["9-12".into()])); // San Jose
    }

    #[test]
    fn semantic_rank_pipeline() {
        let env = env();
        let ans = HandWrittenTag.answer(
            "Of the 5 posts with the highest ViewCount, list their Title in order \
             of most technical Title to least technical Title.",
            &env,
        );
        let list = ans.as_list().expect("list answer").to_vec();
        assert_eq!(list.len(), 5);
        // The three technical titles must precede the two casual ones.
        let pos = |t: &str| list.iter().position(|x| x.contains(t)).unwrap();
        assert!(pos("Bayesian") < pos("lunch"));
        assert!(pos("Gradient") < pos("cat"));
        assert!(pos("Eigenvalue") < pos("lunch"));
    }

    #[test]
    fn unique_value_membership_batches_distinct_only() {
        let env = env();
        env.reset_metrics();
        HandWrittenTag.answer(
            "How many schools located in the Silicon Valley region are there?",
            &env,
        );
        // 3 distinct cities -> 3 filter prompts, one batch.
        let stats = env.engine.stats();
        assert_eq!(stats.lm_prompts, 3, "{stats:?}");
        assert_eq!(stats.lm_batches, 1, "{stats:?}");
    }

    #[test]
    fn count_pipeline() {
        let env = env();
        let ans = HandWrittenTag.answer(
            "How many schools with Longitude under -120 and located in the \
             Silicon Valley region are there?",
            &env,
        );
        assert_eq!(ans, Answer::List(vec!["2".into()]));
    }

    #[test]
    fn unknown_question_is_an_error() {
        let env = env();
        assert!(HandWrittenTag.answer("What's up?", &env).is_error());
    }

    #[test]
    fn missing_table_is_an_error() {
        let env = env();
        let ans = HandWrittenTag.answer("How many dragons are there?", &env);
        assert!(ans.is_error());
    }

    #[test]
    fn optimizer_off_matches_optimizer_on() {
        let questions = [
            "What is the GSoffered of the schools with the highest Longitude \
             among those located in the Silicon Valley region?",
            "How many schools with Longitude under -120 and located in the \
             Silicon Valley region are there?",
            "Of the 5 posts with the highest ViewCount, list their Title in order \
             of most technical Title to least technical Title.",
        ];
        for q in questions {
            let on = env();
            on.set_sem_opt(tag_sql::SemOptOptions::all());
            let off = env();
            off.set_sem_opt(tag_sql::SemOptOptions::none());
            assert_eq!(
                HandWrittenTag.answer(q, &on),
                HandWrittenTag.answer(q, &off),
                "{q}"
            );
        }
    }
}
