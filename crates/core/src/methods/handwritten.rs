//! Hand-written TAG pipelines over the LOTUS-style runtime (§4.2,
//! Appendix C).
//!
//! These pipelines "leverage expert knowledge of the table schema rather
//! than automatic query synthesis": exact computation (filters, sorts,
//! cuts) runs on the data system, semantic steps run as batched LM
//! operators (`sem_filter` over *unique* values, `sem_topk`, generation
//! over the computed table). The division of labour is the TAG thesis.

use crate::answer::Answer;
use crate::env::TagEnv;
use crate::model::TagMethod;
use tag_lm::model::LmRequest;
use tag_lm::nlq::{CmpOp, NlFilter, NlQuery};
use tag_lm::prompts::{answer_free_prompt, SemClaim};
use tag_semops::{sem_filter, sem_topk, DataFrame, SemResult};
use tag_sql::Value;

/// The hand-written TAG method. `answer` parses the canonical question;
/// [`HandWrittenTag::answer_structured`] takes the structured form
/// directly (how the benchmark harness calls it, mirroring the paper's
/// per-query expert pipelines).
#[derive(Debug, Clone, Copy, Default)]
pub struct HandWrittenTag;

impl HandWrittenTag {
    /// Run the expert pipeline for a structured query.
    pub fn answer_structured(&self, query: &NlQuery, env: &TagEnv) -> Answer {
        match self.run(query, env) {
            Ok(a) => a,
            Err(e) => Answer::Error(e),
        }
    }

    fn run(&self, query: &NlQuery, env: &TagEnv) -> Result<Answer, String> {
        // exec starts from the entity's base table.
        let base = env
            .run_sql(&format!("SELECT * FROM {}", query.entity()))
            .map_err(|e| format!("base scan failed: {e}"))?;
        let mut df = DataFrame::from_result(base);

        // Apply every filter: relational ones on the data system,
        // knowledge/reasoning ones as semantic operators over the
        // *unique* values of the relevant column (Appendix C pattern).
        for f in query.filters() {
            df = apply_filter(env, &df, f).map_err(|e| e.to_string())?;
        }

        match query {
            NlQuery::Superlative {
                select_attr,
                rank_attr,
                highest,
                ..
            } => {
                let sorted = df
                    .sort_by(rank_attr, *highest)
                    .map_err(|e| e.to_string())?
                    .head(1);
                let values = column_strings(&sorted, select_attr)?;
                Ok(Answer::List(values))
            }
            NlQuery::Count { .. } => Ok(Answer::List(vec![df.len().to_string()])),
            NlQuery::List { select_attr, .. } => {
                Ok(Answer::List(column_strings(&df, select_attr)?))
            }
            NlQuery::TopK {
                select_attr,
                rank_attr,
                k,
                highest,
                ..
            } => {
                let cut = df
                    .sort_by(rank_attr, *highest)
                    .map_err(|e| e.to_string())?
                    .head(*k);
                Ok(Answer::List(column_strings(&cut, select_attr)?))
            }
            NlQuery::SemanticRank {
                select_attr,
                rank_attr,
                k,
                property,
                on_attr,
                ..
            } => {
                // Exact pre-cut on the data system, semantic ordering by
                // the LM (sem_topk in Appendix C).
                let cut = df
                    .sort_by(rank_attr, true)
                    .map_err(|e| e.to_string())?
                    .head(*k);
                let ranked = sem_topk(&env.engine, &cut, on_attr, *property, *k)
                    .map_err(|e| e.to_string())?;
                Ok(Answer::List(column_strings(&ranked, select_attr)?))
            }
            NlQuery::Summarize { .. } | NlQuery::ProvideInfo { .. } => {
                // gen(R, T): the computed table goes to the LM in one call
                // when it fits the context; otherwise it folds
                // hierarchically through sem_agg. The threshold is in
                // tokens, not rows — wide rows fill a window quickly.
                let request = query.render();
                let points = df.to_data_points();
                let prompt = answer_free_prompt(&request, &points);
                let budget = env.lm.context_window().saturating_sub(512);
                if tag_lm::tokenizer::count_tokens(&prompt) <= budget {
                    let _span = tag_trace::span(tag_trace::Stage::Gen, "answer");
                    let resp = env
                        .generate(&LmRequest::new(prompt))
                        .map_err(|e| e.to_string())?;
                    Ok(Answer::Text(resp.text))
                } else {
                    let summary =
                        tag_semops::sem_agg(&env.engine, &df, &request, None)
                            .map_err(|e| e.to_string())?;
                    Ok(Answer::Text(summary))
                }
            }
        }
    }
}

fn column_strings(df: &DataFrame, column: &str) -> Result<Vec<String>, String> {
    Ok(df
        .column(column)
        .map_err(|e| e.to_string())?
        .iter()
        .map(|v| v.to_string())
        .collect())
}

/// Find the first existing column among candidates.
fn existing_column(df: &DataFrame, candidates: &[&str]) -> Result<String, String> {
    for c in candidates {
        if df.column_index(c).is_ok() {
            return Ok((*c).to_owned());
        }
    }
    Err(format!(
        "pipeline expects one of the columns {candidates:?}, frame has {:?}",
        df.columns()
    ))
}

/// Apply one question filter to the frame, choosing exact computation or
/// a semantic operator as appropriate.
fn apply_filter(env: &TagEnv, df: &DataFrame, f: &NlFilter) -> SemResult<DataFrame> {
    match f {
        NlFilter::NumCmp { attr, op, value } => {
            let res = df.filter_col(attr, |v| match v.as_f64() {
                Some(x) => match op {
                    CmpOp::Over => x > *value,
                    CmpOp::Under => x < *value,
                },
                None => false,
            })?;
            Ok(res)
        }
        NlFilter::TextEq { attr, value } => {
            let as_num: Option<f64> = value.trim().parse().ok();
            Ok(df.filter_col(attr, |v| match (v.as_str(), v.as_f64(), as_num) {
                (Some(s), _, _) => s.eq_ignore_ascii_case(value),
                (None, Some(x), Some(y)) => x == y,
                _ => false,
            })?)
        }
        NlFilter::AtCircuit { circuit } => {
            let col = existing_column(df, &["Circuit", "circuit", "CircuitName"])
                .map_err(frame_err)?;
            Ok(df.filter_col(&col, |v| {
                v.as_str()
                    .map(|s| s.eq_ignore_ascii_case(circuit))
                    .unwrap_or(false)
            })?)
        }
        NlFilter::InRegion { region } => semantic_membership(
            env,
            df,
            &["City", "city"],
            &SemClaim::CityInRegion {
                region: region.clone(),
            },
        ),
        NlFilter::TallerThan { person } => semantic_membership(
            env,
            df,
            &["height", "Height"],
            &SemClaim::HeightTallerThan {
                person: person.clone(),
            },
        ),
        NlFilter::EuCountry => {
            semantic_membership(env, df, &["Country", "country"], &SemClaim::EuCountry)
        }
        NlFilter::CircuitContinent { continent } => semantic_membership(
            env,
            df,
            &["Circuit", "circuit"],
            &SemClaim::CircuitInContinent {
                continent: continent.clone(),
            },
        ),
        NlFilter::ClassicMovie => semantic_membership(
            env,
            df,
            &["movie_title", "title", "Title"],
            &SemClaim::ClassicMovie,
        ),
        NlFilter::VerticalIs { vertical } => semantic_membership(
            env,
            df,
            &["account_name", "Company", "company"],
            &SemClaim::CompanyInVertical {
                vertical: vertical.clone(),
            },
        ),
        NlFilter::Semantic { attr, property } => {
            // Direct row-wise semantic filter (reviews, comments, ...).
            sem_filter(&env.engine, df, attr, &SemClaim::Property(*property))
        }
    }
}

fn frame_err(msg: String) -> tag_semops::SemError {
    tag_semops::SemError::Frame(tag_sql::SqlError::Binding(msg))
}

/// The Appendix C pattern: sem_filter over the *unique* values of a
/// column, then an exact `isin` back on the full frame. This keeps the
/// LM batch small (distinct values, not rows).
fn semantic_membership(
    env: &TagEnv,
    df: &DataFrame,
    column_candidates: &[&str],
    claim: &SemClaim,
) -> SemResult<DataFrame> {
    let col = existing_column(df, column_candidates).map_err(frame_err)?;
    let unique_values = df.unique(&col)?;
    let unique_df = DataFrame::new(
        vec![col.clone()],
        unique_values.iter().map(|v| vec![v.clone()]).collect(),
    )?;
    let kept = sem_filter(&env.engine, &unique_df, &col, claim)?;
    let kept_values: Vec<Value> = kept.column(&col)?;
    Ok(df.is_in(&col, &kept_values)?)
}

impl TagMethod for HandWrittenTag {
    fn name(&self) -> &'static str {
        "Hand-written TAG"
    }

    fn answer(&self, request: &str, env: &TagEnv) -> Answer {
        match NlQuery::parse(request) {
            Some(q) => self.answer_structured(&q, env),
            None => Answer::Error(format!("no hand-written pipeline for: {request}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tag_lm::sim::{SimConfig, SimLm};
    use tag_lm::KnowledgeConfig;
    use tag_sql::Database;

    fn env() -> TagEnv {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE schools (CDSCode INTEGER PRIMARY KEY, School TEXT, City TEXT, \
                                   Longitude REAL, GSoffered TEXT);
             INSERT INTO schools VALUES
               (1, 'Gunn High', 'Palo Alto', -122.1, 'K-12'),
               (2, 'Fresno High', 'Fresno', -119.8, '9-12'),
               (3, 'Lincoln High', 'San Jose', -121.9, '9-12'),
               (4, 'Mission High', 'Fresno', -119.7, 'K-8');",
        )
        .unwrap();
        db.execute_script(
            "CREATE TABLE posts (Id INTEGER, Title TEXT, ViewCount INTEGER);
             INSERT INTO posts VALUES
               (1, 'Bayesian kernel regression with regularization', 900),
               (2, 'My favorite lunch spots', 800),
               (3, 'Gradient boosting hyperparameter optimization', 700),
               (4, 'Pictures of my cat', 600),
               (5, 'Eigenvalue convergence of stochastic matrix estimators', 500),
               (6, 'Weekend hiking trip', 400);",
        )
        .unwrap();
        TagEnv::new(
            db,
            Arc::new(SimLm::new(SimConfig {
                knowledge: KnowledgeConfig {
                    coverage: 1.0,
                    enumeration_coverage: 1.0,
                    seed: 3,
                },
                judgment_noise: 0.0,
                ..SimConfig::default()
            })),
        )
    }

    #[test]
    fn knowledge_superlative_pipeline() {
        let env = env();
        let ans = HandWrittenTag.answer(
            "What is the GSoffered of the schools with the highest Longitude \
             among those located in the Silicon Valley region?",
            &env,
        );
        assert_eq!(ans, Answer::List(vec!["9-12".into()])); // San Jose
    }

    #[test]
    fn semantic_rank_pipeline() {
        let env = env();
        let ans = HandWrittenTag.answer(
            "Of the 5 posts with the highest ViewCount, list their Title in order \
             of most technical Title to least technical Title.",
            &env,
        );
        let list = ans.as_list().expect("list answer").to_vec();
        assert_eq!(list.len(), 5);
        // The three technical titles must precede the two casual ones.
        let pos = |t: &str| list.iter().position(|x| x.contains(t)).unwrap();
        assert!(pos("Bayesian") < pos("lunch"));
        assert!(pos("Gradient") < pos("cat"));
        assert!(pos("Eigenvalue") < pos("lunch"));
    }

    #[test]
    fn unique_value_membership_batches_distinct_only() {
        let env = env();
        env.reset_metrics();
        HandWrittenTag.answer(
            "How many schools located in the Silicon Valley region are there?",
            &env,
        );
        // 3 distinct cities -> 3 filter prompts, one batch.
        let stats = env.engine.stats();
        assert_eq!(stats.lm_prompts, 3, "{stats:?}");
        assert_eq!(stats.lm_batches, 1, "{stats:?}");
    }

    #[test]
    fn count_pipeline() {
        let env = env();
        let ans = HandWrittenTag.answer(
            "How many schools with Longitude under -120 and located in the \
             Silicon Valley region are there?",
            &env,
        );
        assert_eq!(ans, Answer::List(vec!["2".into()]));
    }

    #[test]
    fn unknown_question_is_an_error() {
        let env = env();
        assert!(HandWrittenTag.answer("What's up?", &env).is_error());
    }

    #[test]
    fn missing_table_is_an_error() {
        let env = env();
        let ans = HandWrittenTag.answer("How many dragons are there?", &env);
        assert!(ans.is_error());
    }
}
