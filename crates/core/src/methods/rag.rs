//! The RAG baseline (§4.2): row-level embedding retrieval + one LM call.

use crate::answer::Answer;
use crate::env::TagEnv;
use crate::methods::gen_frame_to_answer;
use crate::model::TagMethod;
use crate::semplan::{compile_rag, run_semplan};

/// Row-level RAG: embed the question, retrieve `k` rows from the FAISS
/// stand-in, feed them in context to a single LM generation.
#[derive(Debug, Clone, Copy)]
pub struct Rag {
    /// Rows retrieved per query (paper: 10).
    pub k: usize,
    /// Use the list-answer prompt (false for aggregation queries, which
    /// use the free-form prompt, per Appendix B.2).
    pub list_format: bool,
}

impl Default for Rag {
    fn default() -> Self {
        Rag {
            k: 10,
            list_format: true,
        }
    }
}

impl Rag {
    /// RAG with the free-form aggregation prompt.
    pub fn aggregation() -> Self {
        Rag {
            k: 10,
            list_format: false,
        }
    }
}

impl TagMethod for Rag {
    fn name(&self) -> &'static str {
        "RAG"
    }

    fn answer(&self, request: &str, env: &TagEnv) -> Answer {
        // retrieve -> generate as a semantic plan through the shared
        // planner (cacheable, explainable, profiled under tracing).
        let key = format!("rag:k={}:list={}:{request}", self.k, self.list_format);
        match run_semplan(env, Some(&key), || {
            compile_rag(request, self.k, self.list_format)
        }) {
            Ok(frame) => gen_frame_to_answer(&frame, self.list_format),
            Err(e) => Answer::Error(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tag_lm::sim::{SimConfig, SimLm};
    use tag_sql::Database;

    fn env() -> TagEnv {
        let mut db = Database::new();
        db.execute("CREATE TABLE races (year INTEGER, name TEXT, Circuit TEXT)")
            .unwrap();
        for y in 1999..=2017 {
            db.execute(&format!(
                "INSERT INTO races VALUES ({y}, '{y} Malaysian Grand Prix', \
                 'Sepang International Circuit')"
            ))
            .unwrap();
        }
        for y in 2000..=2017 {
            db.execute(&format!(
                "INSERT INTO races VALUES ({y}, '{y} Italian Grand Prix', \
                 'Autodromo Nazionale di Monza')"
            ))
            .unwrap();
        }
        TagEnv::new(db, Arc::new(SimLm::new(SimConfig::default())))
    }

    #[test]
    fn rag_count_is_capped_by_k() {
        let env = env();
        // Ground truth is 19, but only 10 rows fit in the retrieval.
        let ans = Rag::default().answer(
            "How many races held on Sepang International Circuit are there?",
            &env,
        );
        match ans {
            Answer::List(v) => {
                let n: i64 = v[0].parse().unwrap();
                assert!(n <= 10, "RAG cannot count past its retrieval, got {n}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rag_aggregation_is_incomplete() {
        let env = env();
        let ans = Rag::aggregation().answer(
            "Provide information about the races held on Sepang International Circuit.",
            &env,
        );
        let text = ans.as_text().expect("free-form answer");
        // Figure 2: the RAG answer misses most years.
        let covered = (1999..=2017)
            .filter(|y| text.contains(&y.to_string()))
            .count();
        assert!(covered < 19, "covered {covered} years: {text}");
    }
}
