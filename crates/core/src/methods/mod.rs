//! The five methods evaluated in §4: vanilla Text2SQL, RAG,
//! Retrieval + LM Rank, Text2SQL + LM, and hand-written TAG.

mod handwritten;
mod rag;
mod rerank;
mod text2sql;
mod text2sql_lm;

pub use handwritten::HandWrittenTag;
pub use rag::Rag;
pub use rerank::RetrievalLmRank;
pub use text2sql::Text2Sql;
pub use text2sql_lm::Text2SqlLm;

use crate::answer::Answer;
use tag_sql::ResultSet;

/// Flatten a SQL result into the benchmark's list-of-values answer
/// format (row-major cell order).
pub(crate) fn result_to_answer(rs: &ResultSet) -> Answer {
    let values: Vec<String> = rs
        .rows
        .iter()
        .flat_map(|r| r.iter().map(|v| v.to_string()))
        .collect();
    Answer::List(values)
}

/// Interpret the one-cell frame a SemPlan `Generate` node produces.
pub(crate) fn gen_frame_to_answer(frame: &tag_sql::SemFrame, list_format: bool) -> Answer {
    let text = frame
        .rows
        .first()
        .and_then(|r| r.first())
        .map(|v| v.to_string())
        .unwrap_or_default();
    response_to_answer(&text, list_format)
}

/// Interpret an LM answer-generation response: list answers parse into
/// `Answer::List`, anything else is free text.
pub(crate) fn response_to_answer(text: &str, list_format: bool) -> Answer {
    if list_format {
        match tag_lm::prompts::parse_answer_list(text) {
            Some(values) => Answer::List(values),
            None => Answer::Text(text.to_owned()),
        }
    } else {
        Answer::Text(text.to_owned())
    }
}
