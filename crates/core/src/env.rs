//! The shared execution environment for all TAG methods.

use std::sync::{Arc, OnceLock, RwLock};
use tag_embed::{Embedder, RowStore};
use tag_lm::model::LanguageModel;
use tag_lm::nlq::NlQuery;
use tag_semops::SemEngine;
use tag_sql::{Database, SemOptOptions};

/// Everything a method needs to answer a question over one domain
/// database: the SQL engine, the language model (behind the batched
/// semantic engine), and a lazily built row-level vector store.
///
/// `TagEnv` is `Send + Sync`: every method runs under `&TagEnv`, so one
/// environment per domain can be shared across serving threads behind an
/// `Arc`. Lazily built state (the row store, the rendered schema prompt)
/// lives behind [`OnceLock`]s.
pub struct TagEnv {
    /// The domain database (the paper's SQLite instance).
    pub db: Database,
    /// The language model.
    pub lm: Arc<dyn LanguageModel>,
    /// Batched + cached LM executor.
    pub engine: SemEngine,
    embedder: Embedder,
    store: OnceLock<RowStore>,
    schema: OnceLock<String>,
    sem_opt: Arc<RwLock<SemOptOptions>>,
}

impl TagEnv {
    /// Build an environment over a loaded database.
    pub fn new(db: Database, lm: Arc<dyn LanguageModel>) -> Self {
        let engine = SemEngine::new(Arc::clone(&lm));
        let sem_opt = Arc::new(RwLock::new(SemOptOptions::default()));
        // `EXPLAIN SEMPLAN <question>` renders the plan a canonical
        // question would execute, under the rules active right now.
        let explainer_opts = Arc::clone(&sem_opt);
        db.set_semplan_explainer(Arc::new(move |question: &str| {
            let q = NlQuery::parse(question).ok_or_else(|| {
                format!("no semantic plan for: {question} (not a canonical TAG-Bench question)")
            })?;
            let opts = *explainer_opts.read().unwrap_or_else(|e| e.into_inner());
            let plan = tag_sql::optimize_sem(crate::semplan::compile_nlq(&q), &opts);
            Ok(plan.explain())
        }));
        // `EXPLAIN VERIFY <question>` runs the static checker over that
        // plan: well-formedness against the live catalog, rewrite
        // pre/postconditions, and the LM-call upper bound.
        let verifier_opts = Arc::clone(&sem_opt);
        db.set_semplan_verifier(Arc::new(move |db: &Database, question: &str| {
            let q = NlQuery::parse(question).ok_or_else(|| {
                format!("no semantic plan for: {question} (not a canonical TAG-Bench question)")
            })?;
            let opts = *verifier_opts.read().unwrap_or_else(|e| e.into_inner());
            let naive = crate::semplan::compile_nlq(&q);
            let optimized = tag_sql::optimize_sem(naive.clone(), &opts);
            Ok(tag_analyze::verify_report_text(
                &naive, &optimized, &opts, db,
            ))
        }));
        TagEnv {
            db,
            lm,
            engine,
            embedder: Embedder::default(),
            store: OnceLock::new(),
            schema: OnceLock::new(),
            sem_opt,
        }
    }

    /// The SemPlan rewrite rules currently applied before execution.
    pub fn sem_opt(&self) -> SemOptOptions {
        *self.sem_opt.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Switch the SemPlan rewrite rules (ablations, the semplan-smoke
    /// replay). Takes effect for subsequent plans; cached plans keyed
    /// under other rule sets are not reused.
    pub fn set_sem_opt(&self, opts: SemOptOptions) {
        *self.sem_opt.write().unwrap_or_else(|e| e.into_inner()) = opts;
    }

    /// Override the semantic engine (e.g. for batch-size ablations).
    pub fn with_engine(mut self, engine: SemEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Render the catalog as BIRD-style `CREATE TABLE` text for Text2SQL
    /// prompts, followed by three example rows per table (the common
    /// augmentation of the BIRD prompt format — it is where most of the
    /// prompt's tokens go, exactly as with the real benchmark's wide
    /// schemas).
    ///
    /// The rendering is memoized: the catalog is immutable once a domain
    /// is loaded, and re-rendering it dominated Text2SQL request setup.
    pub fn schema_prompt(&self) -> &str {
        self.schema.get_or_init(|| self.render_schema_prompt())
    }

    fn render_schema_prompt(&self) -> String {
        let mut out = String::new();
        for name in self.db.catalog().table_names() {
            let table = self.db.catalog().table(&name).expect("listed table");
            out.push_str(&format!("CREATE TABLE {name}\n(\n"));
            let cols: Vec<String> = table
                .schema()
                .columns()
                .iter()
                .map(|c| {
                    let quoted = if c.name.contains(' ') {
                        format!("\"{}\"", c.name)
                    } else {
                        c.name.clone()
                    };
                    let constraint = if c.primary_key {
                        " not null primary key"
                    } else if c.not_null {
                        " not null"
                    } else {
                        " null"
                    };
                    format!("{quoted} {}{}", c.dtype, constraint)
                })
                .collect();
            out.push_str(&cols.join(",\n"));
            out.push_str("\n)\n");
            let names = table.schema().names();
            if !table.is_empty() {
                out.push_str("-- 3 example rows:\n");
                for row in table.rows().iter().take(3) {
                    let cells: Vec<String> = names
                        .iter()
                        .zip(row)
                        .map(|(c, v)| format!("{c}={v}"))
                        .collect();
                    out.push_str(&format!("-- {}\n", cells.join(", ")));
                }
            }
            out.push('\n');
        }
        out
    }

    /// The row-level vector store over every table's rows, built on first
    /// use (the RAG baseline's FAISS index). Safe under concurrent first
    /// use: `OnceLock` guarantees a single build wins.
    pub fn row_store(&self) -> &RowStore {
        self.store.get_or_init(|| {
            let mut store = RowStore::new(self.embedder.clone());
            for name in self.db.catalog().table_names() {
                let table = self.db.catalog().table(&name).expect("listed table");
                let cols = table.schema().names();
                for row in table.rows() {
                    let stored: Vec<(String, String)> = cols
                        .iter()
                        .cloned()
                        .zip(row.iter().map(|v| v.to_string()))
                        .collect();
                    store.add_row(stored);
                }
            }
            store
        })
    }

    /// The row store only if some caller already built it. Metrics
    /// collectors scrape through this so an idle domain's scrape never
    /// pays the embedding-index build.
    pub fn row_store_if_built(&self) -> Option<&RowStore> {
        self.store.get()
    }

    /// Run a read-only SQL statement through the domain database.
    ///
    /// When a [`tag_trace::Trace`] is active on this thread, the statement
    /// runs inside an `exec`-stage span annotated with the SQL text, an
    /// `EXPLAIN ANALYZE`-style per-operator breakdown (rows in/out +
    /// elapsed per plan node), and a `plan_cache: hit|miss` line. When
    /// tracing is off this is exactly [`Database::query`] — both paths
    /// execute the same operator code and share the engine's plan cache,
    /// so results are byte-identical either way.
    pub fn run_sql(&self, sql: &str) -> tag_sql::SqlResult<tag_sql::ResultSet> {
        if !tag_trace::is_active() {
            return self.db.query(sql);
        }
        let _span = tag_trace::span(tag_trace::Stage::Exec, "sql");
        tag_trace::annotate(format!(
            "sql: {}",
            sql.split_whitespace().collect::<Vec<_>>().join(" ")
        ));
        match self.db.query_profiled(sql) {
            Ok((rs, plan_text)) => {
                for line in plan_text.lines() {
                    tag_trace::annotate(line);
                }
                Ok(rs)
            }
            Err(e) => {
                tag_trace::annotate(format!("error: {e}"));
                Err(e)
            }
        }
    }

    /// Call the language model directly (the `gen` step), attributing the
    /// call's cost — virtual seconds, batch rounds, and token counts — to
    /// the innermost active trace span. A no-op wrapper around
    /// [`LanguageModel::generate`] when tracing is off.
    pub fn generate(
        &self,
        request: &tag_lm::model::LmRequest,
    ) -> tag_lm::model::LmResult<tag_lm::model::LmResponse> {
        if !tag_trace::is_active() {
            return self.lm.generate(request);
        }
        let (sec0, rounds0, calls0) = self.lm.usage();
        let result = self.lm.generate(request);
        let (sec1, rounds1, calls1) = self.lm.usage();
        let mut usage = tag_trace::LmUsage {
            calls: calls1.saturating_sub(calls0),
            rounds: rounds1.saturating_sub(rounds0),
            virtual_seconds: (sec1 - sec0).max(0.0),
            ..Default::default()
        };
        if let Ok(resp) = &result {
            usage.prompt_tokens = resp.prompt_tokens as u64;
            usage.completion_tokens = resp.completion_tokens as u64;
        }
        tag_trace::record_lm(usage);
        result
    }

    /// Reset all metrics (LM clock, engine cache/stats) between queries.
    pub fn reset_metrics(&self) {
        self.lm.reset_metrics();
        self.engine.reset();
    }

    /// Simulated seconds of LM time since the last reset.
    pub fn elapsed_seconds(&self) -> f64 {
        self.lm.elapsed_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tag_lm::sim::{SimConfig, SimLm};

    fn env() -> TagEnv {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE schools (CDSCode INTEGER PRIMARY KEY, School TEXT, City TEXT);
             INSERT INTO schools VALUES (1, 'Gunn High', 'Palo Alto'), (2, 'Fresno High', 'Fresno');",
        )
        .unwrap();
        TagEnv::new(db, Arc::new(SimLm::new(SimConfig::default())))
    }

    #[test]
    fn schema_prompt_renders_create_tables() {
        let e = env();
        let p = e.schema_prompt();
        assert!(p.contains("CREATE TABLE schools"));
        assert!(p.contains("CDSCode INTEGER not null primary key"));
        assert!(p.contains("City TEXT null"));
    }

    #[test]
    fn explain_verify_reports_through_registered_hook() {
        let e = env();
        let rs =
            e.db.query("EXPLAIN VERIFY How many schools are there?")
                .unwrap();
        assert_eq!(rs.columns, vec!["plan"]);
        let lines: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(lines[0], "verify: ok", "{lines:?}");
        assert!(
            lines.iter().any(|l| l.starts_with("rewrite: ok")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.starts_with("lm_call_bound: ")),
            "{lines:?}"
        );
        // The annotated plan itself follows the report header, with
        // per-node cardinality and LM-call annotations.
        assert!(
            lines
                .iter()
                .any(|l| l.contains("Scan schools") && l.contains("rows<=")),
            "{lines:?}"
        );
        // Non-canonical questions fail the same way EXPLAIN SEMPLAN does.
        let err = e.db.query("EXPLAIN VERIFY gibberish").unwrap_err();
        assert!(err.message().contains("no semantic plan"), "{err:?}");
    }

    #[test]
    fn env_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TagEnv>();
    }

    #[test]
    fn row_store_covers_all_rows() {
        let e = env();
        assert_eq!(e.row_store().len(), 2);
        let hits = e.row_store().retrieve("Gunn High school", 1);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].0.iter().any(|(_, v)| v == "Gunn High"));
    }

    #[test]
    fn run_sql_traced_matches_untraced_and_annotates_plan() {
        let e = env();
        let sql = "SELECT School FROM schools WHERE City = 'Fresno'";
        let plain = e.run_sql(sql).unwrap();

        let (trace, sink) = tag_trace::Trace::memory();
        let traced = tag_trace::with_trace(&trace, || e.run_sql(sql).unwrap());
        assert_eq!(plain.rows, traced.rows);
        assert_eq!(plain.columns, traced.columns);

        let spans = sink.take();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, tag_trace::Stage::Exec);
        assert!(spans[0].annotations.iter().any(|a| a.starts_with("sql: ")));
        assert!(
            spans[0].annotations.iter().any(|a| a.contains("out=")),
            "{:?}",
            spans[0].annotations
        );
        // The untraced run above planned this statement already, so the
        // traced run reports a plan-cache hit.
        assert!(
            spans[0].annotations.iter().any(|a| a == "plan_cache: hit"),
            "{:?}",
            spans[0].annotations
        );
    }

    #[test]
    fn run_sql_annotates_plan_cache_miss_on_first_plan() {
        let e = env();
        let (trace, sink) = tag_trace::Trace::memory();
        tag_trace::with_trace(&trace, || {
            e.run_sql("SELECT City FROM schools ORDER BY City").unwrap()
        });
        let spans = sink.take();
        assert!(
            spans[0].annotations.iter().any(|a| a == "plan_cache: miss"),
            "{:?}",
            spans[0].annotations
        );
    }

    #[test]
    fn generate_attributes_usage_to_span() {
        let e = env();
        let (trace, sink) = tag_trace::Trace::memory();
        tag_trace::with_trace(&trace, || {
            let _span = tag_trace::span(tag_trace::Stage::Gen, "answer");
            e.generate(&tag_lm::model::LmRequest::new("say hello to the world"))
                .unwrap();
        });
        let spans = sink.take();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].lm.calls, 1);
        assert_eq!(spans[0].lm.rounds, 1);
        assert!(spans[0].lm.virtual_seconds > 0.0);
        assert!(spans[0].lm.prompt_tokens > 0);
    }

    #[test]
    fn metrics_reset() {
        let e = env();
        e.engine.complete("hello world prompt").unwrap();
        assert!(e.elapsed_seconds() > 0.0);
        e.reset_metrics();
        assert_eq!(e.elapsed_seconds(), 0.0);
    }
}
