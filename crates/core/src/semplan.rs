//! The NlQuery → SemPlan compiler and the semantic-plan runtime.
//!
//! This is the unification layer of the refactor: every TAG method that
//! used to hand-roll its retrieval/filter/generation sequence now
//! *compiles* to a [`SemNode`] tree (defined data-only in `tag-sql`, so
//! plans cache, EXPLAIN, and optimize like relational plans) and executes
//! through one shared runtime, [`SemRuntime`], which delegates semantic
//! operators to `tag-semops` and exact operators to the frame kernels.
//!
//! The compilers are intentionally *naive*: filters compile in question
//! order, semantic filters judge row-wise, and exact cuts stay above
//! semantic operators. All LM-call minimization — predicate pushdown,
//! the distinct-value rewrite, early-stop pre-cut fusion — lives in
//! `tag_sql::semopt` rewrite rules, applied per the environment's
//! [`SemOptOptions`](tag_sql::SemOptOptions) before execution. With
//! every rule disabled the plans reproduce the pre-refactor pipelines
//! byte-for-byte; with rules enabled the answers are unchanged (the
//! simulated LM's judgments are per-prompt deterministic) but the model
//! sees strictly fewer prompts.

use crate::env::TagEnv;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use tag_lm::model::LmRequest;
use tag_lm::nlq::{CmpOp, NlFilter, NlQuery, SemProperty};
use tag_lm::prompts::{
    answer_free_prompt, answer_list_prompt, relevance_prompt, sem_filter_prompt, SemClaim,
};
use tag_semops::{sem_agg, sem_filter, sem_join, sem_map, sem_topk, DataFrame, SemError};
use tag_sql::plan::Plan;
use tag_sql::{
    execute_sem, execute_sem_profiled, optimize_sem, CutSpec, GenFormat, LmCost, PlanProfiler,
    RetrieveKind, SemClaimSpec, SemDelegate, SemFrame, SemNode, SemPredicate, Value,
};

/// Unit separator between the column and value of one encoded pair.
const PAIR_SEP: char = '\u{1f}';
/// Record separator between encoded pairs of one retrieved point.
const POINT_SEP: char = '\u{1e}';
/// Column name of frames that carry heterogeneous retrieved points.
const POINT_COLUMN: &str = "__point";

/// The property vocabulary shared with `tag_lm::nlq::SemProperty`
/// (`SemNode` carries the word, not the enum, to stay LM-crate-free).
fn property_word(p: SemProperty) -> &'static str {
    match p {
        SemProperty::Positive => "positive",
        SemProperty::Negative => "negative",
        SemProperty::Sarcastic => "sarcastic",
        SemProperty::Technical => "technical",
    }
}

fn property_from_word(w: &str) -> Option<SemProperty> {
    match w {
        "positive" => Some(SemProperty::Positive),
        "negative" => Some(SemProperty::Negative),
        "sarcastic" => Some(SemProperty::Sarcastic),
        "technical" => Some(SemProperty::Technical),
        _ => None,
    }
}

/// Lower a structural claim back to the prompt-level claim it mirrors.
fn spec_to_claim(spec: &SemClaimSpec) -> Result<SemClaim, String> {
    Ok(match spec {
        SemClaimSpec::CityInRegion { region } => SemClaim::CityInRegion {
            region: region.clone(),
        },
        SemClaimSpec::ClassicMovie => SemClaim::ClassicMovie,
        SemClaimSpec::EuCountry => SemClaim::EuCountry,
        SemClaimSpec::CircuitInContinent { continent } => SemClaim::CircuitInContinent {
            continent: continent.clone(),
        },
        SemClaimSpec::CompanyInVertical { vertical } => SemClaim::CompanyInVertical {
            vertical: vertical.clone(),
        },
        SemClaimSpec::HeightTallerThan { person } => SemClaim::HeightTallerThan {
            person: person.clone(),
        },
        SemClaimSpec::Property { word } => SemClaim::Property(
            property_from_word(word).ok_or_else(|| format!("unknown semantic property: {word}"))?,
        ),
    })
}

/// Compile a structured TAG-Bench question into a semantic plan: a base
/// scan, the filters in question order, and the shape's head operator.
pub fn compile_nlq(q: &NlQuery) -> SemNode {
    let mut node = SemNode::Scan {
        table: q.entity().to_owned(),
    };
    for f in q.filters() {
        node = compile_filter(node, f);
    }
    match q {
        NlQuery::Superlative {
            rank_attr, highest, ..
        } => SemNode::Cut {
            input: Box::new(node),
            cut: CutSpec {
                sort_by: rank_attr.clone(),
                descending: *highest,
                k: 1,
            },
        },
        NlQuery::Count { .. } | NlQuery::List { .. } => node,
        NlQuery::TopK {
            rank_attr,
            k,
            highest,
            ..
        } => SemNode::Cut {
            input: Box::new(node),
            cut: CutSpec {
                sort_by: rank_attr.clone(),
                descending: *highest,
                k: *k,
            },
        },
        NlQuery::SemanticRank {
            rank_attr,
            k,
            property,
            on_attr,
            ..
        } => SemNode::SemTopK {
            input: Box::new(SemNode::Cut {
                input: Box::new(node),
                cut: CutSpec {
                    sort_by: rank_attr.clone(),
                    descending: true,
                    k: *k,
                },
            }),
            on_attr: on_attr.clone(),
            property: property_word(*property).to_owned(),
            k: *k,
        },
        NlQuery::Summarize { .. } | NlQuery::ProvideInfo { .. } => SemNode::Generate {
            input: Box::new(node),
            request: q.render(),
            format: GenFormat::FreeOrAgg,
            span_name: "answer".to_owned(),
        },
    }
}

/// One question filter as a plan node over `input`. The column-candidate
/// lists are the expert pipelines' schema knowledge, unchanged.
fn compile_filter(input: SemNode, f: &NlFilter) -> SemNode {
    let sem = |input: SemNode, columns: &[&str], claim: SemClaimSpec| SemNode::SemFilter {
        input: Box::new(input),
        columns: columns.iter().map(|c| (*c).to_owned()).collect(),
        resolve: true,
        claim,
        distinct: false,
        early_stop: None,
    };
    match f {
        NlFilter::NumCmp { attr, op, value } => SemNode::Predicate {
            input: Box::new(input),
            pred: SemPredicate::NumCmp {
                attr: attr.clone(),
                over: *op == CmpOp::Over,
                value: *value,
            },
        },
        NlFilter::TextEq { attr, value } => SemNode::Predicate {
            input: Box::new(input),
            pred: SemPredicate::TextEq {
                attr: attr.clone(),
                value: value.clone(),
            },
        },
        NlFilter::AtCircuit { circuit } => SemNode::Predicate {
            input: Box::new(input),
            pred: SemPredicate::TextEqAny {
                columns: vec!["Circuit".into(), "circuit".into(), "CircuitName".into()],
                value: circuit.clone(),
            },
        },
        NlFilter::InRegion { region } => sem(
            input,
            &["City", "city"],
            SemClaimSpec::CityInRegion {
                region: region.clone(),
            },
        ),
        NlFilter::TallerThan { person } => sem(
            input,
            &["height", "Height"],
            SemClaimSpec::HeightTallerThan {
                person: person.clone(),
            },
        ),
        NlFilter::EuCountry => sem(input, &["Country", "country"], SemClaimSpec::EuCountry),
        NlFilter::CircuitContinent { continent } => sem(
            input,
            &["Circuit", "circuit"],
            SemClaimSpec::CircuitInContinent {
                continent: continent.clone(),
            },
        ),
        NlFilter::ClassicMovie => sem(
            input,
            &["movie_title", "title", "Title"],
            SemClaimSpec::ClassicMovie,
        ),
        NlFilter::VerticalIs { vertical } => sem(
            input,
            &["account_name", "Company", "company"],
            SemClaimSpec::CompanyInVertical {
                vertical: vertical.clone(),
            },
        ),
        NlFilter::Semantic { attr, property } => SemNode::SemFilter {
            input: Box::new(input),
            columns: vec![attr.clone()],
            resolve: false,
            claim: SemClaimSpec::Property {
                word: property_word(*property).to_owned(),
            },
            distinct: false,
            early_stop: None,
        },
    }
}

/// Compile the RAG baseline: retrieval straight into generation.
pub fn compile_rag(request: &str, k: usize, list_format: bool) -> SemNode {
    SemNode::Generate {
        input: Box::new(SemNode::Retrieve {
            query: request.to_owned(),
            k,
            kind: RetrieveKind::Rows,
        }),
        request: request.to_owned(),
        format: gen_format(list_format),
        span_name: "answer".to_owned(),
    }
}

/// Compile the Retrieval + LM Rank baseline: candidate pool, LM rerank,
/// generation.
pub fn compile_rerank(request: &str, pool: usize, keep: usize, list_format: bool) -> SemNode {
    SemNode::Generate {
        input: Box::new(SemNode::Rerank {
            input: Box::new(SemNode::Retrieve {
                query: request.to_owned(),
                k: pool,
                kind: RetrieveKind::Candidates,
            }),
            query: request.to_owned(),
            keep,
        }),
        request: request.to_owned(),
        format: gen_format(list_format),
        span_name: "answer".to_owned(),
    }
}

/// Compile the generation stage of Text2SQL + LM: the rows the
/// LM-written SQL retrieved, fed to one generation call.
pub fn compile_generate_over(
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
    request: &str,
    list_format: bool,
    span_name: &str,
) -> SemNode {
    SemNode::Generate {
        input: Box::new(SemNode::Input { columns, rows }),
        request: request.to_owned(),
        format: gen_format(list_format),
        span_name: span_name.to_owned(),
    }
}

fn gen_format(list_format: bool) -> GenFormat {
    if list_format {
        GenFormat::List
    } else {
        GenFormat::Free
    }
}

/// Optimize a plan, and in debug builds verify the result before it is
/// cached or executed: the optimized tree must be structurally
/// well-formed, the rewrite must preserve the naive plan's work
/// (conservation + per-rule postconditions), and the static LM-call
/// bound must not regress. A diagnostic here is a compiler bug, so it
/// panics rather than limping into execution; release builds skip the
/// sweep entirely.
///
/// Structure is checked schema-blind ([`tag_analyze::NoSchema`]): a
/// handwritten plan naming a missing table or column is *user* input,
/// and must keep surfacing as the executor's ordinary runtime error.
/// Catalog-aware diagnostics are the `EXPLAIN VERIFY` surface's job.
pub fn optimize_checked(
    naive: SemNode,
    opts: &tag_sql::SemOptOptions,
    db: &tag_sql::Database,
) -> SemNode {
    #[cfg(debug_assertions)]
    {
        let _ = db;
        let schema = tag_analyze::NoSchema;
        let optimized = optimize_sem(naive.clone(), opts);
        let plan = tag_analyze::verify_plan(&optimized, &schema);
        let rewrite = tag_analyze::verify_rewrite(&naive, &optimized, opts, &schema);
        if !plan.is_ok() || !rewrite.is_ok() {
            panic!(
                "optimize_sem produced an invalid plan (rules={}):\n{}{}plan:\n{}",
                opts.cache_tag(),
                plan.render(),
                rewrite.render(),
                optimized.explain()
            );
        }
        optimized
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = db;
        optimize_sem(naive, opts)
    }
}

/// Optimize, cache, and execute a semantic plan against an environment.
///
/// `cache_key` opts the plan into the engine's plan cache (keyed on the
/// canonical question plus the active rule tag, invalidated with the
/// relational cache on DDL/DML); pass `None` for plans that embed
/// materialized data. Under an active trace the plan runs profiled and
/// the per-node breakdown (rows in/out, elapsed, LM calls/tokens) plus
/// the `semplan_cache: hit|miss` line are annotated onto the innermost
/// open span.
pub fn run_semplan(
    env: &TagEnv,
    cache_key: Option<&str>,
    build: impl FnOnce() -> SemNode,
) -> Result<SemFrame, String> {
    let opts = env.sem_opt();
    enum PlanRef {
        Cached(std::sync::Arc<tag_sql::plancache::CachedPlan>),
        Owned(SemNode),
    }
    let (plan, cache_line) = match cache_key {
        Some(key) => {
            let full_key = format!("{key}|opt={}", opts.cache_tag());
            let (cached, hit) = env
                .db
                .semplan_for(&full_key, || optimize_checked(build(), &opts, &env.db));
            let line = if hit {
                "semplan_cache: hit"
            } else {
                "semplan_cache: miss"
            };
            (PlanRef::Cached(cached), Some(line))
        }
        None => (
            PlanRef::Owned(optimize_checked(build(), &opts, &env.db)),
            None,
        ),
    };
    let root: &SemNode = match &plan {
        PlanRef::Cached(cached) => match &cached.arms[0].plan {
            Plan::Sem { root } => root,
            _ => unreachable!("semplan_for caches only semantic plans"),
        },
        PlanRef::Owned(node) => node,
    };
    let runtime = SemRuntime::new(env);
    if !tag_trace::is_active() {
        return execute_sem(root, &runtime);
    }
    let profiler = PlanProfiler::new();
    let result = execute_sem_profiled(root, &runtime, &profiler);
    for line in profiler.render().lines() {
        tag_trace::annotate(format!("semplan: {line}"));
    }
    if let Some(line) = cache_line {
        tag_trace::annotate(line);
    }
    result
}

/// The semantic-plan runtime: executes [`SemNode`]s over the
/// environment's SQL engine, row store, semantic operators, and LM.
pub struct SemRuntime<'a> {
    env: &'a TagEnv,
    // Token counters for direct `gen` calls, which bypass the semantic
    // engine's metering (calls are read off the LM itself).
    gen_prompt_tokens: Cell<u64>,
    gen_completion_tokens: Cell<u64>,
}

impl<'a> SemRuntime<'a> {
    /// A runtime over one environment.
    pub fn new(env: &'a TagEnv) -> Self {
        SemRuntime {
            env,
            gen_prompt_tokens: Cell::new(0),
            gen_completion_tokens: Cell::new(0),
        }
    }

    fn exec_predicate(&self, df: &DataFrame, pred: &SemPredicate) -> Result<DataFrame, String> {
        match pred {
            SemPredicate::NumCmp { attr, over, value } => df
                .filter_col(attr, |v| match v.as_f64() {
                    Some(x) => {
                        if *over {
                            x > *value
                        } else {
                            x < *value
                        }
                    }
                    None => false,
                })
                .map_err(sem_err),
            SemPredicate::TextEq { attr, value } => {
                let as_num: Option<f64> = value.trim().parse().ok();
                df.filter_col(attr, |v| match (v.as_str(), v.as_f64(), as_num) {
                    (Some(s), _, _) => s.eq_ignore_ascii_case(value),
                    (None, Some(x), Some(y)) => x == y,
                    _ => false,
                })
                .map_err(sem_err)
            }
            SemPredicate::TextEqAny { columns, value } => {
                let col = existing_column(df, columns)?;
                df.filter_col(&col, |v| {
                    v.as_str()
                        .map(|s| s.eq_ignore_ascii_case(value))
                        .unwrap_or(false)
                })
                .map_err(sem_err)
            }
        }
    }

    fn exec_sem_filter(
        &self,
        df: &DataFrame,
        columns: &[String],
        resolve: bool,
        spec: &SemClaimSpec,
        distinct: bool,
        early_stop: Option<&CutSpec>,
    ) -> Result<DataFrame, String> {
        let col = if resolve {
            existing_column(df, columns)?
        } else {
            columns
                .first()
                .cloned()
                .ok_or_else(|| "semantic filter without a column".to_owned())?
        };
        let claim = spec_to_claim(spec)?;
        if let Some(cut) = early_stop {
            return self.early_stop_filter(df, &col, &claim, cut);
        }
        if distinct {
            // The Appendix C pattern: judge each distinct value once,
            // then an exact `isin` back on the full frame.
            let run = || -> Result<DataFrame, SemError> {
                let unique_values = df.unique(&col)?;
                let unique_df = DataFrame::new(
                    vec![col.clone()],
                    unique_values.iter().map(|v| vec![v.clone()]).collect(),
                )?;
                let kept = sem_filter(&self.env.engine, &unique_df, &col, &claim)?;
                let kept_values: Vec<Value> = kept.column(&col)?;
                Ok(df.is_in(&col, &kept_values)?)
            };
            return run().map_err(|e| e.to_string());
        }
        sem_filter(&self.env.engine, df, &col, &claim).map_err(|e| e.to_string())
    }

    /// A semantic filter with a fused exact cut: stable-sort first, judge
    /// distinct values in sorted order (in exponentially growing
    /// batches), and stop as soon as `cut.k` rows survive. Answer-
    /// equivalent to filter-then-sort-then-head because stable sorting
    /// commutes with order-preserving filters and judgments are
    /// per-prompt deterministic.
    fn early_stop_filter(
        &self,
        df: &DataFrame,
        col: &str,
        claim: &SemClaim,
        cut: &CutSpec,
    ) -> Result<DataFrame, String> {
        let _span = tag_trace::span(tag_trace::Stage::Exec, "sem_filter");
        let sorted = df
            .sort_by(&cut.sort_by, cut.descending)
            .map_err(|e| e.to_string())?;
        let idx = sorted.column_index(col).map_err(sem_err)?;
        let rows = sorted.rows();
        let mut verdicts: HashMap<String, bool> = HashMap::new();
        let mut kept: Vec<Vec<Value>> = Vec::new();
        let mut pos = 0usize;
        let mut batch_size = (4 * cut.k).max(16);
        while pos < rows.len() && kept.len() < cut.k {
            // Gather the next `batch_size` unjudged distinct values.
            let mut batch: Vec<String> = Vec::new();
            let mut in_batch: HashSet<String> = HashSet::new();
            let mut scan = pos;
            while scan < rows.len() && batch.len() < batch_size {
                let v = rows[scan][idx].to_string();
                if !verdicts.contains_key(&v) && in_batch.insert(v.clone()) {
                    batch.push(v);
                }
                scan += 1;
            }
            if !batch.is_empty() {
                let prompts: Vec<String> =
                    batch.iter().map(|v| sem_filter_prompt(claim, v)).collect();
                let answers = self
                    .env
                    .engine
                    .complete_batch_op("sem_filter", &prompts)
                    .map_err(|e| e.to_string())?;
                for (v, a) in batch.into_iter().zip(answers) {
                    verdicts.insert(v, a.trim().eq_ignore_ascii_case("true"));
                }
            }
            // Every row up to `scan` is now judged; consume in sorted
            // order until k survivors.
            while pos < scan && kept.len() < cut.k {
                let v = rows[pos][idx].to_string();
                if verdicts.get(&v).copied().unwrap_or(false) {
                    kept.push(rows[pos].clone());
                }
                pos += 1;
            }
            batch_size *= 2;
        }
        tag_trace::annotate(format!(
            "early_stop: judged {} of {} values",
            verdicts.len(),
            sorted
                .rows()
                .iter()
                .map(|r| r[idx].to_string())
                .collect::<HashSet<_>>()
                .len()
        ));
        DataFrame::new(sorted.columns().to_vec(), kept).map_err(|e| e.to_string())
    }

    fn exec_retrieve(&self, query: &str, k: usize, kind: RetrieveKind) -> SemFrame {
        let (span_name, noun, knob) = match kind {
            RetrieveKind::Rows => ("row embeddings", "rows", "k"),
            RetrieveKind::Candidates => ("candidate pool", "candidates", "pool"),
        };
        let _span = tag_trace::span(tag_trace::Stage::Retrieve, span_name);
        let points: Vec<Vec<(String, String)>> = self
            .env
            .row_store()
            .retrieve(query, k)
            .into_iter()
            .map(|(row, _)| row.clone())
            .collect();
        tag_trace::annotate(format!("retrieved {} {noun} ({knob}={k})", points.len()));
        encode_points(&points)
    }

    fn exec_rerank(&self, frame: &SemFrame, query: &str, keep: usize) -> Result<SemFrame, String> {
        let _span = tag_trace::span(tag_trace::Stage::Rerank, "relevance scores");
        let candidates = decode_points(frame);
        let prompts: Vec<String> = candidates
            .iter()
            .map(|row| {
                let text = row
                    .iter()
                    .map(|(c, v)| format!("- {c}: {v}"))
                    .collect::<Vec<_>>()
                    .join("\n");
                relevance_prompt(query, &text)
            })
            .collect();
        let scores = self
            .env
            .engine
            .complete_batch_op("rerank", &prompts)
            .map_err(|e| e.to_string())?;
        let mut scored: Vec<(f64, usize)> = scores
            .iter()
            .enumerate()
            .map(|(i, s)| (s.trim().parse::<f64>().unwrap_or(0.0), i))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let points: Vec<Vec<(String, String)>> = scored
            .iter()
            .take(keep)
            .map(|(_, i)| candidates[*i].clone())
            .collect();
        Ok(encode_points(&points))
    }

    fn exec_generate(
        &self,
        frame: &SemFrame,
        request: &str,
        format: &GenFormat,
        span_name: &str,
    ) -> Result<SemFrame, String> {
        let points = decode_points(frame);
        let text = match format {
            GenFormat::List => {
                self.generate_tracked(answer_list_prompt(request, &points), span_name)?
            }
            GenFormat::Free => {
                self.generate_tracked(answer_free_prompt(request, &points), span_name)?
            }
            GenFormat::FreeOrAgg => {
                // gen(R, T): one call when the table fits the context,
                // hierarchical sem_agg otherwise. Tokens, not rows.
                let prompt = answer_free_prompt(request, &points);
                let budget = self.env.lm.context_window().saturating_sub(512);
                if tag_lm::tokenizer::count_tokens(&prompt) <= budget {
                    self.generate_tracked(prompt, span_name)?
                } else {
                    let df = frame_to_df(frame)?;
                    sem_agg(&self.env.engine, &df, request, None).map_err(|e| e.to_string())?
                }
            }
        };
        Ok(SemFrame::new(
            vec!["answer".to_owned()],
            vec![vec![Value::Text(text)]],
        ))
    }

    fn generate_tracked(&self, prompt: String, span_name: &str) -> Result<String, String> {
        let _span = tag_trace::span(tag_trace::Stage::Gen, span_name);
        let resp = self
            .env
            .generate(&LmRequest::new(prompt))
            .map_err(|e| e.to_string())?;
        self.gen_prompt_tokens
            .set(self.gen_prompt_tokens.get() + resp.prompt_tokens as u64);
        self.gen_completion_tokens
            .set(self.gen_completion_tokens.get() + resp.completion_tokens as u64);
        Ok(resp.text)
    }
}

impl SemDelegate for SemRuntime<'_> {
    fn exec_node(&self, node: &SemNode, inputs: Vec<SemFrame>) -> Result<SemFrame, String> {
        match node {
            SemNode::Scan { table } => {
                let rs = self
                    .env
                    .run_sql(&format!("SELECT * FROM {table}"))
                    .map_err(|e| format!("base scan failed: {e}"))?;
                Ok(SemFrame::new(rs.columns, rs.rows))
            }
            SemNode::Input { columns, rows } => Ok(SemFrame::new(columns.clone(), rows.clone())),
            SemNode::Predicate { pred, .. } => {
                let df = frame_to_df(&inputs[0])?;
                self.exec_predicate(&df, pred).map(df_to_frame)
            }
            SemNode::SemFilter {
                columns,
                resolve,
                claim,
                distinct,
                early_stop,
                ..
            } => {
                let df = frame_to_df(&inputs[0])?;
                self.exec_sem_filter(
                    &df,
                    columns,
                    *resolve,
                    claim,
                    *distinct,
                    early_stop.as_ref(),
                )
                .map(df_to_frame)
            }
            SemNode::Cut { cut, .. } => {
                let df = frame_to_df(&inputs[0])?;
                Ok(df_to_frame(
                    df.sort_by(&cut.sort_by, cut.descending)
                        .map_err(|e| e.to_string())?
                        .head(cut.k),
                ))
            }
            SemNode::SemTopK {
                on_attr,
                property,
                k,
                ..
            } => {
                let df = frame_to_df(&inputs[0])?;
                let prop = property_from_word(property)
                    .ok_or_else(|| format!("unknown semantic property: {property}"))?;
                sem_topk(&self.env.engine, &df, on_attr, prop, *k)
                    .map(df_to_frame)
                    .map_err(|e| e.to_string())
            }
            SemNode::SemAgg { request, .. } => {
                let df = frame_to_df(&inputs[0])?;
                let text =
                    sem_agg(&self.env.engine, &df, request, None).map_err(|e| e.to_string())?;
                Ok(SemFrame::new(
                    vec!["answer".to_owned()],
                    vec![vec![Value::Text(text)]],
                ))
            }
            SemNode::SemMap {
                on_attr,
                instruction,
                out_column,
                ..
            } => {
                let df = frame_to_df(&inputs[0])?;
                sem_map(&self.env.engine, &df, on_attr, instruction, out_column)
                    .map(df_to_frame)
                    .map_err(|e| e.to_string())
            }
            SemNode::SemJoin {
                left_on,
                right_on,
                property,
                ..
            } => {
                let left = frame_to_df(&inputs[0])?;
                let right = frame_to_df(&inputs[1])?;
                let prop = property_from_word(property)
                    .ok_or_else(|| format!("unknown semantic property: {property}"))?;
                sem_join(
                    &self.env.engine,
                    &left,
                    left_on,
                    &right,
                    right_on,
                    &SemClaim::Property(prop),
                )
                .map(df_to_frame)
                .map_err(|e| e.to_string())
            }
            SemNode::Retrieve { query, k, kind } => Ok(self.exec_retrieve(query, *k, *kind)),
            SemNode::Rerank { query, keep, .. } => self.exec_rerank(&inputs[0], query, *keep),
            SemNode::Generate {
                request,
                format,
                span_name,
                ..
            } => self.exec_generate(&inputs[0], request, format, span_name),
        }
    }

    fn lm_snapshot(&self) -> LmCost {
        let stats = self.env.engine.stats();
        LmCost {
            calls: self.env.lm.calls(),
            prompt_tokens: stats.prompt_tokens + self.gen_prompt_tokens.get(),
            completion_tokens: stats.completion_tokens + self.gen_completion_tokens.get(),
        }
    }
}

fn frame_to_df(frame: &SemFrame) -> Result<DataFrame, String> {
    DataFrame::new(frame.columns.clone(), frame.rows.clone()).map_err(|e| e.to_string())
}

fn df_to_frame(df: DataFrame) -> SemFrame {
    SemFrame::new(df.columns().to_vec(), df.rows().to_vec())
}

fn sem_err(e: tag_sql::SqlError) -> String {
    SemError::from(e).to_string()
}

/// Find the first existing column among candidates (the hand-written
/// pipelines' schema-candidate resolution, error string unchanged).
fn existing_column(df: &DataFrame, candidates: &[String]) -> Result<String, String> {
    for c in candidates {
        if df.column_index(c).is_ok() {
            return Ok(c.clone());
        }
    }
    let candidates: Vec<&str> = candidates.iter().map(String::as_str).collect();
    let msg = format!(
        "pipeline expects one of the columns {candidates:?}, frame has {:?}",
        df.columns()
    );
    Err(SemError::Frame(tag_sql::SqlError::Binding(msg)).to_string())
}

/// Encode heterogeneous retrieved points as a one-column frame so they
/// can flow through `SemFrame`s (columns differ row to row after
/// row-store retrieval).
fn encode_points(points: &[Vec<(String, String)>]) -> SemFrame {
    let rows: Vec<Vec<Value>> = points
        .iter()
        .map(|p| {
            let encoded = p
                .iter()
                .map(|(c, v)| format!("{c}{PAIR_SEP}{v}"))
                .collect::<Vec<_>>()
                .join(&POINT_SEP.to_string());
            vec![Value::Text(encoded)]
        })
        .collect();
    SemFrame::new(vec![POINT_COLUMN.to_owned()], rows)
}

/// Recover data points from a frame: point-encoded frames decode their
/// pairs; plain table frames render column/value pairs (exactly the
/// frame's `to_data_points` / the ResultSet `result_to_points` mapping).
fn decode_points(frame: &SemFrame) -> Vec<Vec<(String, String)>> {
    if frame.columns.len() == 1 && frame.columns[0] == POINT_COLUMN {
        frame
            .rows
            .iter()
            .map(|r| {
                let encoded = match r.first() {
                    Some(Value::Text(s)) => s.as_str(),
                    _ => "",
                };
                if encoded.is_empty() {
                    return Vec::new();
                }
                encoded
                    .split(POINT_SEP)
                    .map(|pair| match pair.split_once(PAIR_SEP) {
                        Some((c, v)) => (c.to_owned(), v.to_owned()),
                        None => (pair.to_owned(), String::new()),
                    })
                    .collect()
            })
            .collect()
    } else {
        frame
            .rows
            .iter()
            .map(|r| {
                frame
                    .columns
                    .iter()
                    .cloned()
                    .zip(r.iter().map(|v| v.to_string()))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tag_lm::sim::{SimConfig, SimLm};
    use tag_lm::KnowledgeConfig;
    use tag_sql::{Database, SemOptOptions};

    fn env() -> TagEnv {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE schools (CDSCode INTEGER PRIMARY KEY, School TEXT, City TEXT, \
                                   Longitude REAL, GSoffered TEXT);
             INSERT INTO schools VALUES
               (1, 'Gunn High', 'Palo Alto', -122.1, 'K-12'),
               (2, 'Fresno High', 'Fresno', -119.8, '9-12'),
               (3, 'Lincoln High', 'San Jose', -121.9, '9-12'),
               (4, 'Mission High', 'Fresno', -119.7, 'K-8');",
        )
        .unwrap();
        TagEnv::new(
            db,
            Arc::new(SimLm::new(SimConfig {
                knowledge: KnowledgeConfig {
                    coverage: 1.0,
                    enumeration_coverage: 1.0,
                    seed: 3,
                },
                judgment_noise: 0.0,
                ..SimConfig::default()
            })),
        )
    }

    fn parse(text: &str) -> NlQuery {
        NlQuery::parse(text).expect("canonical question")
    }

    #[test]
    fn superlative_compiles_to_cut_over_filter_over_scan() {
        let q = parse(
            "What is the GSoffered of the schools with the highest Longitude \
             among those located in the Silicon Valley region?",
        );
        let plan = compile_nlq(&q);
        match &plan {
            SemNode::Cut { input, cut } => {
                assert_eq!(cut.sort_by, "Longitude");
                assert!(cut.descending);
                assert_eq!(cut.k, 1);
                assert!(matches!(**input, SemNode::SemFilter { .. }), "{input:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_compiles_filters_in_question_order() {
        let q = parse(
            "How many schools with Longitude under -120 and located in the \
             Silicon Valley region are there?",
        );
        let plan = compile_nlq(&q);
        // Semantic filter on top (it came last), exact predicate below.
        match &plan {
            SemNode::SemFilter { input, .. } => {
                assert!(matches!(**input, SemNode::Predicate { .. }), "{input:?}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn list_compiles_to_bare_filters() {
        let q = parse("List the School of schools located in the Bay Area region.");
        assert!(matches!(compile_nlq(&q), SemNode::SemFilter { .. }));
    }

    #[test]
    fn topk_compiles_to_cut() {
        let q = parse(
            "List the top 3 schools by Longitude: give their School \
             among those located in the Bay Area region.",
        );
        match compile_nlq(&q) {
            SemNode::Cut { cut, .. } => {
                assert_eq!(cut.k, 3);
                assert!(cut.descending);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn semantic_rank_compiles_to_semtopk_over_cut() {
        let q = parse(
            "Of the 5 posts with the highest ViewCount, list their Title in order \
             of most technical Title to least technical Title.",
        );
        match compile_nlq(&q) {
            SemNode::SemTopK {
                input,
                on_attr,
                property,
                k,
            } => {
                assert_eq!(
                    (on_attr.as_str(), property.as_str(), k),
                    ("Title", "technical", 5)
                );
                assert!(matches!(*input, SemNode::Cut { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn summarize_and_provide_info_compile_to_generate() {
        for text in [
            "Summarize the Text of comments with PostTitle equal to 'x'.",
            "Provide information about the races held on Sepang International Circuit.",
        ] {
            let q = parse(text);
            match compile_nlq(&q) {
                SemNode::Generate {
                    request, format, ..
                } => {
                    assert_eq!(request, q.render());
                    assert_eq!(format, GenFormat::FreeOrAgg);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn semantic_filter_compiles_row_wise_unresolved() {
        let q = parse("How many comments whose Text is sarcastic are there?");
        match compile_nlq(&q) {
            SemNode::SemFilter {
                columns,
                resolve,
                claim,
                distinct,
                ..
            } => {
                assert_eq!(columns, vec!["Text".to_owned()]);
                assert!(!resolve);
                assert!(
                    !distinct,
                    "naive compile is row-wise; the rewrite adds distinct"
                );
                assert_eq!(
                    claim,
                    SemClaimSpec::Property {
                        word: "sarcastic".into()
                    }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multihop_appended_texteq_sinks_below_semantic_filter() {
        // Multi-hop pushes a TextEq constraint after existing knowledge
        // filters; pushdown must sink it below the semantic filter.
        let mut q = parse("How many schools located in the Silicon Valley region are there?");
        if let NlQuery::Count { filters, .. } = &mut q {
            filters.push(tag_lm::nlq::NlFilter::TextEq {
                attr: "School".into(),
                value: "Gunn High".into(),
            });
        }
        let naive = compile_nlq(&q);
        assert!(matches!(naive, SemNode::Predicate { .. }), "{naive:?}");
        let opt = optimize_sem(naive, &SemOptOptions::all());
        match opt {
            SemNode::SemFilter { input, .. } => {
                assert!(
                    matches!(*input, SemNode::Predicate { .. }),
                    "pushdown sank the predicate"
                )
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn optimizer_reduces_lm_prompts_not_answers() {
        let q = parse(
            "What is the GSoffered of the schools with the highest Longitude \
             among those located in the Silicon Valley region?",
        );
        let e = env();

        e.set_sem_opt(SemOptOptions::none());
        e.reset_metrics();
        let naive_frame = run_semplan(&e, None, || compile_nlq(&q)).unwrap();
        let naive_calls = e.lm.calls();

        e.set_sem_opt(SemOptOptions::all());
        e.reset_metrics();
        let opt_frame = run_semplan(&e, None, || compile_nlq(&q)).unwrap();
        let opt_calls = e.lm.calls();

        assert_eq!(naive_frame, opt_frame, "rewrites must not change answers");
        // Naive judges all 3 distinct cities; early-stop stops after the
        // highest-Longitude city that passes. Both judge every city here
        // (the top two cities fail), so assert no-regression plus the
        // submitted-prompt drop from the distinct rewrite.
        assert!(opt_calls <= naive_calls, "{opt_calls} vs {naive_calls}");
        let filter_stats: Vec<_> = e
            .engine
            .op_stats()
            .into_iter()
            .filter(|(op, _)| *op == "sem_filter")
            .collect();
        assert!(!filter_stats.is_empty());
    }

    #[test]
    fn early_stop_judges_fewer_values() {
        let mut db = Database::new();
        db.execute("CREATE TABLE cities (name TEXT, City TEXT, pop INTEGER)")
            .unwrap();
        // 30 distinct city values; the top-population row is a genuine
        // Silicon Valley city, the rest are unknown to the model.
        for i in 0..30 {
            let city = if i == 29 {
                "San Jose".to_owned()
            } else {
                format!("Elsewhere {i}")
            };
            db.execute(&format!(
                "INSERT INTO cities VALUES ('c{i}', '{city}', {})",
                1000 + i
            ))
            .unwrap();
        }
        let e = TagEnv::new(
            db,
            Arc::new(SimLm::new(SimConfig {
                knowledge: KnowledgeConfig {
                    coverage: 1.0,
                    enumeration_coverage: 1.0,
                    seed: 3,
                },
                judgment_noise: 0.0,
                ..SimConfig::default()
            })),
        );
        let q = parse(
            "What is the name of the cities with the highest pop \
             among those located in the Silicon Valley region?",
        );

        e.set_sem_opt(SemOptOptions::none());
        e.reset_metrics();
        let naive = run_semplan(&e, None, || compile_nlq(&q)).unwrap();
        let naive_prompts = e.engine.stats().lm_prompts;

        e.set_sem_opt(SemOptOptions::all());
        e.reset_metrics();
        let opt = run_semplan(&e, None, || compile_nlq(&q)).unwrap();
        let opt_prompts = e.engine.stats().lm_prompts;

        assert_eq!(naive, opt);
        // Naive judges all 30 distinct values; early-stop stops after
        // the first sorted batch (16 values) because the top row passes.
        assert!(
            opt_prompts < naive_prompts,
            "early stop must judge fewer values: {opt_prompts} vs {naive_prompts}"
        );
    }

    #[test]
    fn cached_plan_reuses_across_runs() {
        let e = env();
        let q = parse("How many schools located in the Silicon Valley region are there?");
        let key = format!("nlq:{}", q.render());
        let a = run_semplan(&e, Some(&key), || compile_nlq(&q)).unwrap();
        let b = run_semplan(&e, Some(&key), || panic!("cache hit must not rebuild")).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn point_encoding_round_trips() {
        let points = vec![
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("b".to_owned(), "x y".to_owned()),
            ],
            vec![("c".to_owned(), String::new())],
        ];
        assert_eq!(decode_points(&encode_points(&points)), points);
    }
}
