//! # tag-core — the TAG model and the paper's five methods
//!
//! Implements the primary contribution of *"Text2SQL is Not Enough:
//! Unifying AI and Databases with TAG"* (CIDR 2025): the three-step
//! Table-Augmented Generation model
//!
//! ```text
//! syn(R) -> Q,   exec(Q) -> T,   gen(R, T) -> A
//! ```
//!
//! as a composable pipeline ([`model::TagPipeline`]), plus every method
//! the evaluation compares ([`methods`]):
//!
//! | Method | syn | exec | gen |
//! |---|---|---|---|
//! | Text2SQL | LM over BIRD prompt | SQL engine | identity |
//! | RAG | embed question | vector top-k | one LM call |
//! | Retrieval + LM Rank | embed question | top-k + LM rerank | one LM call |
//! | Text2SQL + LM | LM (retrieval SQL) | SQL engine | one LM call |
//! | Hand-written TAG | expert pipeline | SQL + semantic operators | LM over computed table |
//!
//! [`multihop`] adds the §2/§5 future-work extension (iterated TAG).

#![warn(missing_docs)]

pub mod answer;
pub mod env;
pub mod methods;
pub mod model;
pub mod multihop;
pub mod semplan;

pub use answer::{exact_match, normalize_value, Answer};
pub use env::TagEnv;
pub use methods::{HandWrittenTag, Rag, RetrievalLmRank, Text2Sql, Text2SqlLm};
pub use model::{AnswerGeneration, QuerySynthesis, TagMethod, TagPipeline};
pub use multihop::{run_two_hop, TwoHopQuery};
pub use semplan::{
    compile_generate_over, compile_nlq, compile_rag, compile_rerank, optimize_checked, run_semplan,
    SemRuntime,
};
