//! Property tests: scatter-gather execution is byte-identical to the
//! unsharded path — results, row orders, *and* error messages — over
//! randomized tables, shard counts {1, 2, 3, 8}, and the same 18 plan
//! shapes the chunked executor's parity suite uses (`chunk_parity.rs`
//! in tag-sql). The table partitions on column `a` (ints, floats, and
//! NULLs — exercising the Int/Float key unification and the NULL
//! partition bucket), with a replicated side table joined in.

use proptest::prelude::*;
use std::sync::Arc;
use tag_lm::model::LanguageModel;
use tag_lm::sim::{SimConfig, SimLm};
use tag_shard::ShardSet;
use tag_sql::{Database, Value};

fn cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-8i64..8).prop_map(Value::Int),
        (-100i64..100).prop_map(|v| Value::Float(v as f64 / 4.0)),
        "[ab]{0,2}".prop_map(Value::text),
    ]
}

fn run(db: &Database, sql: &str) -> Result<String, String> {
    db.query(sql)
        .map(|rs| format!("{:?}", rs.rows))
        .map_err(|e| e.message().to_string())
}

fn build_db(rows: &[Vec<Value>]) -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE t (a INTEGER, b REAL, c TEXT);
         CREATE TABLE r (a INTEGER, d TEXT);
         INSERT INTO r VALUES (1, 'one'), (2, 'two'), (NULL, 'none')",
    )
    .expect("create");
    db.catalog_mut()
        .table_mut("t")
        .expect("table t")
        .insert_all(rows.iter().cloned())
        .expect("insert rows");
    db
}

/// The 18 plan shapes from tag-sql's `chunk_parity.rs`, plus two
/// shard-specific ones: a keyed `a = k` filter (the pruning path) and
/// a join against the replicated table.
fn queries(k: i64, j: i64) -> Vec<String> {
    vec![
        "SELECT * FROM t".into(),
        format!("SELECT * FROM t WHERE a > {k}"),
        format!("SELECT a, CASE WHEN a > {k} THEN b ELSE c END FROM t"),
        "SELECT a + b, c FROM t".into(),
        "SELECT a IS NULL, NOT (b > 0.0) FROM t".into(),
        "SELECT c, COUNT(*), SUM(a), AVG(b), MIN(a), MAX(c) FROM t GROUP BY c".into(),
        "SELECT a, c, COUNT(*) FROM t GROUP BY a, c ORDER BY a, c".into(),
        "SELECT COUNT(DISTINCT a), GROUP_CONCAT(c) FROM t".into(),
        "SELECT SUM(b), TOTAL(a) FROM t".into(),
        "SELECT * FROM t ORDER BY c, a DESC".into(),
        format!("SELECT a FROM t ORDER BY b LIMIT {} OFFSET {}", k.max(0), j),
        format!("SELECT * FROM t LIMIT {j}"),
        "SELECT DISTINCT c FROM t".into(),
        "SELECT t1.a, t2.b FROM t t1 JOIN t t2 ON t1.c = t2.c WHERE t1.a < t2.a".into(),
        "SELECT t1.a, t2.b FROM t t1 LEFT JOIN t t2 ON t1.a = t2.a ORDER BY t1.a, t2.b".into(),
        "SELECT a FROM t UNION SELECT CAST(b AS INTEGER) FROM t".into(),
        // Error parity: the scattered aggregate falls back to a local
        // replay and must surface the identical message.
        "SELECT SUM(c) FROM t".into(),
        format!("SELECT c FROM t WHERE b * a > {k} ORDER BY a LIMIT 3"),
        // Partition pruning: equality on the partition key.
        format!("SELECT c, COUNT(*) FROM t WHERE a = {k} GROUP BY c"),
        // Replicated-table join: t scatters, r is whole on every shard.
        "SELECT t.c, r.d FROM t JOIN r ON t.a = r.a ORDER BY t.c, r.d".into(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_matches_unsharded_byte_for_byte(
        rows in prop::collection::vec(prop::collection::vec(cell(), 3..4), 0..40),
        k in -5i64..5,
        j in 0i64..6,
    ) {
        let lm: Arc<dyn LanguageModel> = Arc::new(SimLm::new(SimConfig::default()));
        let baseline = build_db(&rows);
        for shards in [1usize, 2, 3, 8] {
            let set = ShardSet::over_database(
                "parity",
                build_db(&rows),
                Arc::clone(&lm),
                &[("t", "a")],
                shards,
            );
            for sql in queries(k, j) {
                let unsharded = run(&baseline, &sql);
                let sharded = run(&set.env().db, &sql);
                prop_assert_eq!(
                    &unsharded,
                    &sharded,
                    "divergence on {:?} with {} shards",
                    sql,
                    shards
                );
            }
        }
    }
}
