//! # tag-shard — sharded scatter-gather execution
//!
//! Partitions one TAG domain across N shards and serves it behind an
//! unchanged `TagEnv` surface. Planning (`syn`) and answer generation
//! (`gen`) stay global at the coordinator; only relational `exec`
//! fans out, Risingwave-style (global frontend, scattered compute):
//!
//! - [`ShardSet`] holds one coordinator [`TagEnv`] over the full
//!   domain plus N shard `TagEnv`s over hash-partitioned slices
//!   (see [`tag_datagen::partition`]). Each shard env owns its own
//!   plan cache, vector index, semantic-engine cache, and LM batch
//!   queue.
//! - [`Coordinator`] implements [`tag_sql::ScatterExec`] on the
//!   coordinator database: scatterable plan fragments — Filter/Project
//!   chains over a partitioned table, and aggregates directly above
//!   such a chain — execute per shard and merge at the coordinator
//!   ([`PartialAgg`] states travel over a byte codec, AVG as
//!   (sum, count), never averaged averages). Everything else (joins,
//!   semantic operators, correlated subqueries over partitioned
//!   tables) runs at the coordinator against its full catalog, so LM
//!   call counts and answers stay byte-identical to unsharded.
//! - A filter `partition_col = literal` in the chain prunes the
//!   scatter to the single owning shard — the source of the sharded
//!   throughput win on keyed lookups.
//!
//! Any error inside a scattered fragment falls back to local
//! execution of the original plan, so error messages (and their
//! ordering semantics) are exactly the serial executor's.
//!
//! The shard slices are cut once at load time; the coordinator keeps
//! the full tables, so DDL/DML, EXPLAIN, schema prompts, and the RAG
//! row store behave identically to an unsharded deployment. Serving is
//! read-only; mutating the coordinator after construction would
//! desynchronize the slices.

#![warn(missing_docs)]

mod coordinator;

pub use coordinator::{Coordinator, ScatterStats};

use std::collections::HashMap;
use std::sync::Arc;
use tag_core::env::TagEnv;
use tag_datagen::partition::{partition_spec, partition_tables};
use tag_datagen::DomainData;
use tag_lm::model::LanguageModel;

/// One domain, sharded: a global coordinator environment plus N
/// per-shard environments, wired together by a [`Coordinator`]
/// installed as the coordinator database's scatter hook.
pub struct ShardSet {
    name: &'static str,
    coordinator: Arc<TagEnv>,
    shards: Vec<Arc<TagEnv>>,
    exec: Arc<Coordinator>,
    /// Upper-cased names of the partitioned tables.
    partitioned: Vec<String>,
}

impl ShardSet {
    /// Shard `domain` across `n` partitions (panics on `n == 0`).
    ///
    /// The coordinator env takes the full domain database — `syn`
    /// prompts, the row store, semantic scans, and any non-scatterable
    /// plan all see exactly the unsharded catalog. Each shard env gets
    /// a hash-partitioned slice plus full copies of replicated tables.
    pub fn new(domain: DomainData, lm: Arc<dyn LanguageModel>, n: usize) -> ShardSet {
        let specs: Vec<(&str, &str)> = partition_spec(domain.name)
            .iter()
            .map(|s| (s.table, s.column))
            .collect();
        Self::over_database(domain.name, domain.db, lm, &specs, n)
    }

    /// Shard an arbitrary database with explicit `(table, column)`
    /// partition specs — the generic form behind [`ShardSet::new`],
    /// also used by parity tests to shard randomized tables.
    pub fn over_database(
        name: &'static str,
        db: tag_sql::Database,
        lm: Arc<dyn LanguageModel>,
        specs: &[(&str, &str)],
        n: usize,
    ) -> ShardSet {
        assert!(n > 0, "shard count must be positive");
        // Resolve each partitioned table's key column position before
        // the database moves into the coordinator env.
        let mut parts: HashMap<String, usize> = HashMap::new();
        let mut partitioned: Vec<String> = Vec::new();
        for (table_name, column) in specs {
            if let Ok(table) = db.catalog().table(table_name) {
                let col = table
                    .schema()
                    .index_of(column)
                    .unwrap_or_else(|| panic!("no column {column:?} in table {table_name}"));
                parts.insert(table_name.to_ascii_uppercase(), col);
                partitioned.push(table_name.to_ascii_uppercase());
            }
        }
        partitioned.sort();
        partitioned.dedup();
        let slices = partition_tables(&db, specs, n);
        let mut shards = Vec::with_capacity(n);
        let mut seqs = Vec::with_capacity(n);
        for slice in slices {
            seqs.push(slice.seq);
            shards.push(Arc::new(TagEnv::new(slice.db, Arc::clone(&lm))));
        }
        let coordinator = Arc::new(TagEnv::new(db, lm));
        let exec = Arc::new(Coordinator::new(shards.clone(), parts, seqs));
        coordinator
            .db
            .set_scatter_exec(exec.clone() as Arc<dyn tag_sql::ScatterExec>);
        ShardSet {
            name,
            coordinator,
            shards,
            exec,
            partitioned,
        }
    }

    /// The domain's BIRD name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The coordinator environment. Serving routes every request
    /// through this env; its database scatters eligible plans across
    /// the shards transparently.
    pub fn env(&self) -> &Arc<TagEnv> {
        &self.coordinator
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard environments (own plan cache, vector index,
    /// semantic-engine cache, and LM batch queue each).
    pub fn shard_envs(&self) -> &[Arc<TagEnv>] {
        &self.shards
    }

    /// Scatter-gather counters since construction.
    pub fn scatter_stats(&self) -> ScatterStats {
        self.exec.stats()
    }

    /// A shared handle to the scatter executor, so metrics collectors
    /// can sample [`ScatterStats`] at scrape time without borrowing
    /// the set. The coordinator holds no reference back to the hub, so
    /// capturing this strongly in a collector closes no cycle.
    pub fn scatter_exec(&self) -> Arc<Coordinator> {
        Arc::clone(&self.exec)
    }

    /// Rows of partitioned tables resident on each shard (replicated
    /// tables excluded — their copies are not "owned" by any shard).
    /// All zeros when the domain declares no partitioned tables.
    pub fn shard_rows(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|env| {
                let catalog = env.db.catalog();
                self.partitioned
                    .iter()
                    .filter_map(|t| catalog.table(t).ok())
                    .map(|t| t.len() as u64)
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tag_lm::sim::{SimConfig, SimLm};

    fn lm() -> Arc<dyn LanguageModel> {
        Arc::new(SimLm::new(SimConfig::default()))
    }

    fn run(db: &tag_sql::Database, sql: &str) -> Result<String, String> {
        db.query(sql)
            .map(|rs| format!("{:?}", rs.rows))
            .map_err(|e| e.message().to_string())
    }

    /// The shard-set answers a representative query mix byte-identically
    /// to the unsharded domain, across shard counts.
    #[test]
    fn sharded_matches_unsharded_over_query_mix() {
        let queries = [
            "SELECT * FROM schools",
            "SELECT COUNT(*) FROM schools WHERE City = 'Palo Alto'",
            "SELECT City, COUNT(*), AVG(AvgScrMath) FROM schools GROUP BY City",
            "SELECT School FROM schools WHERE AvgScrMath > 700 ORDER BY School",
            "SELECT COUNT(DISTINCT City), GROUP_CONCAT(FundingType) FROM schools",
            "SELECT s.School, f.\"FRPM Count\" FROM schools s JOIN frpm f \
             ON s.CDSCode = f.CDSCode WHERE s.AvgScrMath > 650 ORDER BY s.CDSCode",
            "SELECT MIN(Longitude), MAX(Latitude), SUM(Enrollment), TOTAL(AvgScrRead) \
             FROM schools WHERE Charter = 1",
            "SELECT * FROM frpm WHERE CDSCode = 17",
            "SELECT SUM(City) FROM schools", // error parity via local fallback
            "SELECT City FROM schools WHERE EXISTS \
             (SELECT 1 FROM satscores WHERE cds = CDSCode) LIMIT 5",
        ];
        let baseline = tag_datagen::schools::generate(23, 150);
        for n in [1usize, 2, 3, 8] {
            let set = ShardSet::new(tag_datagen::schools::generate(23, 150), lm(), n);
            for sql in queries {
                assert_eq!(
                    run(&baseline.db, sql),
                    run(&set.env().db, sql),
                    "divergence on {sql:?} with {n} shards"
                );
            }
        }
    }

    #[test]
    fn keyed_filter_prunes_to_one_shard() {
        let set = ShardSet::new(tag_datagen::schools::generate(7, 200), lm(), 8);
        let before = set.scatter_stats();
        set.env()
            .db
            .query("SELECT COUNT(*) FROM schools WHERE City = 'Fresno'")
            .unwrap();
        let after = set.scatter_stats();
        assert_eq!(after.scattered, before.scattered + 1);
        assert_eq!(after.pruned, before.pruned + 1);
        assert_eq!(after.fallbacks, before.fallbacks);
    }

    #[test]
    fn shard_envs_are_independent() {
        let set = ShardSet::new(tag_datagen::schools::generate(3, 80), lm(), 4);
        assert_eq!(set.shards(), 4);
        assert_eq!(set.name(), "california_schools");
        let total: usize = set
            .shard_envs()
            .iter()
            .map(|e| e.db.catalog().table("schools").unwrap().len())
            .sum();
        assert_eq!(total, 80);
        // shard_rows covers every partitioned table and sums to the
        // coordinator's row counts.
        let rows = set.shard_rows();
        assert_eq!(rows.len(), 4);
        let want: u64 = ["schools", "frpm", "satscores"]
            .iter()
            .map(|t| set.env().db.catalog().table(t).unwrap().len() as u64)
            .sum();
        assert_eq!(rows.iter().sum::<u64>(), want);
    }
}
