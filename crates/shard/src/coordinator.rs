//! The scatter-gather coordinator: plan rewriting, per-shard chain
//! execution, partial-aggregate merging, and partition pruning.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tag_core::env::TagEnv;
use tag_datagen::partition::partition_for;
use tag_sql::error::{SqlError, SqlResult};
use tag_sql::expr::EvalCtx;
use tag_sql::partial::{merge_partials, GroupPartials, GroupPartialsBuilder};
use tag_sql::plan::AggCall;
use tag_sql::scatter::{collect_expr_tables, plan_references};
use tag_sql::{BoundExpr, Database, Plan, Row, ScatterExec, Value};

/// Scatter-gather counters (monotone since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScatterStats {
    /// Plans the coordinator claimed and executed by scatter-gather.
    pub scattered: u64,
    /// Scattered fragments pruned to a single shard by a
    /// `partition_col = literal` filter or index probe.
    pub pruned: u64,
    /// Claimed plans that fell back to local execution (an error
    /// anywhere in the scattered path; the local replay reproduces the
    /// serial result or error exactly).
    pub fallbacks: u64,
}

/// The coordinator's scatter executor, installed on the coordinator
/// database via [`Database::set_scatter_exec`]. See the crate docs for
/// the execution contract.
pub struct Coordinator {
    shards: Vec<Arc<TagEnv>>,
    /// Upper-cased partitioned table name → partition-key column
    /// position in the table schema.
    parts: HashMap<String, usize>,
    /// Per shard: upper-cased table name → global row index of each
    /// local row (local storage order).
    seqs: Vec<HashMap<String, Vec<u64>>>,
    scattered: AtomicU64,
    pruned: AtomicU64,
    fallbacks: AtomicU64,
}

/// One stage of a scatterable chain, applied bottom-up above the
/// anchor scan.
enum Stage<'p> {
    Filter(&'p BoundExpr),
    Project(&'p [BoundExpr]),
}

/// A scatterable plan fragment: a Filter/Project chain over one
/// partitioned table, anchored at a full scan or an equality probe on
/// the partition column.
struct Chain<'p> {
    /// Upper-cased table name (the seq-map and parts key).
    table: String,
    /// Partition-key column position in the table schema.
    key_col: usize,
    /// Stages in application order (closest to the anchor first).
    stages: Vec<Stage<'p>>,
    /// Probe key when anchored at `IndexProbe` on the partition column
    /// (all matching rows live on one shard).
    probe: Option<&'p Value>,
}

impl Coordinator {
    /// Build a coordinator over shard environments, the partitioned
    /// table map, and the per-shard seq maps from partitioning.
    pub(crate) fn new(
        shards: Vec<Arc<TagEnv>>,
        parts: HashMap<String, usize>,
        seqs: Vec<HashMap<String, Vec<u64>>>,
    ) -> Coordinator {
        Coordinator {
            shards,
            parts,
            seqs,
            scattered: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ScatterStats {
        ScatterStats {
            scattered: self.scattered.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    fn is_partitioned(&self, table: &str) -> bool {
        self.parts.contains_key(&table.to_ascii_uppercase())
    }

    /// Is `expr` safe to evaluate on a shard? Bare outer references
    /// mean the fragment sits inside a correlated subquery (never true
    /// for a top-level plan, but cheap to refuse), and correlated
    /// subplans over *partitioned* tables would see a partial slice —
    /// correlated subplans over replicated tables are fine, every
    /// shard holds full copies.
    fn expr_scatterable(&self, expr: &BoundExpr) -> bool {
        let mut tables = BTreeSet::new();
        collect_expr_tables(expr, &mut tables);
        if tables.iter().any(|t| self.is_partitioned(t)) {
            return false;
        }
        !has_bare_outer_ref(expr)
    }

    /// Parse `plan` as a scatterable chain, or `None`.
    fn chain_of<'p>(&self, mut plan: &'p Plan) -> Option<Chain<'p>> {
        let mut stages = Vec::new();
        loop {
            match plan {
                Plan::Filter { input, predicate } => {
                    if !self.expr_scatterable(predicate) {
                        return None;
                    }
                    stages.push(Stage::Filter(predicate));
                    plan = input;
                }
                Plan::Project {
                    input,
                    exprs,
                    columns: _,
                } => {
                    if !exprs.iter().all(|e| self.expr_scatterable(e)) {
                        return None;
                    }
                    stages.push(Stage::Project(exprs));
                    plan = input;
                }
                Plan::TableScan { table, .. } => {
                    let key_col = *self.parts.get(&table.to_ascii_uppercase())?;
                    stages.reverse();
                    return Some(Chain {
                        table: table.to_ascii_uppercase(),
                        key_col,
                        stages,
                        probe: None,
                    });
                }
                Plan::IndexProbe {
                    table,
                    key_column,
                    key,
                    ..
                } => {
                    let key_col = *self.parts.get(&table.to_ascii_uppercase())?;
                    // A probe on any other column would return rows
                    // spread over shards in index order; only the
                    // partition column guarantees a single owner.
                    if *key_column != key_col {
                        return None;
                    }
                    stages.reverse();
                    return Some(Chain {
                        table: table.to_ascii_uppercase(),
                        key_col,
                        stages,
                        probe: Some(key),
                    });
                }
                _ => return None,
            }
        }
    }

    /// Which shards must run `chain`: one shard when the probe key or
    /// a pre-projection `partition_col = literal` conjunct pins the
    /// owner (the chain's own filter would drop every other shard's
    /// rows anyway), otherwise all of them.
    fn targets(&self, chain: &Chain<'_>) -> Vec<usize> {
        let n = self.shards.len();
        if let Some(key) = chain.probe {
            self.pruned.fetch_add(1, Ordering::Relaxed);
            return vec![partition_for(key, n)];
        }
        for stage in &chain.stages {
            match stage {
                Stage::Filter(pred) => {
                    if let Some(key) = prune_key(pred, chain.key_col) {
                        self.pruned.fetch_add(1, Ordering::Relaxed);
                        return vec![partition_for(key, n)];
                    }
                }
                // Past a projection, column positions no longer map to
                // the table schema; stop looking.
                Stage::Project(_) => break,
            }
        }
        (0..n).collect()
    }

    /// Run `chain` on one shard, returning `(global_seq, row)` pairs in
    /// local storage order (ascending seq — slices preserve the global
    /// row order).
    fn run_chain_on(&self, shard: usize, chain: &Chain<'_>) -> SqlResult<Vec<(u64, Row)>> {
        let env = &self.shards[shard];
        let catalog = env.db.catalog();
        let table = catalog.table(&chain.table)?;
        let seq = self.seqs[shard]
            .get(&chain.table)
            .ok_or_else(|| SqlError::Catalog(format!("no seq map for table {}", chain.table)))?;
        let ctx = EvalCtx {
            catalog: Some(catalog),
        };
        let locals: Vec<usize> = match chain.probe {
            Some(key) => table
                .index_on(chain.key_col)
                .ok_or_else(|| {
                    SqlError::Catalog(format!("no index on partition column of {}", chain.table))
                })?
                .probe(key),
            None => (0..table.len()).collect(),
        };
        let mut out = Vec::with_capacity(locals.len());
        'rows: for local in locals {
            let mut row: Row = table.row(local).clone();
            for stage in &chain.stages {
                match stage {
                    Stage::Filter(pred) => {
                        if !pred.eval_predicate_ctx(&row, &ctx)? {
                            continue 'rows;
                        }
                    }
                    Stage::Project(exprs) => {
                        row = exprs
                            .iter()
                            .map(|e| e.eval_ctx(&row, &ctx))
                            .collect::<SqlResult<Row>>()?;
                    }
                }
            }
            out.push((seq[local], row));
        }
        Ok(out)
    }

    /// Scatter a chain and gather its rows into a literal `Values`
    /// node, in global row order (seqs are disjoint across shards).
    fn scatter_values(&self, chain: &Chain<'_>, columns: Vec<String>) -> SqlResult<Plan> {
        let targets = self.targets(chain);
        annotate_scatter(&chain.table, &targets);
        let mut gathered: Vec<(u64, Row)> = Vec::new();
        for shard in targets {
            let _span = shard_span(shard);
            gathered.extend(self.run_chain_on(shard, chain)?);
        }
        gathered.sort_unstable_by_key(|(seq, _)| *seq);
        Ok(Plan::Values {
            columns,
            rows: gathered
                .into_iter()
                .map(|(_, row)| row.into_iter().map(BoundExpr::Literal).collect())
                .collect(),
        })
    }

    /// Decompose an aggregate over a chain: each shard folds its slice
    /// into [`GroupPartials`], the states cross the shard boundary
    /// through the byte codec, and the coordinator merges and finishes
    /// them — AVG merges as (sum, count), group order is global
    /// first-seen order, and in-group value order is global row order.
    fn scatter_aggregate(
        &self,
        chain: &Chain<'_>,
        group: &[BoundExpr],
        aggs: &[AggCall],
        columns: Vec<String>,
    ) -> SqlResult<Plan> {
        let targets = self.targets(chain);
        annotate_scatter(&chain.table, &targets);
        let mut parts: Vec<GroupPartials> = Vec::new();
        for shard in targets {
            let _span = shard_span(shard);
            let rows = self.run_chain_on(shard, chain)?;
            let catalog = self.shards[shard].db.catalog();
            let ctx = EvalCtx {
                catalog: Some(catalog),
            };
            let mut builder = GroupPartialsBuilder::new(aggs);
            for (seq, row) in &rows {
                let key = group
                    .iter()
                    .map(|e| e.eval_ctx(row, &ctx))
                    .collect::<SqlResult<Vec<Value>>>()?;
                let args = aggs
                    .iter()
                    .map(|a| match &a.arg {
                        Some(e) => e.eval_ctx(row, &ctx),
                        // COUNT(*): count the row itself.
                        None => Ok(Value::Int(1)),
                    })
                    .collect::<SqlResult<Vec<Value>>>()?;
                builder.add(*seq, key, args);
            }
            // Round-trip through the wire codec: partial states are
            // what crosses a real shard boundary, so exercise the
            // serialization on every scatter.
            parts.push(GroupPartials::decode(&builder.build().encode())?);
        }
        let merged = merge_partials(parts)?;
        let rows = tag_sql::partial::finish_partials(merged, group.len(), aggs)?;
        Ok(Plan::Values {
            columns,
            rows: rows
                .into_iter()
                .map(|row| row.into_iter().map(BoundExpr::Literal).collect())
                .collect(),
        })
    }

    /// Rewrite `plan` so every scatterable fragment becomes a gathered
    /// `Values` node; the rewritten plan then runs locally at the
    /// coordinator. Subtrees that touch no partitioned table are kept
    /// as-is (the coordinator catalog holds the full tables), as are
    /// non-scatterable partitioned leaves (range scans, probes on
    /// non-partition columns).
    fn rewrite(&self, plan: &Plan) -> SqlResult<Plan> {
        if !plan_references(plan, &|t| self.is_partitioned(t)) {
            return Ok(plan.clone());
        }
        if let Plan::Aggregate {
            input,
            group,
            aggs,
            group_names: _,
        } = plan
        {
            if let Some(chain) = self.chain_of(input) {
                if group.iter().all(|e| self.expr_scatterable(e))
                    && aggs
                        .iter()
                        .all(|a| a.arg.as_ref().is_none_or(|e| self.expr_scatterable(e)))
                {
                    return self.scatter_aggregate(&chain, group, aggs, plan.columns());
                }
            }
        }
        if let Some(chain) = self.chain_of(plan) {
            return self.scatter_values(&chain, plan.columns());
        }
        Ok(match plan {
            Plan::Filter { input, predicate } => Plan::Filter {
                input: Box::new(self.rewrite(input)?),
                predicate: predicate.clone(),
            },
            Plan::Project {
                input,
                exprs,
                columns,
            } => Plan::Project {
                input: Box::new(self.rewrite(input)?),
                exprs: exprs.clone(),
                columns: columns.clone(),
            },
            Plan::NestedLoopJoin {
                left,
                right,
                kind,
                on,
            } => Plan::NestedLoopJoin {
                left: Box::new(self.rewrite(left)?),
                right: Box::new(self.rewrite(right)?),
                kind: *kind,
                on: on.clone(),
            },
            Plan::HashJoin {
                left,
                right,
                kind,
                left_key,
                right_key,
                residual,
            } => Plan::HashJoin {
                left: Box::new(self.rewrite(left)?),
                right: Box::new(self.rewrite(right)?),
                kind: *kind,
                left_key: left_key.clone(),
                right_key: right_key.clone(),
                residual: residual.clone(),
            },
            Plan::Aggregate {
                input,
                group,
                group_names,
                aggs,
            } => Plan::Aggregate {
                input: Box::new(self.rewrite(input)?),
                group: group.clone(),
                group_names: group_names.clone(),
                aggs: aggs.clone(),
            },
            Plan::Sort { input, keys } => Plan::Sort {
                input: Box::new(self.rewrite(input)?),
                keys: keys.clone(),
            },
            Plan::TopK {
                input,
                keys,
                k,
                offset,
            } => Plan::TopK {
                input: Box::new(self.rewrite(input)?),
                keys: keys.clone(),
                k: *k,
                offset: *offset,
            },
            Plan::Limit {
                input,
                limit,
                offset,
            } => Plan::Limit {
                input: Box::new(self.rewrite(input)?),
                limit: *limit,
                offset: *offset,
            },
            Plan::Distinct { input } => Plan::Distinct {
                input: Box::new(self.rewrite(input)?),
            },
            // Leaves, and plans whose partitioned references sit only
            // inside correlated expressions: the coordinator's full
            // catalog executes them with unsharded semantics.
            other => other.clone(),
        })
    }
}

impl ScatterExec for Coordinator {
    fn handles(&self, plan: &Plan) -> bool {
        plan_references(plan, &|t| self.is_partitioned(t))
    }

    fn execute(&self, plan: &Plan, db: &Database) -> SqlResult<Vec<Row>> {
        self.scattered.fetch_add(1, Ordering::Relaxed);
        let scattered = self
            .rewrite(plan)
            .and_then(|rewritten| db.execute_plan_local(&rewritten));
        match scattered {
            Ok(rows) => Ok(rows),
            // Any scatter-path error: replay the original plan locally
            // against the coordinator's full tables. This reproduces
            // the serial result or error byte-for-byte (scatter may
            // observe failures in a different row order than a serial
            // scan would).
            Err(_) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                db.execute_plan_local(plan)
            }
        }
    }
}

/// An `exec`-stage trace span labeled `shard=<i>`, so scattered work
/// is attributed per shard in `TRACE <id>` output. Inert (and free of
/// the label formatting) when no trace is installed on the thread.
fn shard_span(shard: usize) -> Option<tag_trace::SpanGuard> {
    tag_trace::is_active()
        .then(|| tag_trace::span(tag_trace::Stage::Exec, &format!("shard={shard}")))
}

/// Annotate the enclosing SQL span with the scatter fan-out (which
/// table, which shards), so a trace shows pruning decisions inline.
fn annotate_scatter(table: &str, targets: &[usize]) {
    if tag_trace::is_active() {
        tag_trace::annotate(format!("scatter {table} -> shards {targets:?}"));
    }
}

/// A `partition_col = literal` conjunct (either operand order) proves
/// every surviving row's key equals that literal: SQL `=` is total_cmp
/// equality, the same equality [`partition_for`] hashes by, so all
/// matches live on the literal's shard. NULL literals never match
/// anything; leave them unpruned for clarity.
fn prune_key(pred: &BoundExpr, key_col: usize) -> Option<&Value> {
    use tag_sql::ast::BinOp;
    if let BoundExpr::Binary { op, lhs, rhs } = pred {
        match op {
            BinOp::And => {
                return prune_key(lhs, key_col).or_else(|| prune_key(rhs, key_col));
            }
            BinOp::Eq => match (lhs.as_ref(), rhs.as_ref()) {
                (BoundExpr::ColumnRef(c), BoundExpr::Literal(v))
                | (BoundExpr::Literal(v), BoundExpr::ColumnRef(c))
                    if *c == key_col && !v.is_null() =>
                {
                    return Some(v);
                }
                _ => {}
            },
            _ => {}
        }
    }
    None
}

/// Does `expr` contain an outer reference at *this* query level?
/// References inside embedded correlated subplans bind to the chain's
/// own rows and are fine — don't descend into those plans.
fn has_bare_outer_ref(expr: &BoundExpr) -> bool {
    match expr {
        BoundExpr::OuterRef(_) => true,
        BoundExpr::Literal(_)
        | BoundExpr::ColumnRef(_)
        | BoundExpr::InSet { .. }
        | BoundExpr::CorrelatedExists { .. }
        | BoundExpr::CorrelatedScalar { .. } => false,
        BoundExpr::CorrelatedIn { expr, .. } => has_bare_outer_ref(expr),
        BoundExpr::Binary { lhs, rhs, .. } => has_bare_outer_ref(lhs) || has_bare_outer_ref(rhs),
        BoundExpr::Unary { operand, .. } => has_bare_outer_ref(operand),
        BoundExpr::IsNull { expr, .. } | BoundExpr::Cast { expr, .. } => has_bare_outer_ref(expr),
        BoundExpr::Between {
            expr, low, high, ..
        } => has_bare_outer_ref(expr) || has_bare_outer_ref(low) || has_bare_outer_ref(high),
        BoundExpr::InList { expr, list, .. } => {
            has_bare_outer_ref(expr) || list.iter().any(has_bare_outer_ref)
        }
        BoundExpr::Case {
            operand,
            branches,
            else_branch,
        } => {
            operand.as_deref().is_some_and(has_bare_outer_ref)
                || branches
                    .iter()
                    .any(|(w, t)| has_bare_outer_ref(w) || has_bare_outer_ref(t))
                || else_branch.as_deref().is_some_and(has_bare_outer_ref)
        }
        BoundExpr::Builtin { args, .. } | BoundExpr::Udf { args, .. } => {
            args.iter().any(has_bare_outer_ref)
        }
    }
}
