//! `serve-bench` — a load generator for the serving runtime.
//!
//! Replays the 80 TAG-Bench questions against a fresh [`Server`] at each
//! requested concurrency level, printing throughput, client-side latency
//! percentiles, and batching/cache effectiveness. Each level runs twice
//! — plan cache disabled, then enabled — so the cache's contribution is
//! measured in the same report. Every run is checked byte-for-byte
//! against a serial baseline computed with a plain (unbatched, uncached)
//! environment set — neither concurrency nor caching must ever change an
//! answer. Results are also written as a machine-readable JSON artifact
//! (`BENCH_plancache.json` by default) so the perf trajectory is tracked
//! across PRs.

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tag_bench::build_benchmark;
use tag_core::answer::Answer;
use tag_core::env::TagEnv;
use tag_datagen::{generate_all, Scale};
use tag_lm::sim::{SimConfig, SimLm};
use tag_serve::{
    run_method, MethodName, PipelineStageSnapshot, Request, ServeError, Server, ServerConfig,
};
use tag_sql::PlanCacheStats;

fn usage() -> ! {
    eprintln!(
        "usage: serve-bench [--seed N] [--scale tiny|small|standard] \
         [--method text2sql|rag|rerank|text2sql_lm|handwritten|all] \
         [--concurrency 1,8] [--workers N] [--queue N] [--json PATH] \
         [--metrics-out PATH] [--smoke]"
    );
    std::process::exit(2);
}

fn parse_scale(name: &str) -> Scale {
    match name {
        "standard" => Scale::default(),
        "small" => Scale {
            schools: 120,
            players: 150,
            posts: 60,
            customers: 120,
            drivers: 10,
        },
        "tiny" => Scale {
            schools: 40,
            players: 40,
            posts: 20,
            customers: 40,
            drivers: 6,
        },
        _ => usage(),
    }
}

/// One request of the replayed workload.
#[derive(Clone)]
struct WorkItem {
    domain: &'static str,
    method: MethodName,
    question: String,
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx].as_secs_f64() * 1e3
}

/// Client-side measurements of one replay run.
struct RunStats {
    wall_s: f64,
    rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mismatches: usize,
}

/// Replay the full workload against `server` with `level` client threads,
/// comparing every answer to `expected`.
fn run_level(
    server: &Arc<Server>,
    workload: &Arc<Vec<WorkItem>>,
    expected: &[Answer],
    level: usize,
) -> RunStats {
    let next = Arc::new(AtomicUsize::new(0));
    let answers: Arc<Vec<Mutex<Option<Answer>>>> =
        Arc::new(workload.iter().map(|_| Mutex::new(None)).collect());
    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let clients: Vec<_> = (0..level.max(1))
        .map(|_| {
            let server = Arc::clone(server);
            let next = Arc::clone(&next);
            let answers = Arc::clone(&answers);
            let latencies = Arc::clone(&latencies);
            let workload = Arc::clone(workload);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(w) = workload.get(i) else { return };
                let sent = Instant::now();
                let resp = loop {
                    let req = Request::new(w.domain, w.method, w.question.clone());
                    match server.ask(req) {
                        Ok(resp) => break resp,
                        Err(ServeError::QueueFull) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => panic!("serve-bench request failed: {e}"),
                    }
                };
                latencies.lock().push(sent.elapsed());
                *answers[i].lock() = Some(resp.answer);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let wall_s = started.elapsed().as_secs_f64();
    let mut lats = std::mem::take(&mut *latencies.lock());
    lats.sort();
    let mismatches = workload
        .iter()
        .enumerate()
        .filter(|(i, _)| answers[*i].lock().as_ref() != Some(&expected[*i]))
        .count();
    RunStats {
        wall_s,
        rps: workload.len() as f64 / wall_s,
        p50_ms: percentile(&lats, 0.50),
        p95_ms: percentile(&lats, 0.95),
        p99_ms: percentile(&lats, 0.99),
        mismatches,
    }
}

fn json_run(r: &RunStats) -> String {
    format!(
        "{{\"wall_s\":{:.4},\"rps\":{:.2},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3},\
         \"mismatches\":{}}}",
        r.wall_s, r.rps, r.p50_ms, r.p95_ms, r.p99_ms, r.mismatches,
    )
}

fn json_plan_cache(pc: &PlanCacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"invalidations\":{},\"entries\":{},\
         \"hit_rate\":{:.4}}}",
        pc.hits,
        pc.misses,
        pc.evictions,
        pc.invalidations,
        pc.entries,
        pc.hit_rate(),
    )
}

/// Rolling 10s per-stage quantiles from the server's windowed stage
/// histograms, captured right after a replay finishes (the window is
/// still hot). Stages with no traffic in the window are omitted.
fn json_stage_windows(server: &Server) -> String {
    let stages = server.stage_metrics();
    let mut out: Vec<String> = Vec::new();
    for stage in tag_trace::Stage::ALL {
        let w = stages.window(stage, 10);
        if w.count() == 0 {
            continue;
        }
        out.push(format!(
            "{{\"stage\":\"{}\",\"n\":{},\"rate\":{:.2},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\
             \"p99_ms\":{:.3}}}",
            stage.as_str(),
            w.count(),
            w.rate(),
            w.quantile(0.50).seconds * 1e3,
            w.quantile(0.95).seconds * 1e3,
            w.quantile(0.99).seconds * 1e3,
        ));
    }
    format!("[{}]", out.join(","))
}

fn json_pipeline(snap: &[PipelineStageSnapshot; 3]) -> String {
    let stages: Vec<String> = snap
        .iter()
        .map(|s| {
            format!(
                "{{\"stage\":\"{}\",\"workers\":{},\"processed\":{},\"busy_ms\":{:.3},\
                 \"occupancy\":{:.4}}}",
                s.name,
                s.workers,
                s.processed,
                s.busy.as_secs_f64() * 1e3,
                s.occupancy,
            )
        })
        .collect();
    format!("[{}]", stages.join(","))
}

fn main() {
    let mut seed = 42u64;
    let mut scale_name = "small".to_owned();
    let mut methods = vec![MethodName::HandWritten];
    let mut levels = vec![1usize, 8];
    let mut workers = 8usize;
    let mut queue = 256usize;
    let mut json_path = "BENCH_plancache.json".to_owned();
    let mut metrics_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale_name = val(),
            "--method" => {
                let v = val();
                methods = if v == "all" {
                    MethodName::all().to_vec()
                } else {
                    vec![MethodName::parse(&v).unwrap_or_else(|| usage())]
                };
            }
            "--concurrency" => {
                levels = val()
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if levels.is_empty() {
                    usage();
                }
            }
            "--workers" => workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue" => queue = val().parse().unwrap_or_else(|_| usage()),
            "--json" => json_path = val(),
            "--metrics-out" => metrics_out = Some(val()),
            // CI smoke preset: tiny data, one method, two levels.
            "--smoke" => {
                scale_name = "tiny".to_owned();
                methods = vec![MethodName::HandWritten];
                levels = vec![1, 4];
                workers = 4;
            }
            _ => usage(),
        }
    }
    let scale = parse_scale(&scale_name);

    eprintln!("serve-bench: generating domains (seed {seed})...");
    let domains = generate_all(seed, scale);
    let queries = build_benchmark(&domains);
    let workload: Vec<WorkItem> = methods
        .iter()
        .flat_map(|&method| {
            queries.iter().map(move |q| WorkItem {
                domain: q.domain,
                method,
                question: q.question(),
            })
        })
        .collect();
    eprintln!(
        "serve-bench: {} requests ({} queries x {} methods)",
        workload.len(),
        queries.len(),
        methods.len(),
    );

    // Serial baseline: plain environments, no batching, no answer cache.
    let baseline_lm: Arc<dyn tag_lm::model::LanguageModel> =
        Arc::new(SimLm::new(SimConfig::default()));
    let baseline_envs: Vec<(&'static str, TagEnv)> = generate_all(seed, scale)
        .into_iter()
        .map(|d| (d.name, TagEnv::new(d.db, Arc::clone(&baseline_lm))))
        .collect();
    let env_for = |domain: &str| -> &TagEnv {
        &baseline_envs
            .iter()
            .find(|(n, _)| *n == domain)
            .expect("workload domain generated")
            .1
    };
    for (_, env) in &baseline_envs {
        let _ = env.row_store();
    }
    let serial_started = Instant::now();
    let expected: Vec<Answer> = workload
        .iter()
        .map(|w| run_method(w.method, &w.question, env_for(w.domain)))
        .collect();
    let serial_wall = serial_started.elapsed().as_secs_f64();
    let serial_rps = workload.len() as f64 / serial_wall;
    println!(
        "serial baseline: {} requests in {serial_wall:.2}s ({serial_rps:.1} req/s)",
        workload.len(),
    );

    // Plan-path microbench: the end-to-end request path is LM-dominated,
    // so the plan cache's win is isolated here — a join statement that is
    // expensive to bind/optimize (two wide schemas) but cheap to execute
    // (primary-key point lookups), repeated with the cache off then on.
    let micro_db = &env_for("california_schools").db;
    let micro_sql = "SELECT s.School, t.AvgScrVerbal FROM schools s \
                     JOIN satscores t ON s.CDSCode = t.cds WHERE s.CDSCode = 17";
    const MICRO_ITERS: u32 = 2000;
    let micro_run = |cache_capacity: usize| -> f64 {
        micro_db.set_plan_cache_capacity(cache_capacity);
        let t0 = Instant::now();
        for _ in 0..MICRO_ITERS {
            std::hint::black_box(micro_db.query(micro_sql).expect("microbench statement"));
        }
        t0.elapsed().as_secs_f64() * 1e6 / f64::from(MICRO_ITERS)
    };
    micro_run(0); // warm-up, and leaves the cache disabled for the off run
    let micro_off_us = micro_run(0);
    let micro_on_us = micro_run(128);
    let micro_speedup = micro_off_us / micro_on_us.max(f64::MIN_POSITIVE);
    println!(
        "plan path: {micro_off_us:.1} us/stmt uncached -> {micro_on_us:.1} us/stmt cached \
         ({micro_speedup:.2}x, {MICRO_ITERS} iterations)",
    );

    let workload = Arc::new(workload);
    let mut mismatches = 0usize;
    let mut level_json: Vec<String> = Vec::new();
    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    for &level in &levels {
        // A/B per level: plan cache off, then on — fresh server each so
        // neither run warms the other.
        let mut runs: Vec<(bool, RunStats, PlanCacheStats)> = Vec::new();
        let mut pipeline_on: Option<[PipelineStageSnapshot; 3]> = None;
        let mut report_on = String::new();
        let mut answer_hits_on = 0u64;
        let mut stage_windows_on = "[]".to_owned();
        for cache_on in [false, true] {
            let server = Arc::new(Server::start(
                generate_all(seed, scale),
                SimConfig::default(),
                ServerConfig {
                    workers,
                    queue_capacity: queue,
                    ..ServerConfig::default()
                },
            ));
            if !cache_on {
                server.set_plan_cache_capacity(0);
            }
            let stats = run_level(&server, &workload, &expected, level);
            mismatches += stats.mismatches;
            let pc = server.plan_cache_stats();
            let b = server.batch_stats();
            let c = server.cache().stats();
            println!(
                "concurrency {level:>3} plan_cache={}: {:.2}s wall, {:.1} req/s, latency ms \
                 p50={:.2} p95={:.2} p99={:.2} | plan hits={} misses={} hit_rate={:.1}% | \
                 lm rounds={} cross_request={} max_merged={} | cache hits={} evictions={} \
                 | answers {}",
                if cache_on { "on " } else { "off" },
                stats.wall_s,
                stats.rps,
                stats.p50_ms,
                stats.p95_ms,
                stats.p99_ms,
                pc.hits,
                pc.misses,
                pc.hit_rate() * 100.0,
                b.rounds,
                b.cross_request_rounds,
                b.max_merged_submissions,
                c.hits,
                c.evictions,
                if stats.mismatches == 0 {
                    "identical to serial".to_owned()
                } else {
                    format!("{} MISMATCHES", stats.mismatches)
                },
            );
            if cache_on {
                pipeline_on = Some(server.pipeline_snapshot());
                report_on = server.report();
                answer_hits_on = c.hits;
                stage_windows_on = json_stage_windows(&server);
                throughputs.push((level, stats.rps));
                if let Some(path) = &metrics_out {
                    match std::fs::write(path, server.metrics_text()) {
                        Ok(()) => eprintln!("serve-bench: wrote {path}"),
                        Err(e) => eprintln!("serve-bench: could not write {path}: {e}"),
                    }
                }
            }
            runs.push((cache_on, stats, pc));
            server.shutdown();
        }
        print!("{report_on}");
        let (off, on) = (&runs[0], &runs[1]);
        let speedup = on.1.rps / off.1.rps.max(f64::MIN_POSITIVE);
        println!(
            "concurrency {level:>3}: plan cache speedup {:.2}x (p95 {:.2} -> {:.2} ms)",
            speedup, off.1.p95_ms, on.1.p95_ms,
        );
        let pipeline = pipeline_on.expect("cache-on run recorded");
        let mut obj = String::new();
        let _ = write!(
            obj,
            "{{\"concurrency\":{level},\"cache_off\":{},\"cache_on\":{},\
             \"plan_cache\":{},\"speedup\":{speedup:.3},\"answer_cache_hits\":{answer_hits_on},\
             \"pipeline\":{},\"stage_windows\":{stage_windows_on}}}",
            json_run(&off.1),
            json_run(&on.1),
            json_plan_cache(&on.2),
            json_pipeline(&pipeline),
        );
        level_json.push(obj);
    }

    if let (Some(lo), Some(hi)) = (throughputs.first(), throughputs.last()) {
        if throughputs.len() >= 2 {
            println!(
                "speedup {}->{} clients: {:.2}x",
                lo.0,
                hi.0,
                hi.1 / lo.1.max(f64::MIN_POSITIVE),
            );
        }
    }

    let method_names: Vec<String> = methods
        .iter()
        .map(|m| format!("\"{}\"", m.as_str()))
        .collect();
    let json = format!(
        "{{\"bench\":\"serve-bench\",\"seed\":{seed},\"scale\":\"{scale_name}\",\
         \"methods\":[{}],\"requests\":{},\"serial_baseline\":{{\"wall_s\":{serial_wall:.4},\
         \"rps\":{serial_rps:.2}}},\"plan_microbench\":{{\"uncached_us_per_stmt\":{micro_off_us:.2},\
         \"cached_us_per_stmt\":{micro_on_us:.2},\"speedup\":{micro_speedup:.2}}},\
         \"mismatches\":{mismatches},\"levels\":[{}]}}\n",
        method_names.join(","),
        workload.len(),
        level_json.join(","),
    );
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("serve-bench: wrote {json_path}"),
        Err(e) => eprintln!("serve-bench: could not write {json_path}: {e}"),
    }

    if mismatches > 0 {
        eprintln!("serve-bench: FAILED — {mismatches} answers differ from the serial baseline");
        std::process::exit(1);
    }
}
