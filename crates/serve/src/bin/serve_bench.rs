//! `serve-bench` — a load generator for the serving runtime.
//!
//! Replays the 80 TAG-Bench questions against a fresh [`Server`] at each
//! requested concurrency level, printing throughput, client-side latency
//! percentiles, and batching/cache effectiveness. Every run is checked
//! byte-for-byte against a serial baseline computed with a plain
//! (unbatched, uncached) environment set — concurrency must never change
//! an answer.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tag_bench::build_benchmark;
use tag_core::answer::Answer;
use tag_core::env::TagEnv;
use tag_datagen::{generate_all, Scale};
use tag_lm::sim::{SimConfig, SimLm};
use tag_serve::{run_method, MethodName, Request, ServeError, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: serve-bench [--seed N] [--scale tiny|small|standard] \
         [--method text2sql|rag|rerank|text2sql_lm|handwritten|all] \
         [--concurrency 1,8] [--workers N] [--queue N]"
    );
    std::process::exit(2);
}

fn parse_scale(name: &str) -> Scale {
    match name {
        "standard" => Scale::default(),
        "small" => Scale {
            schools: 120,
            players: 150,
            posts: 60,
            customers: 120,
            drivers: 10,
        },
        "tiny" => Scale {
            schools: 40,
            players: 40,
            posts: 20,
            customers: 40,
            drivers: 6,
        },
        _ => usage(),
    }
}

/// One request of the replayed workload.
#[derive(Clone)]
struct WorkItem {
    domain: &'static str,
    method: MethodName,
    question: String,
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx].as_secs_f64() * 1e3
}

fn main() {
    let mut seed = 42u64;
    let mut scale = parse_scale("small");
    let mut methods = vec![MethodName::HandWritten];
    let mut levels = vec![1usize, 8];
    let mut workers = 8usize;
    let mut queue = 256usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale = parse_scale(&val()),
            "--method" => {
                let v = val();
                methods = if v == "all" {
                    MethodName::all().to_vec()
                } else {
                    vec![MethodName::parse(&v).unwrap_or_else(|| usage())]
                };
            }
            "--concurrency" => {
                levels = val()
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if levels.is_empty() {
                    usage();
                }
            }
            "--workers" => workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue" => queue = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    eprintln!("serve-bench: generating domains (seed {seed})...");
    let domains = generate_all(seed, scale);
    let queries = build_benchmark(&domains);
    let workload: Vec<WorkItem> = methods
        .iter()
        .flat_map(|&method| {
            queries.iter().map(move |q| WorkItem {
                domain: q.domain,
                method,
                question: q.question(),
            })
        })
        .collect();
    eprintln!(
        "serve-bench: {} requests ({} queries x {} methods)",
        workload.len(),
        queries.len(),
        methods.len(),
    );

    // Serial baseline: plain environments, no batching, no answer cache.
    let baseline_lm: Arc<dyn tag_lm::model::LanguageModel> =
        Arc::new(SimLm::new(SimConfig::default()));
    let baseline_envs: Vec<(&'static str, TagEnv)> = generate_all(seed, scale)
        .into_iter()
        .map(|d| (d.name, TagEnv::new(d.db, Arc::clone(&baseline_lm))))
        .collect();
    let env_for = |domain: &str| -> &TagEnv {
        &baseline_envs
            .iter()
            .find(|(n, _)| *n == domain)
            .expect("workload domain generated")
            .1
    };
    for (_, env) in &baseline_envs {
        let _ = env.row_store();
    }
    let serial_started = Instant::now();
    let expected: Vec<Answer> = workload
        .iter()
        .map(|w| run_method(w.method, &w.question, env_for(w.domain)))
        .collect();
    let serial_wall = serial_started.elapsed().as_secs_f64();
    println!(
        "serial baseline: {} requests in {serial_wall:.2}s ({:.1} req/s)",
        workload.len(),
        workload.len() as f64 / serial_wall,
    );

    let mut mismatches = 0usize;
    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    for &level in &levels {
        let server = Arc::new(Server::start(
            generate_all(seed, scale),
            SimConfig::default(),
            ServerConfig {
                workers,
                queue_capacity: queue,
                ..ServerConfig::default()
            },
        ));
        let next = Arc::new(AtomicUsize::new(0));
        let answers: Arc<Vec<Mutex<Option<Answer>>>> =
            Arc::new(workload.iter().map(|_| Mutex::new(None)).collect());
        let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let workload = Arc::new(workload.clone());
        let started = Instant::now();
        let clients: Vec<_> = (0..level.max(1))
            .map(|_| {
                let server = Arc::clone(&server);
                let next = Arc::clone(&next);
                let answers = Arc::clone(&answers);
                let latencies = Arc::clone(&latencies);
                let workload = Arc::clone(&workload);
                std::thread::spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(w) = workload.get(i) else { return };
                    let sent = Instant::now();
                    let resp = loop {
                        let req = Request::new(w.domain, w.method, w.question.clone());
                        match server.ask(req) {
                            Ok(resp) => break resp,
                            Err(ServeError::QueueFull) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("serve-bench request failed: {e}"),
                        }
                    };
                    latencies.lock().unwrap().push(sent.elapsed());
                    *answers[i].lock().unwrap() = Some(resp.answer);
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client thread");
        }
        let wall = started.elapsed().as_secs_f64();
        let mut lats = std::mem::take(&mut *latencies.lock().unwrap());
        lats.sort();
        let level_mismatches = workload
            .iter()
            .enumerate()
            .filter(|(i, _)| answers[*i].lock().unwrap().as_ref() != Some(&expected[*i]))
            .count();
        mismatches += level_mismatches;
        let b = server.batch_stats();
        let c = server.cache().stats();
        println!(
            "concurrency {level:>3}: {:.2}s wall, {:.1} req/s, latency ms p50={:.2} p95={:.2} \
             p99={:.2} | lm rounds={} cross_request={} max_merged={} | cache hits={} \
             evictions={} | answers {}",
            wall,
            workload.len() as f64 / wall,
            percentile(&lats, 0.50),
            percentile(&lats, 0.95),
            percentile(&lats, 0.99),
            b.rounds,
            b.cross_request_rounds,
            b.max_merged_submissions,
            c.hits,
            c.evictions,
            if level_mismatches == 0 {
                "identical to serial".to_owned()
            } else {
                format!("{level_mismatches} MISMATCHES")
            },
        );
        print!("{}", server.report());
        throughputs.push((level, workload.len() as f64 / wall));
        server.shutdown();
    }

    if let (Some(lo), Some(hi)) = (throughputs.first(), throughputs.last()) {
        if throughputs.len() >= 2 {
            println!(
                "speedup {}->{} clients: {:.2}x",
                lo.0,
                hi.0,
                hi.1 / lo.1.max(f64::MIN_POSITIVE),
            );
        }
    }
    if mismatches > 0 {
        eprintln!("serve-bench: FAILED — {mismatches} answers differ from the serial baseline");
        std::process::exit(1);
    }
}
