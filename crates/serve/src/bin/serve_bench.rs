//! `serve-bench` — a load generator for the serving runtime.
//!
//! Replays the 80 TAG-Bench questions against a fresh [`Server`] at each
//! requested concurrency level, printing throughput, client-side latency
//! percentiles, and batching/cache effectiveness. Each level runs twice
//! — plan cache disabled, then enabled — so the cache's contribution is
//! measured in the same report. Every run is checked byte-for-byte
//! against a serial baseline computed with a plain (unbatched, uncached)
//! environment set — neither concurrency nor caching must ever change an
//! answer. Results are also written as a machine-readable JSON artifact
//! (`BENCH_plancache.json` by default) so the perf trajectory is tracked
//! across PRs.

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tag_bench::build_benchmark;
use tag_core::answer::Answer;
use tag_core::env::TagEnv;
use tag_datagen::{generate_all, Scale};
use tag_lm::sim::{SimConfig, SimLm};
use tag_serve::{
    run_method, MethodName, PipelineStageSnapshot, Request, ServeError, Server, ServerConfig,
};
use tag_shard::ShardSet;
use tag_sql::PlanCacheStats;

fn usage() -> ! {
    eprintln!(
        "usage: serve-bench [--seed N] [--scale tiny|small|standard] \
         [--method text2sql|rag|rerank|text2sql_lm|handwritten|all] \
         [--concurrency 1,8] [--workers N] [--queue N] [--json PATH] \
         [--metrics-out PATH] [--shard-sweep] [--smoke]"
    );
    std::process::exit(2);
}

fn parse_scale(name: &str) -> Scale {
    match name {
        "standard" => Scale::default(),
        "small" => Scale {
            schools: 120,
            players: 150,
            posts: 60,
            customers: 120,
            drivers: 10,
        },
        "tiny" => Scale {
            schools: 40,
            players: 40,
            posts: 20,
            customers: 40,
            drivers: 6,
        },
        _ => usage(),
    }
}

/// One request of the replayed workload.
#[derive(Clone)]
struct WorkItem {
    domain: &'static str,
    method: MethodName,
    question: String,
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx].as_secs_f64() * 1e3
}

/// Client-side measurements of one replay run.
struct RunStats {
    wall_s: f64,
    rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mismatches: usize,
}

/// Replay the full workload against `server` with `level` client threads,
/// comparing every answer to `expected`.
fn run_level(
    server: &Arc<Server>,
    workload: &Arc<Vec<WorkItem>>,
    expected: &[Answer],
    level: usize,
) -> RunStats {
    let next = Arc::new(AtomicUsize::new(0));
    let answers: Arc<Vec<Mutex<Option<Answer>>>> =
        Arc::new(workload.iter().map(|_| Mutex::new(None)).collect());
    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let clients: Vec<_> = (0..level.max(1))
        .map(|_| {
            let server = Arc::clone(server);
            let next = Arc::clone(&next);
            let answers = Arc::clone(&answers);
            let latencies = Arc::clone(&latencies);
            let workload = Arc::clone(workload);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(w) = workload.get(i) else { return };
                let sent = Instant::now();
                let resp = loop {
                    let req = Request::new(w.domain, w.method, w.question.clone());
                    match server.ask(req) {
                        Ok(resp) => break resp,
                        Err(ServeError::QueueFull) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => panic!("serve-bench request failed: {e}"),
                    }
                };
                latencies.lock().push(sent.elapsed());
                *answers[i].lock() = Some(resp.answer);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let wall_s = started.elapsed().as_secs_f64();
    let mut lats = std::mem::take(&mut *latencies.lock());
    lats.sort();
    let mismatches = workload
        .iter()
        .enumerate()
        .filter(|(i, _)| answers[*i].lock().as_ref() != Some(&expected[*i]))
        .count();
    RunStats {
        wall_s,
        rps: workload.len() as f64 / wall_s,
        p50_ms: percentile(&lats, 0.50),
        p95_ms: percentile(&lats, 0.95),
        p99_ms: percentile(&lats, 0.99),
        mismatches,
    }
}

fn json_run(r: &RunStats) -> String {
    format!(
        "{{\"wall_s\":{:.4},\"rps\":{:.2},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3},\
         \"mismatches\":{}}}",
        r.wall_s, r.rps, r.p50_ms, r.p95_ms, r.p99_ms, r.mismatches,
    )
}

fn json_plan_cache(pc: &PlanCacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"invalidations\":{},\"entries\":{},\
         \"hit_rate\":{:.4}}}",
        pc.hits,
        pc.misses,
        pc.evictions,
        pc.invalidations,
        pc.entries,
        pc.hit_rate(),
    )
}

/// Rolling 10s per-stage quantiles from the server's windowed stage
/// histograms, captured right after a replay finishes (the window is
/// still hot). Stages with no traffic in the window are omitted.
fn json_stage_windows(server: &Server) -> String {
    let stages = server.stage_metrics();
    let mut out: Vec<String> = Vec::new();
    for stage in tag_trace::Stage::ALL {
        let w = stages.window(stage, 10);
        if w.count() == 0 {
            continue;
        }
        out.push(format!(
            "{{\"stage\":\"{}\",\"n\":{},\"rate\":{:.2},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\
             \"p99_ms\":{:.3}}}",
            stage.as_str(),
            w.count(),
            w.rate(),
            w.quantile(0.50).seconds * 1e3,
            w.quantile(0.95).seconds * 1e3,
            w.quantile(0.99).seconds * 1e3,
        ));
    }
    format!("[{}]", out.join(","))
}

fn json_pipeline(snap: &[PipelineStageSnapshot; 3]) -> String {
    let stages: Vec<String> = snap
        .iter()
        .map(|s| {
            format!(
                "{{\"stage\":\"{}\",\"workers\":{},\"processed\":{},\"busy_ms\":{:.3},\
                 \"occupancy\":{:.4}}}",
                s.name,
                s.workers,
                s.processed,
                s.busy.as_secs_f64() * 1e3,
                s.occupancy,
            )
        })
        .collect();
    format!("[{}]", stages.join(","))
}

/// One shard count's measurements in the scatter-gather sweep.
struct SweepLevel {
    shards: usize,
    wall_s: f64,
    rps: f64,
    mismatches: usize,
    scattered: u64,
    pruned: u64,
    fallbacks: u64,
}

/// The scatter-gather shard sweep (`--shard-sweep`): a keyed-aggregate
/// workload over the huge-tier schools domain at 1, 2, 4, and 8 shards,
/// every answer byte-compared against a plain unsharded database.
///
/// Keyed `City = '…'` filters prune each scatter to the owning shard,
/// so an 8-shard run scans ~1/8 of the partitioned rows per query where
/// the 1-shard run scans them all — that pruning, not thread
/// parallelism, is the throughput win the gate checks (≥3x at 8 shards
/// unless `--smoke`).
fn shard_sweep(seed: u64, smoke: bool, json_path: &str) {
    let rows = if smoke { 20_000 } else { 1_000_000 };
    eprintln!("serve-bench: shard sweep over {rows} schools rows (seed {seed})...");
    let baseline = tag_datagen::schools::generate_bulk(seed, rows);
    let cities: Vec<String> = {
        let rs = baseline
            .db
            .query("SELECT DISTINCT City FROM schools ORDER BY City")
            .expect("distinct cities");
        rs.rows
            .iter()
            .filter_map(|r| match &r[0] {
                tag_sql::Value::Text(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    };
    let n_queries = if smoke { 60 } else { 240 };
    let queries: Vec<String> = (0..n_queries)
        .map(|i| {
            let city = cities[i % cities.len()].replace('\'', "''");
            match i % 3 {
                0 => format!("SELECT COUNT(*) FROM schools WHERE City = '{city}'"),
                1 => format!("SELECT AVG(AvgScrMath) FROM schools WHERE City = '{city}'"),
                _ => format!(
                    "SELECT SUM(Enrollment), MIN(AvgScrRead), MAX(AvgScrRead) \
                     FROM schools WHERE City = '{city}'"
                ),
            }
        })
        .collect();
    eprintln!(
        "serve-bench: {} keyed queries over {} cities",
        queries.len(),
        cities.len()
    );
    let expected: Vec<String> = queries
        .iter()
        .map(|q| format!("{:?}", baseline.db.query(q).expect("baseline query").rows))
        .collect();

    let lm: Arc<dyn tag_lm::model::LanguageModel> = Arc::new(SimLm::new(SimConfig::default()));
    let mut levels: Vec<SweepLevel> = Vec::new();
    let mut mismatches_total = 0usize;
    for shards in [1usize, 2, 4, 8] {
        let set = ShardSet::new(
            tag_datagen::schools::generate_bulk(seed, rows),
            Arc::clone(&lm),
            shards,
        );
        let started = Instant::now();
        let mut mismatches = 0usize;
        for (q, want) in queries.iter().zip(&expected) {
            let got = format!("{:?}", set.env().db.query(q).expect("sweep query").rows);
            if &got != want {
                mismatches += 1;
            }
        }
        let wall_s = started.elapsed().as_secs_f64();
        let s = set.scatter_stats();
        let rps = queries.len() as f64 / wall_s.max(f64::MIN_POSITIVE);
        println!(
            "shards {shards}: {wall_s:.2}s wall, {rps:.1} req/s | scattered={} pruned={} \
             fallbacks={} rows={:?} | answers {}",
            s.scattered,
            s.pruned,
            s.fallbacks,
            set.shard_rows(),
            if mismatches == 0 {
                "identical to unsharded".to_owned()
            } else {
                format!("{mismatches} MISMATCHES")
            },
        );
        mismatches_total += mismatches;
        levels.push(SweepLevel {
            shards,
            wall_s,
            rps,
            mismatches,
            scattered: s.scattered,
            pruned: s.pruned,
            fallbacks: s.fallbacks,
        });
    }
    let speedup = levels.last().expect("levels").rps
        / levels.first().expect("levels").rps.max(f64::MIN_POSITIVE);
    println!("shard sweep speedup 1->8 shards: {speedup:.2}x");

    // Replay gate: the full benchmark (every method) through a sharded
    // server, byte-compared against a single-shard serial baseline.
    let replay_scale = parse_scale(if smoke { "tiny" } else { "small" });
    let (replay_requests, replay) = replay_gate(seed, replay_scale);
    mismatches_total += replay.mismatches;
    println!(
        "replay gate (8-shard server, all methods): {replay_requests} requests, \
         {:.1} req/s, {}",
        replay.rps,
        if replay.mismatches == 0 {
            "identical to serial".to_owned()
        } else {
            format!("{} MISMATCHES", replay.mismatches)
        },
    );

    let level_json: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "{{\"shards\":{},\"wall_s\":{:.4},\"rps\":{:.2},\"mismatches\":{},\
                 \"scattered\":{},\"pruned\":{},\"fallbacks\":{}}}",
                l.shards, l.wall_s, l.rps, l.mismatches, l.scattered, l.pruned, l.fallbacks,
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"shard-sweep\",\"seed\":{seed},\"rows\":{rows},\
         \"queries\":{},\"smoke\":{smoke},\"levels\":[{}],\
         \"speedup_8_vs_1\":{speedup:.3},\"replay\":{{\"requests\":{replay_requests},\
         \"rps\":{:.2},\"mismatches\":{}}}}}\n",
        queries.len(),
        level_json.join(","),
        replay.rps,
        replay.mismatches,
    );
    match std::fs::write(json_path, &json) {
        Ok(()) => eprintln!("serve-bench: wrote {json_path}"),
        Err(e) => eprintln!("serve-bench: could not write {json_path}: {e}"),
    }

    if mismatches_total > 0 {
        eprintln!("serve-bench: FAILED — {mismatches_total} sharded answers differ");
        std::process::exit(1);
    }
    if !smoke && speedup < 3.0 {
        eprintln!("serve-bench: FAILED — shard sweep speedup {speedup:.2}x < 3.0x");
        std::process::exit(1);
    }
}

/// Replay the whole benchmark (80 questions x every method) through an
/// 8-shard [`Server`] and compare each answer to a serial single-shard
/// baseline. Returns the request count and the run stats.
fn replay_gate(seed: u64, scale: Scale) -> (usize, RunStats) {
    let domains = generate_all(seed, scale);
    let queries = build_benchmark(&domains);
    let workload: Vec<WorkItem> = MethodName::all()
        .iter()
        .flat_map(|&method| {
            queries.iter().map(move |q| WorkItem {
                domain: q.domain,
                method,
                question: q.question(),
            })
        })
        .collect();
    let lm: Arc<dyn tag_lm::model::LanguageModel> = Arc::new(SimLm::new(SimConfig::default()));
    let baseline: Vec<(&'static str, ShardSet)> = domains
        .into_iter()
        .map(|d| (d.name, ShardSet::new(d, Arc::clone(&lm), 1)))
        .collect();
    for (_, set) in &baseline {
        let _ = set.env().row_store();
    }
    let expected: Vec<Answer> = workload
        .iter()
        .map(|w| {
            let env = baseline
                .iter()
                .find(|(n, _)| *n == w.domain)
                .expect("domain generated")
                .1
                .env();
            run_method(w.method, &w.question, env)
        })
        .collect();
    let server = Arc::new(Server::start(
        generate_all(seed, scale),
        SimConfig::default(),
        ServerConfig {
            workers: 8,
            queue_capacity: 256,
            shards: 8,
            ..ServerConfig::default()
        },
    ));
    let n = workload.len();
    let workload = Arc::new(workload);
    let stats = run_level(&server, &workload, &expected, 8);
    server.shutdown();
    (n, stats)
}

fn main() {
    let mut seed = 42u64;
    let mut scale_name = "small".to_owned();
    let mut methods = vec![MethodName::HandWritten];
    let mut levels = vec![1usize, 8];
    let mut workers = 8usize;
    let mut queue = 256usize;
    let mut json_path = "BENCH_plancache.json".to_owned();
    let mut metrics_out: Option<String> = None;
    let mut sweep = false;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale_name = val(),
            "--method" => {
                let v = val();
                methods = if v == "all" {
                    MethodName::all().to_vec()
                } else {
                    vec![MethodName::parse(&v).unwrap_or_else(|| usage())]
                };
            }
            "--concurrency" => {
                levels = val()
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if levels.is_empty() {
                    usage();
                }
            }
            "--workers" => workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue" => queue = val().parse().unwrap_or_else(|_| usage()),
            "--json" => json_path = val(),
            "--metrics-out" => metrics_out = Some(val()),
            "--shard-sweep" => sweep = true,
            // CI smoke preset: tiny data, one method, two levels.
            "--smoke" => {
                smoke = true;
                scale_name = "tiny".to_owned();
                methods = vec![MethodName::HandWritten];
                levels = vec![1, 4];
                workers = 4;
            }
            _ => usage(),
        }
    }
    let scale = parse_scale(&scale_name);

    if sweep {
        let path = if json_path == "BENCH_plancache.json" {
            "BENCH_shard.json"
        } else {
            json_path.as_str()
        };
        shard_sweep(seed, smoke, path);
        return;
    }

    eprintln!("serve-bench: generating domains (seed {seed})...");
    let domains = generate_all(seed, scale);
    let queries = build_benchmark(&domains);
    let workload: Vec<WorkItem> = methods
        .iter()
        .flat_map(|&method| {
            queries.iter().map(move |q| WorkItem {
                domain: q.domain,
                method,
                question: q.question(),
            })
        })
        .collect();
    eprintln!(
        "serve-bench: {} requests ({} queries x {} methods)",
        workload.len(),
        queries.len(),
        methods.len(),
    );

    // Serial baseline: single-shard sets (the scatter hook at one shard
    // is a straight pass-through to the only slice), no batching, no
    // answer cache.
    let baseline_lm: Arc<dyn tag_lm::model::LanguageModel> =
        Arc::new(SimLm::new(SimConfig::default()));
    let baseline_envs: Vec<(&'static str, ShardSet)> = generate_all(seed, scale)
        .into_iter()
        .map(|d| (d.name, ShardSet::new(d, Arc::clone(&baseline_lm), 1)))
        .collect();
    let env_for = |domain: &str| -> &TagEnv {
        baseline_envs
            .iter()
            .find(|(n, _)| *n == domain)
            .expect("workload domain generated")
            .1
            .env()
    };
    for (_, set) in &baseline_envs {
        let _ = set.env().row_store();
    }
    let serial_started = Instant::now();
    let expected: Vec<Answer> = workload
        .iter()
        .map(|w| run_method(w.method, &w.question, env_for(w.domain)))
        .collect();
    let serial_wall = serial_started.elapsed().as_secs_f64();
    let serial_rps = workload.len() as f64 / serial_wall;
    println!(
        "serial baseline: {} requests in {serial_wall:.2}s ({serial_rps:.1} req/s)",
        workload.len(),
    );

    // Plan-path microbench: the end-to-end request path is LM-dominated,
    // so the plan cache's win is isolated here — a join statement that is
    // expensive to bind/optimize (two wide schemas) but cheap to execute
    // (primary-key point lookups), repeated with the cache off then on.
    let micro_db = &env_for("california_schools").db;
    let micro_sql = "SELECT s.School, t.AvgScrVerbal FROM schools s \
                     JOIN satscores t ON s.CDSCode = t.cds WHERE s.CDSCode = 17";
    const MICRO_ITERS: u32 = 2000;
    let micro_run = |cache_capacity: usize| -> f64 {
        micro_db.set_plan_cache_capacity(cache_capacity);
        let t0 = Instant::now();
        for _ in 0..MICRO_ITERS {
            std::hint::black_box(micro_db.query(micro_sql).expect("microbench statement"));
        }
        t0.elapsed().as_secs_f64() * 1e6 / f64::from(MICRO_ITERS)
    };
    micro_run(0); // warm-up, and leaves the cache disabled for the off run
    let micro_off_us = micro_run(0);
    let micro_on_us = micro_run(128);
    let micro_speedup = micro_off_us / micro_on_us.max(f64::MIN_POSITIVE);
    println!(
        "plan path: {micro_off_us:.1} us/stmt uncached -> {micro_on_us:.1} us/stmt cached \
         ({micro_speedup:.2}x, {MICRO_ITERS} iterations)",
    );

    let workload = Arc::new(workload);
    let mut mismatches = 0usize;
    let mut level_json: Vec<String> = Vec::new();
    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    for &level in &levels {
        // A/B per level: plan cache off, then on — fresh server each so
        // neither run warms the other.
        let mut runs: Vec<(bool, RunStats, PlanCacheStats)> = Vec::new();
        let mut pipeline_on: Option<[PipelineStageSnapshot; 3]> = None;
        let mut report_on = String::new();
        let mut answer_hits_on = 0u64;
        let mut stage_windows_on = "[]".to_owned();
        for cache_on in [false, true] {
            let server = Arc::new(Server::start(
                generate_all(seed, scale),
                SimConfig::default(),
                ServerConfig {
                    workers,
                    queue_capacity: queue,
                    ..ServerConfig::default()
                },
            ));
            if !cache_on {
                server.set_plan_cache_capacity(0);
            }
            let stats = run_level(&server, &workload, &expected, level);
            mismatches += stats.mismatches;
            let pc = server.plan_cache_stats();
            let b = server.batch_stats();
            let c = server.cache().stats();
            println!(
                "concurrency {level:>3} plan_cache={}: {:.2}s wall, {:.1} req/s, latency ms \
                 p50={:.2} p95={:.2} p99={:.2} | plan hits={} misses={} hit_rate={:.1}% | \
                 lm rounds={} cross_request={} max_merged={} | cache hits={} evictions={} \
                 | answers {}",
                if cache_on { "on " } else { "off" },
                stats.wall_s,
                stats.rps,
                stats.p50_ms,
                stats.p95_ms,
                stats.p99_ms,
                pc.hits,
                pc.misses,
                pc.hit_rate() * 100.0,
                b.rounds,
                b.cross_request_rounds,
                b.max_merged_submissions,
                c.hits,
                c.evictions,
                if stats.mismatches == 0 {
                    "identical to serial".to_owned()
                } else {
                    format!("{} MISMATCHES", stats.mismatches)
                },
            );
            if cache_on {
                pipeline_on = Some(server.pipeline_snapshot());
                report_on = server.report();
                answer_hits_on = c.hits;
                stage_windows_on = json_stage_windows(&server);
                throughputs.push((level, stats.rps));
                if let Some(path) = &metrics_out {
                    match std::fs::write(path, server.metrics_text()) {
                        Ok(()) => eprintln!("serve-bench: wrote {path}"),
                        Err(e) => eprintln!("serve-bench: could not write {path}: {e}"),
                    }
                }
            }
            runs.push((cache_on, stats, pc));
            server.shutdown();
        }
        print!("{report_on}");
        let (off, on) = (&runs[0], &runs[1]);
        let speedup = on.1.rps / off.1.rps.max(f64::MIN_POSITIVE);
        println!(
            "concurrency {level:>3}: plan cache speedup {:.2}x (p95 {:.2} -> {:.2} ms)",
            speedup, off.1.p95_ms, on.1.p95_ms,
        );
        let pipeline = pipeline_on.expect("cache-on run recorded");
        let mut obj = String::new();
        let _ = write!(
            obj,
            "{{\"concurrency\":{level},\"cache_off\":{},\"cache_on\":{},\
             \"plan_cache\":{},\"speedup\":{speedup:.3},\"answer_cache_hits\":{answer_hits_on},\
             \"pipeline\":{},\"stage_windows\":{stage_windows_on}}}",
            json_run(&off.1),
            json_run(&on.1),
            json_plan_cache(&on.2),
            json_pipeline(&pipeline),
        );
        level_json.push(obj);
    }

    if let (Some(lo), Some(hi)) = (throughputs.first(), throughputs.last()) {
        if throughputs.len() >= 2 {
            println!(
                "speedup {}->{} clients: {:.2}x",
                lo.0,
                hi.0,
                hi.1 / lo.1.max(f64::MIN_POSITIVE),
            );
        }
    }

    let method_names: Vec<String> = methods
        .iter()
        .map(|m| format!("\"{}\"", m.as_str()))
        .collect();
    let json = format!(
        "{{\"bench\":\"serve-bench\",\"seed\":{seed},\"scale\":\"{scale_name}\",\
         \"methods\":[{}],\"requests\":{},\"serial_baseline\":{{\"wall_s\":{serial_wall:.4},\
         \"rps\":{serial_rps:.2}}},\"plan_microbench\":{{\"uncached_us_per_stmt\":{micro_off_us:.2},\
         \"cached_us_per_stmt\":{micro_on_us:.2},\"speedup\":{micro_speedup:.2}}},\
         \"mismatches\":{mismatches},\"levels\":[{}]}}\n",
        method_names.join(","),
        workload.len(),
        level_json.join(","),
    );
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("serve-bench: wrote {json_path}"),
        Err(e) => eprintln!("serve-bench: could not write {json_path}: {e}"),
    }

    if mismatches > 0 {
        eprintln!("serve-bench: FAILED — {mismatches} answers differ from the serial baseline");
        std::process::exit(1);
    }
}
