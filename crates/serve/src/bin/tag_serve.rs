//! `tag-serve` — a line-protocol server over the generated BIRD domains.
//!
//! Reads commands from stdin, one per line:
//!
//! ```text
//! ASK <domain> <method> <question…>      answer one question
//! EXPLAIN <domain> <select>              show the relational plan
//! EXPLAIN <domain> SEMPLAN <question…>   show the semantic plan
//! STATS                                  print the metrics report
//! METRICS                                print the Prometheus exposition
//! TRACE <id> [JSONL]                     print a captured request trace
//! QUIT                                   shut down
//! ```
//!
//! Replies to `ASK` are single lines:
//! `OK total=… queue=… cache=… trace=<id> <answer>` or `ERR <reason>`;
//! the trace id can be fed back to `TRACE` for the span tree (or JSONL
//! export) of that request.

use std::io::BufRead;
use std::time::Duration;
use tag_datagen::{generate_all, Scale};
use tag_lm::sim::SimConfig;
use tag_serve::{format_answer, parse_line, Command, Request, Server, ServerConfig, TraceLookup};

fn usage() -> ! {
    eprintln!(
        "usage: tag-serve [--workers N] [--queue N] [--seed N] [--scale tiny|small|standard] \
         [--shards N] [--deadline-ms N] [--trace-capacity N] [--tail-traces N] [--no-metrics]"
    );
    std::process::exit(2);
}

fn parse_scale(name: &str) -> Scale {
    match name {
        "standard" => Scale::default(),
        "small" => Scale {
            schools: 120,
            players: 150,
            posts: 60,
            customers: 120,
            drivers: 10,
        },
        "tiny" => Scale {
            schools: 40,
            players: 40,
            posts: 20,
            customers: 40,
            drivers: 6,
        },
        _ => usage(),
    }
}

fn main() {
    let mut config = ServerConfig::default();
    let mut seed = 42u64;
    let mut scale = parse_scale("small");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workers" => config.workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue" => config.queue_capacity = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale = parse_scale(&val()),
            "--shards" => config.shards = val().parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => {
                config.default_deadline =
                    Duration::from_millis(val().parse().unwrap_or_else(|_| usage()))
            }
            "--trace-capacity" => config.trace_capacity = val().parse().unwrap_or_else(|_| usage()),
            "--tail-traces" => config.tail_traces = val().parse().unwrap_or_else(|_| usage()),
            "--no-metrics" => config.metrics_enabled = false,
            _ => usage(),
        }
    }

    eprintln!("tag-serve: generating domains (seed {seed})...");
    let shards = config.shards.max(1);
    let server = Server::start(generate_all(seed, scale), SimConfig::default(), config);
    eprintln!(
        "tag-serve: ready; {shards} shard(s) per domain; domains: {}",
        server.domains().join(", ")
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Ok(Command::Ask {
                domain,
                method,
                question,
            }) => match server.ask(Request::new(domain, method, question)) {
                Ok(resp) => println!(
                    "OK total={:.3}ms queue={:.3}ms cache={} trace={} {}",
                    resp.total.as_secs_f64() * 1e3,
                    resp.queue_wait.as_secs_f64() * 1e3,
                    if resp.cache_hit { "hit" } else { "miss" },
                    resp.trace_id
                        .map(|id| id.to_string())
                        .unwrap_or_else(|| "-".to_owned()),
                    format_answer(&resp.answer),
                ),
                Err(e) => println!("ERR {e}"),
            },
            Ok(Command::Explain { domain, statement }) => {
                match server.explain(&domain, &statement) {
                    Ok(plan) => println!("{plan}"),
                    Err(e) => println!("ERR {e}"),
                }
            }
            Ok(Command::Stats) => print!("{}", server.report()),
            Ok(Command::Metrics) => print!("{}", server.metrics_text()),
            Ok(Command::Trace { id, jsonl }) => {
                let rendered = if jsonl {
                    server.trace_jsonl(id)
                } else {
                    server.trace_report(id)
                };
                match rendered {
                    Some(text) => print!("{text}"),
                    None => match server.trace_lookup(id) {
                        TraceLookup::Evicted => println!(
                            "ERR trace {id} evicted (aged out of the ring and tail \
                             reservoir; widen --trace-capacity to keep more)"
                        ),
                        _ => println!("ERR unknown trace id {id}"),
                    },
                }
            }
            Ok(Command::Quit) => break,
            Err(e) => println!("ERR {e}"),
        }
    }
    print!("{}", server.report());
    server.shutdown();
}
