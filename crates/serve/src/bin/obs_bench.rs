//! `obs-bench` — the observability overhead gate.
//!
//! Replays the TAG-Bench workload against two otherwise-identical
//! servers: one with the metrics hub enabled (windowed histograms,
//! collectors, exemplar capture, tail-sampled traces), one with the
//! null registry (`--no-metrics`: inactive instruments, one branch per
//! touch). Arms are *interleaved* — A, B, A, B, … — and each arm's
//! wall-clock is the **minimum** over its rounds, so ambient machine
//! noise (first-toucher page faults, turbo ramps) hits both arms
//! symmetrically instead of whichever ran first.
//!
//! Answers from both arms are compared request-for-request: telemetry
//! must never change a result. The run is written to `BENCH_obs.json`
//! and the process exits non-zero when the enabled arm's overhead
//! exceeds `--threshold` percent (default 2%) — the CI wiring makes
//! "observability got expensive" a failing build instead of a slow
//! regression.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tag_bench::build_benchmark;
use tag_core::answer::Answer;
use tag_datagen::{generate_all, Scale};
use tag_lm::sim::SimConfig;
use tag_serve::{MethodName, Request, ServeError, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: obs-bench [--seed N] [--scale tiny|small|standard] \
         [--method text2sql|rag|rerank|text2sql_lm|handwritten] [--concurrency N] \
         [--rounds N] [--threshold PCT] [--json PATH] [--smoke]"
    );
    std::process::exit(2);
}

fn parse_scale(name: &str) -> Scale {
    match name {
        "standard" => Scale::default(),
        "small" => Scale {
            schools: 120,
            players: 150,
            posts: 60,
            customers: 120,
            drivers: 10,
        },
        "tiny" => Scale {
            schools: 40,
            players: 40,
            posts: 20,
            customers: 40,
            drivers: 6,
        },
        _ => usage(),
    }
}

/// One request of the replayed workload.
#[derive(Clone)]
struct WorkItem {
    domain: &'static str,
    method: MethodName,
    question: String,
}

/// Replay the full workload once and return (wall seconds, answers in
/// workload order).
fn replay(
    server: &Arc<Server>,
    workload: &Arc<Vec<WorkItem>>,
    clients: usize,
) -> (f64, Vec<Answer>) {
    let next = Arc::new(AtomicUsize::new(0));
    let answers: Arc<Vec<parking_lot::Mutex<Option<Answer>>>> = Arc::new(
        workload
            .iter()
            .map(|_| parking_lot::Mutex::new(None))
            .collect(),
    );
    let started = Instant::now();
    let threads: Vec<_> = (0..clients.max(1))
        .map(|_| {
            let server = Arc::clone(server);
            let next = Arc::clone(&next);
            let answers = Arc::clone(&answers);
            let workload = Arc::clone(workload);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(w) = workload.get(i) else { return };
                let resp = loop {
                    let req = Request::new(w.domain, w.method, w.question.clone());
                    match server.ask(req) {
                        Ok(resp) => break resp,
                        Err(ServeError::QueueFull) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => panic!("obs-bench request failed: {e}"),
                    }
                };
                *answers[i].lock() = Some(resp.answer);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let wall = started.elapsed().as_secs_f64();
    let collected = answers
        .iter()
        .map(|a| a.lock().take().unwrap_or(Answer::Error("missing".into())))
        .collect();
    (wall, collected)
}

fn main() {
    let mut seed = 42u64;
    let mut scale_name = "tiny".to_owned();
    let mut method = MethodName::HandWritten;
    let mut clients = 4usize;
    let mut rounds = 5usize;
    let mut threshold_pct = 2.0f64;
    let mut json_path = "BENCH_obs.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale_name = val(),
            "--method" => method = MethodName::parse(&val()).unwrap_or_else(|| usage()),
            "--concurrency" => clients = val().parse().unwrap_or_else(|_| usage()),
            "--rounds" => rounds = val().parse::<usize>().unwrap_or_else(|_| usage()).max(1),
            "--threshold" => threshold_pct = val().parse().unwrap_or_else(|_| usage()),
            "--json" => json_path = val(),
            // CI preset: tiny data, fewer rounds, still a real A/B.
            "--smoke" => {
                scale_name = "tiny".to_owned();
                rounds = 3;
            }
            _ => usage(),
        }
    }
    let scale = parse_scale(&scale_name);

    eprintln!("obs-bench: generating domains (seed {seed})...");
    let domains = generate_all(seed, scale);
    let queries = build_benchmark(&domains);
    let workload: Arc<Vec<WorkItem>> = Arc::new(
        queries
            .iter()
            .map(|q| WorkItem {
                domain: q.domain,
                method,
                question: q.question(),
            })
            .collect(),
    );
    eprintln!(
        "obs-bench: {} requests, {clients} clients, {rounds} interleaved rounds per arm",
        workload.len(),
    );

    // Fresh server per round so neither arm warms the other's answer
    // cache; the per-round cost is identical across arms and the min
    // cancels generation noise.
    let start_server = |metrics_enabled: bool| -> Arc<Server> {
        Arc::new(Server::start(
            generate_all(seed, scale),
            SimConfig::default(),
            ServerConfig {
                metrics_enabled,
                ..ServerConfig::default()
            },
        ))
    };

    let mut wall_enabled: Vec<f64> = Vec::new();
    let mut wall_noop: Vec<f64> = Vec::new();
    let mut mismatches = 0usize;
    let mut reference: Option<Vec<Answer>> = None;
    for round in 0..rounds {
        for metrics_enabled in [true, false] {
            let server = start_server(metrics_enabled);
            let (wall, answers) = replay(&server, &workload, clients);
            match &reference {
                None => reference = Some(answers),
                Some(r) => {
                    mismatches += answers.iter().zip(r).filter(|(a, b)| a != b).count();
                }
            }
            if metrics_enabled {
                // One real scrape per round: exposition cost is part of
                // what the gate measures a server actually paying.
                let text = server.metrics_text();
                assert!(!text.is_empty(), "enabled hub rendered nothing");
                wall_enabled.push(wall);
            } else {
                assert!(server.metrics_text().is_empty(), "noop hub rendered output");
                wall_noop.push(wall);
            }
            eprintln!(
                "obs-bench: round {round} metrics={} {wall:.3}s",
                if metrics_enabled { "on " } else { "off" },
            );
            server.shutdown();
        }
    }

    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let best_enabled = min(&wall_enabled);
    let best_noop = min(&wall_noop);
    let overhead_pct = (best_enabled / best_noop.max(f64::MIN_POSITIVE) - 1.0) * 100.0;
    let pass = overhead_pct <= threshold_pct && mismatches == 0;
    println!(
        "obs-bench: enabled {best_enabled:.3}s vs noop {best_noop:.3}s -> overhead {overhead_pct:+.2}% \
         (threshold {threshold_pct:.1}%), answers {}",
        if mismatches == 0 {
            "identical".to_owned()
        } else {
            format!("{mismatches} MISMATCHES")
        },
    );

    let json = format!(
        "{{\"bench\":\"obs-bench\",\"seed\":{seed},\"scale\":\"{scale_name}\",\
         \"method\":\"{}\",\"requests\":{},\"concurrency\":{clients},\"rounds\":{rounds},\
         \"wall_enabled_s\":{best_enabled:.4},\"wall_noop_s\":{best_noop:.4},\
         \"overhead_pct\":{overhead_pct:.3},\"threshold_pct\":{threshold_pct:.1},\
         \"mismatches\":{mismatches},\"pass\":{pass}}}\n",
        method.as_str(),
        workload.len(),
    );
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("obs-bench: wrote {json_path}"),
        Err(e) => eprintln!("obs-bench: could not write {json_path}: {e}"),
    }

    if !pass {
        eprintln!(
            "obs-bench: FAILED — overhead {overhead_pct:+.2}% > {threshold_pct:.1}% or answers diverged"
        );
        std::process::exit(1);
    }
}
