//! The serving protocol: method names, the shared dispatch helper, and
//! the `ASK` line protocol used by the `tag-serve` binary.
//!
//! [`run_method`] is the single place that maps (method, question) to a
//! concrete TAG pipeline. The server's workers and every serial
//! baseline (tests, the load generator) call it, so concurrent and
//! serial runs are byte-identical by construction.

use tag_core::answer::Answer;
use tag_core::env::TagEnv;
use tag_core::methods::{HandWrittenTag, Rag, RetrievalLmRank, Text2Sql, Text2SqlLm};
use tag_core::model::TagMethod;
use tag_lm::nlq::NlQuery;

/// The five servable methods (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodName {
    /// Vanilla Text2SQL.
    Text2Sql,
    /// Row-level RAG.
    Rag,
    /// Retrieval + LM rank.
    Rerank,
    /// Text2SQL + LM generation.
    Text2SqlLm,
    /// Hand-written TAG pipelines.
    HandWritten,
}

impl MethodName {
    /// All methods, in Table 1 order.
    pub fn all() -> [MethodName; 5] {
        [
            MethodName::Text2Sql,
            MethodName::Rag,
            MethodName::Rerank,
            MethodName::Text2SqlLm,
            MethodName::HandWritten,
        ]
    }

    /// The wire token for this method.
    pub fn as_str(self) -> &'static str {
        match self {
            MethodName::Text2Sql => "text2sql",
            MethodName::Rag => "rag",
            MethodName::Rerank => "rerank",
            MethodName::Text2SqlLm => "text2sql_lm",
            MethodName::HandWritten => "handwritten",
        }
    }

    /// Parse a wire token (case-insensitive).
    pub fn parse(s: &str) -> Option<MethodName> {
        match s.to_ascii_lowercase().as_str() {
            "text2sql" => Some(MethodName::Text2Sql),
            "rag" => Some(MethodName::Rag),
            "rerank" => Some(MethodName::Rerank),
            "text2sql_lm" | "text2sqllm" => Some(MethodName::Text2SqlLm),
            "handwritten" | "tag" => Some(MethodName::HandWritten),
            _ => None,
        }
    }
}

impl std::fmt::Display for MethodName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Answer `question` with `method` over `env`.
///
/// Aggregation questions (`Summarize …` / `Provide information …`)
/// route to each method's aggregation variant, mirroring the benchmark
/// harness: those two query families are exactly the benchmark's
/// aggregation set.
pub fn run_method(method: MethodName, question: &str, env: &TagEnv) -> Answer {
    let parsed = NlQuery::parse(question);
    let aggregation = matches!(
        parsed,
        Some(NlQuery::Summarize { .. }) | Some(NlQuery::ProvideInfo { .. })
    );
    match method {
        MethodName::Text2Sql => Text2Sql.answer(question, env),
        MethodName::Rag => {
            let m = if aggregation {
                Rag::aggregation()
            } else {
                Rag::default()
            };
            m.answer(question, env)
        }
        MethodName::Rerank => {
            let m = if aggregation {
                RetrievalLmRank::aggregation()
            } else {
                RetrievalLmRank::default()
            };
            m.answer(question, env)
        }
        MethodName::Text2SqlLm => {
            let m = if aggregation {
                Text2SqlLm::aggregation()
            } else {
                Text2SqlLm::default()
            };
            m.answer(question, env)
        }
        // Hand-written pipelines run against the structured query when
        // the question parses (the paper's per-query expert code does);
        // otherwise fall back to the method's own text path.
        MethodName::HandWritten => match parsed {
            Some(q) => HandWrittenTag.answer_structured(&q, env),
            None => HandWrittenTag.answer(question, env),
        },
    }
}

/// One parsed protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `ASK <domain> <method> <question…>`
    Ask {
        /// Target domain name.
        domain: String,
        /// Method to run.
        method: MethodName,
        /// The natural-language question (rest of the line).
        question: String,
    },
    /// `EXPLAIN <domain> <statement…>` — render a plan without running
    /// it: `EXPLAIN <domain> SELECT …` for relational plans,
    /// `EXPLAIN <domain> SEMPLAN <question>` for semantic plans.
    Explain {
        /// Target domain name.
        domain: String,
        /// The statement after the domain (`SELECT …` or
        /// `SEMPLAN <question>`), passed through to the SQL surface.
        statement: String,
    },
    /// `STATS` — print the metrics report.
    Stats,
    /// `METRICS` — print the Prometheus-text exposition.
    Metrics,
    /// `TRACE <id> [JSONL]` — print a captured request trace as a span
    /// tree, or as JSONL when the `JSONL` token is present.
    Trace {
        /// The trace id from the `ASK` reply.
        id: u64,
        /// Emit one JSON object per span instead of the rendered tree.
        jsonl: bool,
    },
    /// `QUIT` — shut down.
    Quit,
}

/// Parse one protocol line. Returns `Err` with a human-readable message
/// on malformed input.
pub fn parse_line(line: &str) -> Result<Command, String> {
    let line = line.trim();
    let mut parts = line.splitn(4, char::is_whitespace);
    let verb = parts.next().unwrap_or("");
    match verb.to_ascii_uppercase().as_str() {
        "ASK" => {
            let domain = parts
                .next()
                .ok_or_else(|| "ASK needs: ASK <domain> <method> <question>".to_owned())?;
            let method_tok = parts
                .next()
                .ok_or_else(|| "ASK needs: ASK <domain> <method> <question>".to_owned())?;
            let method = MethodName::parse(method_tok).ok_or_else(|| {
                format!(
                    "unknown method {method_tok:?} (expected one of: {})",
                    MethodName::all().map(|m| m.as_str()).join(", ")
                )
            })?;
            let question = parts.next().unwrap_or("").trim().to_owned();
            if question.is_empty() {
                return Err("ASK needs a question".to_owned());
            }
            Ok(Command::Ask {
                domain: domain.to_owned(),
                method,
                question,
            })
        }
        "EXPLAIN" => {
            // Re-split: the statement keeps its own interior whitespace.
            let mut p = line.splitn(3, char::is_whitespace);
            let _verb = p.next();
            let domain = p
                .next()
                .ok_or_else(|| "EXPLAIN needs: EXPLAIN <domain> <statement>".to_owned())?;
            let statement = p.next().unwrap_or("").trim().to_owned();
            if statement.is_empty() {
                return Err("EXPLAIN needs: EXPLAIN <domain> <statement>".to_owned());
            }
            Ok(Command::Explain {
                domain: domain.to_owned(),
                statement,
            })
        }
        "STATS" => Ok(Command::Stats),
        "METRICS" => Ok(Command::Metrics),
        "TRACE" => {
            let id_tok = parts
                .next()
                .ok_or_else(|| "TRACE needs: TRACE <id> [JSONL]".to_owned())?;
            let id: u64 = id_tok
                .parse()
                .map_err(|_| format!("bad trace id {id_tok:?}"))?;
            let jsonl = match parts.next().map(str::trim) {
                None | Some("") => false,
                Some(tok) if tok.eq_ignore_ascii_case("jsonl") => true,
                Some(tok) => return Err(format!("unknown TRACE option {tok:?}")),
            };
            Ok(Command::Trace { id, jsonl })
        }
        "QUIT" | "EXIT" => Ok(Command::Quit),
        "" => Err("empty line".to_owned()),
        other => Err(format!(
            "unknown command {other:?} (ASK/EXPLAIN/STATS/METRICS/TRACE/QUIT)"
        )),
    }
}

/// Render an answer as a single protocol line (no interior newlines).
pub fn format_answer(a: &Answer) -> String {
    match a {
        Answer::List(v) => format!("LIST\t{}", v.join("\u{1f}")),
        Answer::Text(t) => format!("TEXT\t{}", t.replace('\n', " ")),
        Answer::Error(e) => format!("ERROR\t{}", e.replace('\n', " ")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_tokens_round_trip() {
        for m in MethodName::all() {
            assert_eq!(MethodName::parse(m.as_str()), Some(m));
        }
        assert_eq!(MethodName::parse("TAG"), Some(MethodName::HandWritten));
        assert_eq!(MethodName::parse("nope"), None);
    }

    #[test]
    fn ask_line_parses_with_question_intact() {
        let c = parse_line("ASK formula_1 rag Which driver won?  ").unwrap();
        assert_eq!(
            c,
            Command::Ask {
                domain: "formula_1".into(),
                method: MethodName::Rag,
                question: "Which driver won?".into(),
            }
        );
        assert!(parse_line("ASK onlydomain").is_err());
        assert!(parse_line("ASK d badmethod q").is_err());
        assert!(parse_line("ASK d rag").is_err());
        assert_eq!(parse_line("stats").unwrap(), Command::Stats);
        assert_eq!(parse_line("metrics").unwrap(), Command::Metrics);
        assert_eq!(parse_line("QUIT").unwrap(), Command::Quit);
        assert!(parse_line("").is_err());
        let err = parse_line("FROB").unwrap_err();
        assert!(err.contains("METRICS"), "{err}");
    }

    #[test]
    fn explain_line_keeps_statement_intact() {
        let c = parse_line("EXPLAIN formula_1 SELECT * FROM races WHERE year = 2008").unwrap();
        assert_eq!(
            c,
            Command::Explain {
                domain: "formula_1".into(),
                statement: "SELECT * FROM races WHERE year = 2008".into(),
            }
        );
        let c = parse_line("explain debit_card SEMPLAN How many schools are there?").unwrap();
        assert_eq!(
            c,
            Command::Explain {
                domain: "debit_card".into(),
                statement: "SEMPLAN How many schools are there?".into(),
            }
        );
        assert!(parse_line("EXPLAIN").is_err());
        assert!(parse_line("EXPLAIN onlydomain").is_err());
    }

    #[test]
    fn trace_line_parses_id_and_format() {
        assert_eq!(
            parse_line("TRACE 17").unwrap(),
            Command::Trace {
                id: 17,
                jsonl: false
            }
        );
        assert_eq!(
            parse_line("trace 3 jsonl").unwrap(),
            Command::Trace { id: 3, jsonl: true }
        );
        assert!(parse_line("TRACE").is_err());
        assert!(parse_line("TRACE notanumber").is_err());
        assert!(parse_line("TRACE 3 csv").is_err());
    }

    #[test]
    fn answers_render_single_line() {
        let l = format_answer(&Answer::List(vec!["a".into(), "b".into()]));
        assert!(l.starts_with("LIST\t"));
        assert!(!l.contains('\n'));
        let t = format_answer(&Answer::Text("x\ny".into()));
        assert_eq!(t, "TEXT\tx y");
        assert!(format_answer(&Answer::Error("e".into())).starts_with("ERROR\t"));
    }
}
