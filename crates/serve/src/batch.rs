//! Cross-request LM batching.
//!
//! Concurrent requests each issue small LM batches through their
//! domain's `SemEngine`. [`BatchLm`] sits between those engines and the
//! real model, coalescing submissions that arrive within a short window
//! into one shared inference round — the serving-time analogue of the
//! paper's batched-inference advantage (§4.3), applied *across*
//! requests instead of within one.
//!
//! Correctness: the simulated LM's response is a pure function of
//! (config, prompt), so batch composition never changes any answer —
//! only the shared virtual clock. Error isolation: the inner model
//! fails a whole round if any prompt oversteps the context window, so a
//! failed merged round is retried per-submission, reproducing exactly
//! the errors each request would have seen serially.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tag_lm::model::{LanguageModel, LmRequest, LmResponse, LmResult};

/// One waiting submission: its requests and a slot for the result.
struct Submission {
    requests: Vec<LmRequest>,
    slot: Arc<ReplySlot>,
}

/// Where a submission's result is delivered.
struct ReplySlot {
    result: Mutex<Option<LmResult<Vec<LmResponse>>>>,
    ready: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<Self> {
        Arc::new(ReplySlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn deliver(&self, r: LmResult<Vec<LmResponse>>) {
        *self.result.lock() = Some(r);
        self.ready.notify_all();
    }

    fn wait(&self) -> LmResult<Vec<LmResponse>> {
        let mut guard = self.result.lock();
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            self.ready.wait(&mut guard);
        }
    }
}

/// Shared batching state.
struct State {
    pending: Vec<Submission>,
    pending_prompts: usize,
    leader_active: bool,
}

/// Counters describing batching effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Submissions received (one per `generate_batch` call).
    pub submissions: u64,
    /// Inference rounds sent to the inner model.
    pub rounds: u64,
    /// Rounds that merged ≥ 2 submissions (cross-request batching).
    pub cross_request_rounds: u64,
    /// Total prompts across all rounds.
    pub prompts: u64,
    /// Largest number of submissions merged into one round.
    pub max_merged_submissions: u64,
    /// Rounds that failed merged and were retried per-submission.
    pub fallback_rounds: u64,
}

impl BatchStats {
    /// One-line text rendering, used by the STATS report.
    pub fn report_line(&self) -> String {
        format!(
            "lm batching: submissions={} rounds={} cross_request_rounds={} prompts={} \
             max_merged={} fallbacks={}",
            self.submissions,
            self.rounds,
            self.cross_request_rounds,
            self.prompts,
            self.max_merged_submissions,
            self.fallback_rounds
        )
    }
}

/// A [`LanguageModel`] adapter that coalesces concurrent submissions.
pub struct BatchLm {
    inner: Arc<dyn LanguageModel>,
    window: Duration,
    max_batch: usize,
    state: Mutex<State>,
    arrived: Condvar,
    submissions: AtomicU64,
    rounds: AtomicU64,
    cross_request_rounds: AtomicU64,
    prompts: AtomicU64,
    max_merged: AtomicU64,
    fallback_rounds: AtomicU64,
}

impl BatchLm {
    /// Wrap `inner`, merging submissions that arrive within `window` up
    /// to `max_batch` prompts per round.
    pub fn new(inner: Arc<dyn LanguageModel>, window: Duration, max_batch: usize) -> Arc<Self> {
        Arc::new(BatchLm {
            inner,
            window,
            max_batch: max_batch.max(1),
            state: Mutex::new(State {
                pending: Vec::new(),
                pending_prompts: 0,
                leader_active: false,
            }),
            arrived: Condvar::new(),
            submissions: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            cross_request_rounds: AtomicU64::new(0),
            prompts: AtomicU64::new(0),
            max_merged: AtomicU64::new(0),
            fallback_rounds: AtomicU64::new(0),
        })
    }

    /// Wrap with defaults suited to the simulated model: a 1ms window
    /// and the cost model's 64-prompt round cap.
    pub fn with_defaults(inner: Arc<dyn LanguageModel>) -> Arc<Self> {
        Self::new(inner, Duration::from_millis(1), 64)
    }

    /// The wrapped model.
    pub fn inner(&self) -> &Arc<dyn LanguageModel> {
        &self.inner
    }

    /// Current batching counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            submissions: self.submissions.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
            cross_request_rounds: self.cross_request_rounds.load(Ordering::Relaxed),
            prompts: self.prompts.load(Ordering::Relaxed),
            max_merged_submissions: self.max_merged.load(Ordering::Relaxed),
            fallback_rounds: self.fallback_rounds.load(Ordering::Relaxed),
        }
    }

    /// Run one merged round for `batch`, delivering every result.
    fn run_round(&self, batch: Vec<Submission>) {
        let merged: Vec<LmRequest> = batch
            .iter()
            .flat_map(|s| s.requests.iter().cloned())
            .collect();
        self.rounds.fetch_add(1, Ordering::Relaxed);
        self.prompts
            .fetch_add(merged.len() as u64, Ordering::Relaxed);
        self.max_merged
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        if batch.len() >= 2 {
            self.cross_request_rounds.fetch_add(1, Ordering::Relaxed);
        }
        match self.inner.generate_batch(&merged) {
            Ok(responses) => {
                let mut offset = 0;
                for sub in &batch {
                    let n = sub.requests.len();
                    sub.slot.deliver(Ok(responses[offset..offset + n].to_vec()));
                    offset += n;
                }
            }
            Err(_) if batch.len() >= 2 => {
                // A merged round fails as a unit (e.g. one oversized
                // prompt): retry each submission alone so every request
                // sees exactly the result it would have seen serially.
                self.fallback_rounds.fetch_add(1, Ordering::Relaxed);
                for sub in &batch {
                    self.rounds.fetch_add(1, Ordering::Relaxed);
                    sub.slot.deliver(self.inner.generate_batch(&sub.requests));
                }
            }
            Err(e) => {
                // Single submission: the error is its own.
                batch[0].slot.deliver(Err(e));
            }
        }
    }
}

impl LanguageModel for BatchLm {
    fn generate_batch(&self, requests: &[LmRequest]) -> LmResult<Vec<LmResponse>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        self.submissions.fetch_add(1, Ordering::Relaxed);
        let slot = ReplySlot::new();
        let is_leader = {
            let mut state = self.state.lock();
            state.pending.push(Submission {
                requests: requests.to_vec(),
                slot: Arc::clone(&slot),
            });
            state.pending_prompts += requests.len();
            self.arrived.notify_all();
            if state.leader_active {
                false
            } else {
                state.leader_active = true;
                true
            }
        };
        if !is_leader {
            return slot.wait();
        }
        // Leader: hold the window open, then drain and run the round.
        let deadline = Instant::now() + self.window;
        let batch = {
            let mut state = self.state.lock();
            while state.pending_prompts < self.max_batch {
                let timed_out = self.arrived.wait_until(&mut state, deadline).timed_out();
                if timed_out {
                    break;
                }
            }
            state.pending_prompts = 0;
            // Leadership is released before inference so new arrivals
            // during the round can start the next window immediately.
            state.leader_active = false;
            std::mem::take(&mut state.pending)
        };
        self.run_round(batch);
        slot.wait()
    }

    fn elapsed_seconds(&self) -> f64 {
        self.inner.elapsed_seconds()
    }

    fn reset_metrics(&self) {
        self.inner.reset_metrics();
    }

    fn batches(&self) -> u64 {
        self.inner.batches()
    }

    fn calls(&self) -> u64 {
        self.inner.calls()
    }

    fn context_window(&self) -> usize {
        self.inner.context_window()
    }

    fn usage(&self) -> (f64, u64, u64) {
        self.inner.usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use tag_lm::model::LmError;

    /// Deterministic echo model that counts rounds.
    struct EchoLm {
        rounds: AtomicU64,
        fail_prompt: Option<String>,
    }

    impl EchoLm {
        fn new() -> Self {
            EchoLm {
                rounds: AtomicU64::new(0),
                fail_prompt: None,
            }
        }

        fn failing_on(p: &str) -> Self {
            EchoLm {
                rounds: AtomicU64::new(0),
                fail_prompt: Some(p.to_owned()),
            }
        }
    }

    impl LanguageModel for EchoLm {
        fn generate_batch(&self, requests: &[LmRequest]) -> LmResult<Vec<LmResponse>> {
            self.rounds.fetch_add(1, Ordering::Relaxed);
            if let Some(bad) = &self.fail_prompt {
                if requests.iter().any(|r| &r.prompt == bad) {
                    return Err(LmError::ContextLength {
                        prompt_tokens: 99_999,
                        max_context: 8192,
                    });
                }
            }
            Ok(requests
                .iter()
                .map(|r| LmResponse {
                    text: format!("echo:{}", r.prompt),
                    prompt_tokens: 1,
                    completion_tokens: 1,
                })
                .collect())
        }
        fn elapsed_seconds(&self) -> f64 {
            0.0
        }
        fn reset_metrics(&self) {}
        fn batches(&self) -> u64 {
            self.rounds.load(Ordering::Relaxed)
        }
        fn calls(&self) -> u64 {
            0
        }
        fn context_window(&self) -> usize {
            8192
        }
    }

    #[test]
    fn single_submission_passes_through() {
        let batch = BatchLm::new(Arc::new(EchoLm::new()), Duration::from_millis(1), 64);
        let out = batch
            .generate_batch(&[LmRequest::new("a"), LmRequest::new("b")])
            .unwrap();
        assert_eq!(out[0].text, "echo:a");
        assert_eq!(out[1].text, "echo:b");
        let s = batch.stats();
        assert_eq!(s.submissions, 1);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.cross_request_rounds, 0);
    }

    #[test]
    fn concurrent_submissions_merge_and_stay_ordered() {
        let batch = BatchLm::new(Arc::new(EchoLm::new()), Duration::from_millis(25), 1024);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let b = Arc::clone(&batch);
                thread::spawn(move || {
                    let reqs: Vec<LmRequest> = (0..3)
                        .map(|i| LmRequest::new(format!("t{t}-{i}")))
                        .collect();
                    let out = b.generate_batch(&reqs).unwrap();
                    for (i, r) in out.iter().enumerate() {
                        assert_eq!(r.text, format!("echo:t{t}-{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = batch.stats();
        assert_eq!(s.submissions, 8);
        assert_eq!(s.prompts, 24);
        assert!(
            s.cross_request_rounds >= 1,
            "expected at least one merged round: {s:?}"
        );
        assert!(s.rounds < 8, "merging must reduce rounds: {s:?}");
    }

    #[test]
    fn merged_failure_falls_back_to_per_submission_results() {
        let batch = Arc::new(BatchLm::new(
            Arc::new(EchoLm::failing_on("poison")),
            Duration::from_millis(25),
            1024,
        ));
        let good = {
            let b = Arc::clone(&batch);
            thread::spawn(move || b.generate_batch(&[LmRequest::new("fine")]))
        };
        let bad = {
            let b = Arc::clone(&batch);
            thread::spawn(move || b.generate_batch(&[LmRequest::new("poison")]))
        };
        let good = good.join().unwrap();
        let bad = bad.join().unwrap();
        // The healthy submission succeeds even when merged with poison.
        assert_eq!(good.unwrap()[0].text, "echo:fine");
        assert!(matches!(bad, Err(LmError::ContextLength { .. })));
    }

    #[test]
    fn max_batch_closes_the_window_early() {
        // Window far longer than the test budget: only the prompt cap
        // can close it.
        let batch = BatchLm::new(Arc::new(EchoLm::new()), Duration::from_secs(600), 1);
        let out = batch.generate_batch(&[LmRequest::new("x")]).unwrap();
        assert_eq!(out[0].text, "echo:x");
    }
}
