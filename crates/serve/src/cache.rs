//! The sharded LRU answer cache.
//!
//! Keyed on `(domain, method, normalized question)`. Normalization is
//! deliberately conservative — whitespace collapsing and trailing
//! punctuation only — because benchmark questions are case- and
//! value-sensitive ("over 700" vs "over 705" must never collide, and
//! entity names keep their case).

use crate::protocol::MethodName;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use tag_core::answer::Answer;
use tag_semops::LruCache;

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted by the per-shard LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: u64,
}

/// A sharded, bounded answer cache safe for concurrent workers.
pub struct AnswerCache {
    shards: Vec<CacheShard>,
}

/// One cache shard: its LRU plus its own hit/miss counters, so STATS
/// and the `METRICS` exposition can show per-shard traffic (a skewed
/// key distribution shows up as one hot shard) instead of one
/// aggregate instrument.
struct CacheShard {
    entries: Mutex<LruCache<String, Answer>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

/// Normalize a question for cache keying: collapse interior whitespace,
/// trim, and drop one trailing `.`/`?`/`!`. Case is preserved.
pub fn normalize_question(q: &str) -> String {
    let collapsed: String = q.split_whitespace().collect::<Vec<_>>().join(" ");
    let trimmed = collapsed
        .strip_suffix(['.', '?', '!'])
        .unwrap_or(&collapsed);
    trimmed.trim_end().to_owned()
}

impl AnswerCache {
    /// A cache with `shards` shards sharing `capacity` total entries.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = (capacity / shards).max(1);
        AnswerCache {
            shards: (0..shards)
                .map(|_| CacheShard {
                    entries: Mutex::new(LruCache::new(per_shard)),
                    hits: std::sync::atomic::AtomicU64::new(0),
                    misses: std::sync::atomic::AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn key(domain: &str, method: MethodName, question: &str) -> String {
        // \x1f (unit separator) cannot appear in domain or method names,
        // so the composite key is unambiguous.
        format!(
            "{domain}\x1f{}\x1f{}",
            method.as_str(),
            normalize_question(question)
        )
    }

    fn shard_for(&self, key: &str) -> &CacheShard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up a cached answer, updating hit/miss counters and recency.
    pub fn get(&self, domain: &str, method: MethodName, question: &str) -> Option<Answer> {
        use std::sync::atomic::Ordering::Relaxed;
        let key = Self::key(domain, method, question);
        let shard = self.shard_for(&key);
        let found = shard.entries.lock().get(&key).cloned();
        match &found {
            Some(_) => shard.hits.fetch_add(1, Relaxed),
            None => shard.misses.fetch_add(1, Relaxed),
        };
        found
    }

    /// Insert an answer (errors are the caller's choice to cache or not).
    pub fn insert(&self, domain: &str, method: MethodName, question: &str, answer: Answer) {
        let key = Self::key(domain, method, question);
        self.shard_for(&key).entries.lock().insert(key, answer);
    }

    /// Number of internal shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Counters of one internal shard.
    pub fn shard_stats(&self, shard: usize) -> CacheStats {
        use std::sync::atomic::Ordering::Relaxed;
        let s = &self.shards[shard];
        let entries = s.entries.lock();
        CacheStats {
            hits: s.hits.load(Relaxed),
            misses: s.misses.load(Relaxed),
            evictions: entries.evictions(),
            len: entries.len() as u64,
        }
    }

    /// Aggregate counters over all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in 0..self.shards.len() {
            let s = self.shard_stats(shard);
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.len += s.len;
        }
        total
    }

    /// Drop every entry and reset counters.
    pub fn clear(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        for s in &self.shards {
            s.entries.lock().clear();
            s.hits.store(0, Relaxed);
            s.misses.store(0, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_is_conservative() {
        assert_eq!(
            normalize_question("  How   many\tschools? "),
            "How many schools"
        );
        // Case and values are preserved: these must stay distinct.
        assert_ne!(
            normalize_question("schools with AvgScrMath over 700"),
            normalize_question("schools with AvgScrMath over 705")
        );
        assert_ne!(
            normalize_question("Bay Area"),
            normalize_question("bay area")
        );
        // Only ONE trailing punctuation mark is stripped.
        assert_eq!(normalize_question("why?!"), "why?");
    }

    #[test]
    fn hit_miss_and_domain_isolation() {
        let c = AnswerCache::new(64, 4);
        let a = Answer::List(vec!["x".into()]);
        assert!(c.get("d1", MethodName::Rag, "q").is_none());
        c.insert("d1", MethodName::Rag, "q", a.clone());
        assert_eq!(c.get("d1", MethodName::Rag, "q"), Some(a.clone()));
        // Same question, different domain or method: miss.
        assert!(c.get("d2", MethodName::Rag, "q").is_none());
        assert!(c.get("d1", MethodName::Text2Sql, "q").is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.len, 1);
    }

    #[test]
    fn whitespace_variants_share_an_entry() {
        let c = AnswerCache::new(64, 4);
        c.insert(
            "d",
            MethodName::HandWritten,
            "How many  schools?",
            Answer::Text("5".into()),
        );
        assert!(c
            .get("d", MethodName::HandWritten, "  How many schools?  ")
            .is_some());
    }

    #[test]
    fn per_shard_stats_sum_to_the_aggregate() {
        let c = AnswerCache::new(64, 4);
        for i in 0..16 {
            let q = format!("q{i}");
            assert!(c.get("d", MethodName::Rag, &q).is_none());
            c.insert("d", MethodName::Rag, &q, Answer::Text(String::new()));
            assert!(c.get("d", MethodName::Rag, &q).is_some());
        }
        assert_eq!(c.shard_count(), 4);
        let mut hits = 0;
        let mut misses = 0;
        let mut len = 0;
        for shard in 0..c.shard_count() {
            let s = c.shard_stats(shard);
            hits += s.hits;
            misses += s.misses;
            len += s.len;
        }
        let total = c.stats();
        assert_eq!((hits, misses, len), (16, 16, 16));
        assert_eq!((total.hits, total.misses, total.len), (16, 16, 16));
    }

    #[test]
    fn eviction_counts_aggregate_across_shards() {
        let c = AnswerCache::new(4, 4); // 1 entry per shard
        for i in 0..64 {
            c.insert(
                "d",
                MethodName::Rag,
                &format!("q{i}"),
                Answer::Text(String::new()),
            );
        }
        let s = c.stats();
        assert!(s.evictions > 0);
        assert!(s.len <= 4);
        c.clear();
        assert_eq!(c.stats().len, 0);
        assert_eq!(c.stats().evictions, 0);
    }
}
