//! `tag-serve`: a concurrent multi-domain query-serving runtime for the
//! TAG pipelines.
//!
//! The benchmark crates answer one question at a time; this crate turns
//! the same environments into a server:
//!
//! - [`Server`] owns one shared [`TagEnv`](tag_core::env::TagEnv) per
//!   BIRD domain and runs a three-stage pipeline (`syn` → `exec` →
//!   `gen`) of worker pools connected by bounded channels over a bounded
//!   admission queue, with per-request deadlines and typed load-shedding
//!   ([`ServeError::QueueFull`], [`ServeError::DeadlineExceeded`]).
//!   Stage occupancy accumulates in [`PipelineMetrics`]; the engine-level
//!   plan cache (see `tag_sql::PlanCache`) is surfaced per server via
//!   [`Server::plan_cache_stats`].
//! - [`BatchLm`] coalesces semantic-operator LM calls from *different*
//!   concurrent requests into shared inference rounds — the paper's
//!   batched-inference advantage applied across requests.
//! - [`AnswerCache`] is a sharded LRU keyed on
//!   `(domain, method, normalized question)`.
//! - [`MetricsRegistry`] counts admissions, sheds, cache traffic, and
//!   latency histograms (queue wait / exec / end-to-end) with a text
//!   report. A shared [`tag_metrics::MetricsHub`] adds rolling 10s/60s
//!   windowed twins of every latency surface and renders the
//!   Prometheus-text exposition behind the `METRICS` command.
//! - Every executed request is traced through `tag-trace`: the captured
//!   span tree is kept in a bounded [`TraceStore`] ring with a
//!   tail-sampling reservoir for slow/error traces (`TRACE <id>`
//!   retrieves it, as a tree or JSONL; [`TraceLookup`] distinguishes
//!   evicted ids from unknown ones), and per-stage aggregates
//!   accumulate in [`StageMetrics`] for the `STATS` report.
//!
//! Three binaries ship with the crate: `tag-serve`, a stdin/stdout line
//! server speaking `ASK <domain> <method> <question>`; `serve-bench`, a
//! load generator replaying the 80 TAG-Bench queries at configurable
//! concurrency; and `obs-bench`, the observability overhead gate that
//! replays the benchmark with the hub enabled vs the null registry.

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod trace;

pub use batch::{BatchLm, BatchStats};
pub use cache::{normalize_question, AnswerCache, CacheStats};
pub use metrics::{
    Histogram, MetricsRegistry, PipelineMetrics, PipelineStageSnapshot, StageMetrics,
    PIPELINE_STAGE_NAMES, STAGE_EXEC, STAGE_GEN, STAGE_SYN,
};
pub use protocol::{format_answer, parse_line, run_method, Command, MethodName};
pub use server::{ReplyHandle, Request, Response, ServeError, Server, ServerConfig};
pub use trace::{TraceLookup, TraceStore};
