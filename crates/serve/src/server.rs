//! The serving runtime: a three-stage pipeline (`syn` → `exec` → `gen`)
//! over a bounded admission queue, answering TAG questions against
//! shared per-domain environments.
//!
//! Each stage runs on its own worker pool connected by bounded
//! channels: `syn` workers handle admission bookkeeping, deadlines, and
//! the answer-cache fast path; `exec` workers run the method (the
//! expensive part, dominated by LM batching rounds); `gen` workers do
//! post-processing — trace capture, answer-cache fill, metrics, and the
//! reply. Splitting the stages lets request N+1's admission and cache
//! lookup (and its SQL, once an `exec` worker frees up) overlap request
//! N's in-flight LM rounds instead of serializing behind them, so
//! wall-clock tracks the LM, not the sum of stages.
//!
//! Admission control is explicit: a full queue sheds the request with
//! [`ServeError::QueueFull`] instead of queueing unboundedly, and a
//! request whose deadline passes while queued is dropped at dequeue
//! (checked again at the `exec` hand-off) with
//! [`ServeError::DeadlineExceeded`] rather than wasting a worker on an
//! answer nobody is waiting for.

use crate::batch::{BatchLm, BatchStats};
use crate::cache::AnswerCache;
use crate::metrics::{
    MetricsRegistry, PipelineMetrics, PipelineStageSnapshot, StageMetrics, STAGE_EXEC, STAGE_GEN,
    STAGE_SYN,
};
use crate::protocol::{run_method, MethodName};
use crate::trace::{TraceLookup, TraceStore};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tag_core::answer::Answer;
use tag_core::env::TagEnv;
use tag_datagen::DomainData;
use tag_lm::sim::{SimConfig, SimLm};
use tag_metrics::{MetricsHub, Sample};
use tag_shard::{Coordinator, ShardSet};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// `exec`-stage worker threads (run the methods — the expensive pool).
    pub workers: usize,
    /// `syn`-stage worker threads (admission, deadline, cache fast path).
    pub syn_workers: usize,
    /// `gen`-stage worker threads (traces, cache fill, reply).
    pub gen_workers: usize,
    /// Bounded depth of the channels between pipeline stages. Kept small
    /// so admission-queue shedding still engages under saturation instead
    /// of requests hiding in inter-stage buffers.
    pub stage_capacity: usize,
    /// Bounded admission-queue depth; beyond it requests are shed.
    pub queue_capacity: usize,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline: Duration,
    /// Total answer-cache entries (split across shards).
    pub cache_capacity: usize,
    /// Answer-cache shard count.
    pub cache_shards: usize,
    /// Cross-request batching window.
    pub batch_window: Duration,
    /// Prompt cap per merged inference round.
    pub max_batch: usize,
    /// Most recent request traces kept for `TRACE <id>` (0 disables
    /// per-request tracing entirely).
    pub trace_capacity: usize,
    /// Slots in the tail-sampling reservoir that keeps the slowest and
    /// error traces after they age out of the FIFO ring, so the trace
    /// ids that windowed exemplars point at stay resolvable.
    pub tail_traces: usize,
    /// Record hub-backed windowed metrics and serve the `METRICS`
    /// exposition. When false the hub is the null registry: instruments
    /// are inactive (one branch per touch) and `METRICS` renders empty.
    pub metrics_enabled: bool,
    /// Data shards per domain. Each domain becomes a [`ShardSet`]: a
    /// coordinator environment over the full database plus this many
    /// hash-partitioned shard environments that scatterable plan
    /// fragments fan out to. `1` keeps a single (trivially pruned)
    /// shard; answers are byte-identical at every count.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            syn_workers: 2,
            gen_workers: 2,
            stage_capacity: 4,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(10),
            cache_capacity: 1024,
            cache_shards: 8,
            batch_window: Duration::from_millis(1),
            max_batch: 64,
            trace_capacity: 256,
            tail_traces: 16,
            metrics_enabled: true,
            shards: 1,
        }
    }
}

/// Why a request was not answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Shed at admission: the bounded queue was full.
    QueueFull,
    /// Dropped at dequeue: the deadline passed while queued.
    DeadlineExceeded,
    /// The domain is not served.
    UnknownDomain(String),
    /// The server is shutting down.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "queue full (request shed)"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded while queued"),
            ServeError::UnknownDomain(d) => write!(f, "unknown domain {d:?}"),
            ServeError::Shutdown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One question for the server.
#[derive(Debug, Clone)]
pub struct Request {
    /// Target domain.
    pub domain: String,
    /// Method to run.
    pub method: MethodName,
    /// The natural-language question.
    pub question: String,
    /// Per-request deadline; `None` uses the server default.
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request with the default deadline.
    pub fn new(domain: impl Into<String>, method: MethodName, question: impl Into<String>) -> Self {
        Request {
            domain: domain.into(),
            method,
            question: question.into(),
            deadline: None,
        }
    }
}

/// A served answer with its timing breakdown.
#[derive(Debug, Clone)]
pub struct Response {
    /// The answer.
    pub answer: Answer,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Method execution time (zero on a cache hit).
    pub exec: Duration,
    /// End-to-end time from admission to reply.
    pub total: Duration,
    /// Whether the answer came from the answer cache.
    pub cache_hit: bool,
    /// Id of the captured trace (`TRACE <id>` retrieves it); `None` on
    /// cache hits and when tracing is disabled.
    pub trace_id: Option<u64>,
}

/// Where a request's outcome is delivered.
struct ReplyCell {
    result: Mutex<Option<Result<Response, ServeError>>>,
    ready: Condvar,
}

impl ReplyCell {
    fn new() -> Arc<Self> {
        Arc::new(ReplyCell {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn deliver(&self, r: Result<Response, ServeError>) {
        *self.result.lock() = Some(r);
        self.ready.notify_all();
    }
}

/// A ticket for an admitted request; [`wait`](ReplyHandle::wait) blocks
/// until a worker replies.
pub struct ReplyHandle {
    cell: Arc<ReplyCell>,
}

impl ReplyHandle {
    /// Block until the request completes (or is dropped at dequeue).
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut guard = self.cell.result.lock();
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            self.cell.ready.wait(&mut guard);
        }
    }
}

/// An admitted request, headed for a `syn` worker.
struct Job {
    req: Request,
    enqueued: Instant,
    reply: Arc<ReplyCell>,
}

/// A request past admission + cache lookup, headed for an `exec` worker.
struct ExecJob {
    req: Request,
    enqueued: Instant,
    queue_wait: Duration,
    reply: Arc<ReplyCell>,
}

/// An executed request, headed for a `gen` worker to finish and reply.
struct GenJob {
    req: Request,
    enqueued: Instant,
    queue_wait: Duration,
    reply: Arc<ReplyCell>,
    answer: Answer,
    exec: Duration,
    spans: Vec<tag_trace::SpanRecord>,
    trace_id: Option<u64>,
}

/// State shared by the admission path and every worker.
struct Shared {
    /// Per-domain shard sets. Requests execute against the set's
    /// *coordinator* env; its database scatters eligible fragments
    /// across the shard envs transparently.
    envs: HashMap<String, ShardSet>,
    cache: Arc<AnswerCache>,
    /// The workspace metrics hub (the null registry when
    /// [`ServerConfig::metrics_enabled`] is off). Its collectors
    /// capture only the individual `Arc`s they sample — never this
    /// struct — so the hub cannot keep the server alive through itself.
    hub: Arc<MetricsHub>,
    metrics: Arc<MetricsRegistry>,
    stages: StageMetrics,
    pipeline: PipelineMetrics,
    batch: Arc<BatchLm>,
    traces: TraceStore,
    default_deadline: Duration,
    /// Pool sizes indexed by `STAGE_SYN`/`STAGE_EXEC`/`STAGE_GEN`.
    stage_workers: [usize; 3],
    started: Instant,
}

/// The concurrent multi-domain serving runtime.
pub struct Server {
    shared: Arc<Shared>,
    tx: Mutex<Option<SyncSender<Job>>>,
    /// Pipeline pools, joined in stage order on shutdown (dropping the
    /// admission sender cascades: `syn` exits drop the `exec` senders,
    /// `exec` exits drop the `gen` senders).
    syn_pool: Mutex<Vec<JoinHandle<()>>>,
    exec_pool: Mutex<Vec<JoinHandle<()>>>,
    gen_pool: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Start a server over `domains`, sharing one simulated LM (behind
    /// the cross-request [`BatchLm`]) across every domain environment.
    /// Each domain is partitioned into [`ServerConfig::shards`] shards
    /// behind a coordinator; only the coordinator env builds a row
    /// store or reports to the metrics hub (scattered fragments do
    /// their shard-side work inside the coordinator's instrumented
    /// query).
    ///
    /// Retrieval indexes are built eagerly so the first request pays no
    /// warm-up cost (the paper builds its FAISS indexes offline too).
    pub fn start(domains: Vec<DomainData>, lm_config: SimConfig, config: ServerConfig) -> Self {
        let hub = Arc::new(if config.metrics_enabled {
            MetricsHub::new()
        } else {
            MetricsHub::noop()
        });
        let sim: Arc<dyn tag_lm::model::LanguageModel> = Arc::new(SimLm::new(lm_config));
        let batch = BatchLm::new(sim, config.batch_window, config.max_batch);
        let mut envs = HashMap::new();
        for d in domains {
            let name = d.name;
            let set = ShardSet::new(
                d,
                Arc::clone(&batch) as Arc<dyn tag_lm::model::LanguageModel>,
                config.shards.max(1),
            );
            let _ = set.env().row_store();
            if hub.is_enabled() {
                set.env().db.install_metrics_hub(Arc::clone(&hub));
            }
            envs.insert(name.to_owned(), set);
        }
        let stage_workers = [
            config.syn_workers.max(1),
            config.workers.max(1),
            config.gen_workers.max(1),
        ];
        let started = Instant::now();
        let cache = Arc::new(AnswerCache::new(config.cache_capacity, config.cache_shards));
        let metrics = Arc::new(MetricsRegistry::with_hub(&hub));
        register_collectors(&hub, &metrics, &cache, &batch, &envs, started);
        let shared = Arc::new(Shared {
            stages: StageMetrics::with_hub(&hub),
            pipeline: PipelineMetrics::with_hub(&hub),
            envs,
            cache,
            hub,
            metrics,
            batch,
            traces: TraceStore::with_tail(config.trace_capacity, config.tail_traces),
            default_deadline: config.default_deadline,
            stage_workers,
            started,
        });
        let (tx, syn_rx) = sync_channel::<Job>(config.queue_capacity.max(1));
        let (exec_tx, exec_rx) = sync_channel::<ExecJob>(config.stage_capacity.max(1));
        let (gen_tx, gen_rx) = sync_channel::<GenJob>(config.stage_capacity.max(1));
        let syn_rx = Arc::new(Mutex::new(syn_rx));
        let exec_rx = Arc::new(Mutex::new(exec_rx));
        let gen_rx = Arc::new(Mutex::new(gen_rx));
        let spawn = |name: String, f: Box<dyn FnOnce() + Send>| {
            std::thread::Builder::new()
                .name(name.clone())
                .spawn(f)
                .unwrap_or_else(|e| panic!("cannot spawn stage worker {name}: {e}"))
        };
        let syn_pool = (0..stage_workers[STAGE_SYN])
            .map(|i| {
                let rx = Arc::clone(&syn_rx);
                let next = exec_tx.clone();
                let shared = Arc::clone(&shared);
                spawn(
                    format!("tag-serve-syn-{i}"),
                    Box::new(move || syn_loop(&rx, &next, &shared)),
                )
            })
            .collect();
        let exec_pool = (0..stage_workers[STAGE_EXEC])
            .map(|i| {
                let rx = Arc::clone(&exec_rx);
                let next = gen_tx.clone();
                let shared = Arc::clone(&shared);
                spawn(
                    format!("tag-serve-exec-{i}"),
                    Box::new(move || exec_loop(&rx, &next, &shared)),
                )
            })
            .collect();
        let gen_pool = (0..stage_workers[STAGE_GEN])
            .map(|i| {
                let rx = Arc::clone(&gen_rx);
                let shared = Arc::clone(&shared);
                spawn(
                    format!("tag-serve-gen-{i}"),
                    Box::new(move || gen_loop(&rx, &shared)),
                )
            })
            .collect();
        // The master stage senders die here: each stage's channel stays
        // open exactly as long as the upstream pool does.
        drop(exec_tx);
        drop(gen_tx);
        Server {
            shared,
            tx: Mutex::new(Some(tx)),
            syn_pool: Mutex::new(syn_pool),
            exec_pool: Mutex::new(exec_pool),
            gen_pool: Mutex::new(gen_pool),
        }
    }

    /// Served domain names (sorted).
    pub fn domains(&self) -> Vec<String> {
        let mut v: Vec<String> = self.shared.envs.keys().cloned().collect();
        v.sort();
        v
    }

    /// The shared coordinator environment for `domain`, if served.
    pub fn env(&self, domain: &str) -> Option<&Arc<TagEnv>> {
        self.shared.envs.get(domain).map(ShardSet::env)
    }

    /// The full shard set for `domain` (coordinator plus shard envs,
    /// scatter counters), if served.
    pub fn shard_set(&self, domain: &str) -> Option<&ShardSet> {
        self.shared.envs.get(domain)
    }

    /// Serving counters and histograms.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// Cross-request batching counters.
    pub fn batch_stats(&self) -> BatchStats {
        self.shared.batch.stats()
    }

    /// The answer cache (for stats or explicit invalidation).
    pub fn cache(&self) -> &AnswerCache {
        &self.shared.cache
    }

    /// Per-stage aggregates over all traced requests.
    pub fn stage_metrics(&self) -> &StageMetrics {
        &self.shared.stages
    }

    /// Pipeline occupancy and throughput per stage pool.
    pub fn pipeline_snapshot(&self) -> [PipelineStageSnapshot; 3] {
        self.shared
            .pipeline
            .snapshot(self.shared.stage_workers, self.shared.started.elapsed())
    }

    /// Plan-cache counters aggregated across every served domain —
    /// each domain's coordinator env plus all of its shard envs (which
    /// own independent caches).
    pub fn plan_cache_stats(&self) -> tag_sql::PlanCacheStats {
        let mut total = tag_sql::PlanCacheStats::default();
        for set in self.shared.envs.values() {
            total.add(&set.env().db.plan_cache_stats());
            for env in set.shard_envs() {
                total.add(&env.db.plan_cache_stats());
            }
        }
        total
    }

    /// Resize every domain's plan cache (0 disables them) — the A/B
    /// switch serve-bench uses to measure the cache's contribution.
    /// Applies to coordinator and shard envs alike.
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        for set in self.shared.envs.values() {
            set.env().db.set_plan_cache_capacity(capacity);
            for env in set.shard_envs() {
                env.db.set_plan_cache_capacity(capacity);
            }
        }
    }

    /// Render a plan for `statement` against `domain` without executing
    /// it, through the SQL surface's `EXPLAIN`: `SELECT …` statements
    /// show the relational plan, `SEMPLAN <question>` shows the
    /// semantic plan a canonical question compiles to (after the
    /// currently active rewrite rules), and `VERIFY <question>` runs
    /// the static checker over that plan (well-formedness, rewrite
    /// conservation, LM-call bound). Returns the plan one node per
    /// line; `Err` carries the planner's message verbatim.
    pub fn explain(&self, domain: &str, statement: &str) -> Result<String, String> {
        let env = self
            .shared
            .envs
            .get(domain)
            .map(ShardSet::env)
            .ok_or_else(|| ServeError::UnknownDomain(domain.to_owned()).to_string())?;
        let rs = env
            .db
            .query(&format!("EXPLAIN {statement}"))
            .map_err(|e| e.to_string())?;
        Ok(rs
            .rows
            .iter()
            .flat_map(|r| r.iter().map(|v| v.to_string()))
            .collect::<Vec<_>>()
            .join("\n"))
    }

    /// The metrics hub behind this server (the null registry when
    /// metrics are disabled).
    pub fn metrics_hub(&self) -> &Arc<MetricsHub> {
        &self.shared.hub
    }

    /// The Prometheus-text exposition served by the `METRICS` protocol
    /// command. Empty when metrics are disabled.
    pub fn metrics_text(&self) -> String {
        self.shared.hub.render()
    }

    /// Three-way trace lookup: resident spans, evicted (the id was
    /// real but aged out of the ring and the tail reservoir), or never
    /// seen.
    pub fn trace_lookup(&self, trace_id: u64) -> TraceLookup {
        self.shared.traces.lookup(trace_id)
    }

    /// The raw spans of a captured trace, if still resident in the ring
    /// or the tail reservoir.
    pub fn trace(&self, trace_id: u64) -> Option<Vec<tag_trace::SpanRecord>> {
        self.shared.traces.get(trace_id)
    }

    /// A captured trace rendered as an indented span tree.
    pub fn trace_report(&self, trace_id: u64) -> Option<String> {
        self.trace(trace_id)
            .map(|spans| tag_trace::render_tree(&spans))
    }

    /// A captured trace as JSONL: one span object per line.
    pub fn trace_jsonl(&self, trace_id: u64) -> Option<String> {
        self.trace(trace_id).map(|spans| {
            let mut out = String::new();
            for s in &spans {
                out.push_str(&s.to_json());
                out.push('\n');
            }
            out
        })
    }

    /// Admit a request without blocking on its execution.
    ///
    /// Fails fast with [`ServeError::QueueFull`] when the bounded queue
    /// is at capacity — callers are expected to back off and retry.
    pub fn submit(&self, req: Request) -> Result<ReplyHandle, ServeError> {
        if !self.shared.envs.contains_key(&req.domain) {
            return Err(ServeError::UnknownDomain(req.domain));
        }
        let reply = ReplyCell::new();
        let job = Job {
            req,
            enqueued: Instant::now(),
            reply: Arc::clone(&reply),
        };
        let tx = self.tx.lock();
        let Some(tx) = tx.as_ref() else {
            return Err(ServeError::Shutdown);
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.shared.metrics.requests_admitted.fetch_add(1, Relaxed);
                Ok(ReplyHandle { cell: reply })
            }
            Err(TrySendError::Full(_)) => {
                self.shared
                    .metrics
                    .rejected_queue_full
                    .fetch_add(1, Relaxed);
                Err(ServeError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Shutdown),
        }
    }

    /// Admit a request and block for its answer.
    pub fn ask(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// The full metrics report: serving counters, cache, latency
    /// histograms, and cross-request batching effectiveness.
    pub fn report(&self) -> String {
        let cache = self.shared.cache.stats();
        self.shared
            .metrics
            .answer_cache_evictions
            .store(cache.evictions, Relaxed);
        let b = self.batch_stats();
        let mut out = self.shared.metrics.report();
        out.push_str(&b.report_line());
        out.push('\n');
        out.push_str(&format!("answer cache resident entries: {}\n", cache.len));
        let per_shard: Vec<String> = (0..self.shared.cache.shard_count())
            .map(|i| {
                let s = self.shared.cache.shard_stats(i);
                format!("{}/{}", s.hits, s.misses)
            })
            .collect();
        out.push_str(&format!(
            "answer cache shard hits/misses: [{}]\n",
            per_shard.join(", ")
        ));
        // Per-operator semantic-engine counters, merged across domains.
        // Semantic operators run only at coordinators (fragments that
        // scatter are purely relational), so shard envs contribute
        // nothing here.
        let mut ops: std::collections::BTreeMap<&'static str, tag_semops::OpStats> =
            std::collections::BTreeMap::new();
        for set in self.shared.envs.values() {
            for (name, stat) in set.env().engine.op_stats() {
                let e = ops.entry(name).or_default();
                e.invocations += stat.invocations;
                e.prompts += stat.prompts;
                e.cache_hits += stat.cache_hits;
                e.lm_prompts += stat.lm_prompts;
                e.lm_batches += stat.lm_batches;
                e.evictions += stat.evictions;
            }
        }
        if !ops.is_empty() {
            out.push_str("== semantic operators ==\n");
            for (name, s) in &ops {
                out.push_str(&format!(
                    "{name}: invocations={} prompts={} cache_hits={} lm_prompts={} \
                     lm_batches={} evictions={}\n",
                    s.invocations, s.prompts, s.cache_hits, s.lm_prompts, s.lm_batches, s.evictions,
                ));
            }
        }
        if !self.shared.stages.is_empty() {
            out.push_str(&self.shared.stages.report());
            out.push_str(&self.shared.stages.windows_report());
        }
        out.push_str(
            &self
                .shared
                .pipeline
                .report(self.shared.stage_workers, self.shared.started.elapsed()),
        );
        let pc = self.plan_cache_stats();
        out.push_str(&format!(
            "== plan cache ==\nplan cache: hits={} misses={} evictions={} invalidations={} \
             entries={} hit_rate={:.1}%\n",
            pc.hits,
            pc.misses,
            pc.evictions,
            pc.invalidations,
            pc.entries,
            pc.hit_rate() * 100.0,
        ));
        out.push_str("== shards ==\n");
        let mut names: Vec<&String> = self.shared.envs.keys().collect();
        names.sort();
        for name in names {
            let set = &self.shared.envs[name.as_str()];
            let s = set.scatter_stats();
            out.push_str(&format!(
                "{name}: shards={} scattered={} pruned={} fallbacks={} rows={:?}\n",
                set.shards(),
                s.scattered,
                s.pruned,
                s.fallbacks,
                set.shard_rows(),
            ));
        }
        out.push_str(&format!(
            "traces resident: {} (ring capacity {}, tail {}/{})\n",
            self.shared.traces.len(),
            self.shared.traces.capacity(),
            self.shared.traces.tail_len(),
            self.shared.traces.tail_capacity(),
        ));
        out
    }

    /// Stop admitting work, drain the pipeline, and join every worker.
    /// Joining stage by stage is safe because closing the admission
    /// channel cascades: `syn` exits close the `exec` channel, `exec`
    /// exits close the `gen` channel.
    pub fn shutdown(&self) {
        *self.tx.lock() = None;
        for pool in [&self.syn_pool, &self.exec_pool, &self.gen_pool] {
            let workers = std::mem::take(&mut *pool.lock());
            for w in workers {
                let _ = w.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Wire scrape-time collectors into the hub: subsystems that already
/// keep their own relaxed-atomic counters (serving registry, answer
/// cache, LM batcher, and per-domain plan cache / semantic operators /
/// retrieval) are sampled at render time, adding zero hot-path work.
///
/// Each closure captures only the `Arc`s it samples, and the domain
/// environments only *weakly*: an env holds the hub (through its
/// installed SQL-engine metrics sink), so a strong capture here would
/// close a reference cycle and leak the hub past server shutdown.
fn register_collectors(
    hub: &MetricsHub,
    metrics: &Arc<MetricsRegistry>,
    cache: &Arc<AnswerCache>,
    batch: &Arc<BatchLm>,
    envs: &HashMap<String, ShardSet>,
    started: Instant,
) {
    if !hub.is_enabled() {
        return;
    }
    let m = Arc::clone(metrics);
    let c = Arc::clone(cache);
    hub.register_collector(move |out| {
        let load = |a: &AtomicU64| a.load(Relaxed);
        for (outcome, v) in [
            ("admitted", load(&m.requests_admitted)),
            ("ok", load(&m.requests_ok)),
            ("shed_queue_full", load(&m.rejected_queue_full)),
            ("shed_deadline", load(&m.rejected_deadline)),
        ] {
            out.push(Sample::counter(
                "tag_serve_requests_total",
                "Requests by admission/serving outcome.",
                &[("outcome", outcome)],
                v,
            ));
        }
        // One series per internal cache shard: a skewed key
        // distribution shows up as one hot `shard` label instead of
        // hiding inside an aggregate.
        for shard in 0..c.shard_count() {
            let cs = c.shard_stats(shard);
            let shard_label = shard.to_string();
            for (event, v) in [
                ("hit", cs.hits),
                ("miss", cs.misses),
                ("eviction", cs.evictions),
            ] {
                out.push(Sample::counter(
                    "tag_serve_answer_cache_total",
                    "Answer-cache lookups and evictions by event and cache shard.",
                    &[("event", event), ("shard", shard_label.as_str())],
                    v,
                ));
            }
            out.push(Sample::gauge(
                "tag_serve_answer_cache_entries",
                "Answer-cache resident entries per cache shard.",
                &[("shard", shard_label.as_str())],
                cs.len as f64,
            ));
        }
        out.push(Sample::gauge(
            "tag_serve_uptime_seconds",
            "Seconds since the server started.",
            &[],
            started.elapsed().as_secs_f64(),
        ));
    });
    let b = Arc::clone(batch);
    hub.register_collector(move |out| {
        let s = b.stats();
        for (name, help, v) in [
            (
                "tag_lm_batch_submissions_total",
                "Prompt-batch submissions to the shared LM.",
                s.submissions,
            ),
            (
                "tag_lm_batch_rounds_total",
                "Merged inference rounds executed.",
                s.rounds,
            ),
            (
                "tag_lm_batch_cross_request_rounds_total",
                "Rounds that merged prompts from more than one request.",
                s.cross_request_rounds,
            ),
            (
                "tag_lm_batch_prompts_total",
                "Prompts pushed through merged rounds.",
                s.prompts,
            ),
            (
                "tag_lm_batch_fallback_rounds_total",
                "Rounds executed on the submitting thread (window fallback).",
                s.fallback_rounds,
            ),
        ] {
            out.push(Sample::counter(name, help, &[], v));
        }
    });
    // Per-env series: each domain's coordinator env reports under
    // `shard="coord"` with the full set of series; each data-shard env
    // reports under `shard="<i>"` with plan-cache series only — shard
    // envs run no semantic operators and build no row store. Scatter
    // executors are captured strongly: a [`Coordinator`] holds no
    // reference back to the hub, so no cycle closes. Shard row counts
    // are sampled at registration — slices are cut once at load time
    // and serving is read-only.
    let mut weak_envs: Vec<(String, String, Weak<TagEnv>, bool)> = Vec::new();
    let mut scatters: Vec<(String, usize, Vec<u64>, Arc<Coordinator>)> = Vec::new();
    for (name, set) in envs {
        weak_envs.push((
            name.clone(),
            "coord".to_owned(),
            Arc::downgrade(set.env()),
            true,
        ));
        for (i, env) in set.shard_envs().iter().enumerate() {
            weak_envs.push((name.clone(), i.to_string(), Arc::downgrade(env), false));
        }
        scatters.push((
            name.clone(),
            set.shards(),
            set.shard_rows(),
            set.scatter_exec(),
        ));
    }
    hub.register_collector(move |out| {
        for (domain, shards, rows, exec) in &scatters {
            let domain_label = [("domain", domain.as_str())];
            let s = exec.stats();
            for (outcome, v) in [
                ("scattered", s.scattered),
                ("pruned", s.pruned),
                ("fallback", s.fallbacks),
            ] {
                out.push(Sample::counter(
                    "tag_serve_scatter_total",
                    "Scatter-gather plan executions by outcome.",
                    &[("domain", domain.as_str()), ("outcome", outcome)],
                    v,
                ));
            }
            out.push(Sample::gauge(
                "tag_serve_shards",
                "Configured data shards for the domain.",
                &domain_label,
                *shards as f64,
            ));
            for (i, r) in rows.iter().enumerate() {
                let shard = i.to_string();
                out.push(Sample::gauge(
                    "tag_serve_shard_rows",
                    "Partitioned-table rows resident on each data shard.",
                    &[("domain", domain.as_str()), ("shard", shard.as_str())],
                    *r as f64,
                ));
            }
        }
        for (domain, shard, env, full) in &weak_envs {
            let Some(env) = env.upgrade() else { continue };
            let labels = [("domain", domain.as_str()), ("shard", shard.as_str())];
            let pc = env.db.plan_cache_stats();
            for (name, help, v) in [
                (
                    "tag_sqlengine_plan_cache_hits_total",
                    "Plan-cache hits.",
                    pc.hits,
                ),
                (
                    "tag_sqlengine_plan_cache_misses_total",
                    "Plan-cache misses (statement re-planned).",
                    pc.misses,
                ),
                (
                    "tag_sqlengine_plan_cache_evictions_total",
                    "Plan-cache LRU evictions.",
                    pc.evictions,
                ),
                (
                    "tag_sqlengine_plan_cache_invalidations_total",
                    "Whole-plan-cache invalidations (schema-epoch bumps).",
                    pc.invalidations,
                ),
            ] {
                out.push(Sample::counter(name, help, &labels, v));
            }
            out.push(Sample::gauge(
                "tag_sqlengine_plan_cache_entries",
                "Plan-cache resident entries.",
                &labels,
                pc.entries as f64,
            ));
            if !*full {
                continue;
            }
            for (op, s) in env.engine.op_stats() {
                let op_labels = [
                    ("domain", domain.as_str()),
                    ("shard", shard.as_str()),
                    ("op", op),
                ];
                out.push(Sample::counter(
                    "tag_semops_op_invocations_total",
                    "Semantic-operator invocations.",
                    &op_labels,
                    s.invocations,
                ));
                out.push(Sample::counter(
                    "tag_semops_op_lm_prompts_total",
                    "Prompts semantic operators sent to the LM.",
                    &op_labels,
                    s.lm_prompts,
                ));
                out.push(Sample::counter(
                    "tag_semops_op_cache_hits_total",
                    "Semantic-operator prompt-cache hits.",
                    &op_labels,
                    s.cache_hits,
                ));
            }
            out.push(Sample::gauge(
                "tag_semops_round_occupancy",
                "LM batch-round fill fraction (prompts / rounds x batch size).",
                &labels,
                env.engine.round_occupancy(),
            ));
            // `row_store_if_built` never triggers the lazy index build:
            // scraping must not embed a whole domain as a side effect.
            if let Some(rs) = env.row_store_if_built() {
                let r = rs.retrieval_stats();
                for (name, help, v) in [
                    (
                        "tag_embed_retrieval_probes_total",
                        "Retrieval probes served.",
                        r.probes,
                    ),
                    (
                        "tag_embed_retrieval_candidates_total",
                        "Candidate rows returned by retrieval.",
                        r.candidates,
                    ),
                    (
                        "tag_embed_retrieval_rows_scanned_total",
                        "Stored vectors scanned by retrieval.",
                        r.rows_scanned,
                    ),
                ] {
                    out.push(Sample::counter(name, help, &labels, v));
                }
            }
        }
    });
}

/// `syn` stage: admission bookkeeping, deadline check, answer-cache
/// fast path. Misses are forwarded to the `exec` pool; the bounded send
/// blocks when `exec` is saturated, which is exactly the backpressure
/// that makes the admission queue fill and shed.
fn syn_loop(rx: &Mutex<Receiver<Job>>, exec_tx: &SyncSender<ExecJob>, shared: &Shared) {
    loop {
        // The receiver guard is dropped at the end of this statement,
        // so the lock is held only for the dequeue itself.
        let received = rx.lock().recv();
        let Ok(job) = received else {
            return; // admission sender dropped: shutdown
        };
        let busy = Instant::now();
        match syn_stage(shared, job) {
            SynOutcome::Forward(fwd) => {
                shared.pipeline.record(STAGE_SYN, busy.elapsed());
                // Infallible while this worker lives: the `exec` pool
                // only exits once every `syn` worker has dropped its
                // sender.
                let handoff = Instant::now();
                let _ = exec_tx.send(fwd);
                shared.pipeline.add_busy(STAGE_SYN, handoff.elapsed());
            }
            SynOutcome::Reply(reply, result) => {
                // Count the item before replying so a client that just
                // woke up always sees its own request in the snapshot.
                shared.pipeline.record(STAGE_SYN, busy.elapsed());
                reply.deliver(result);
            }
        }
    }
}

enum SynOutcome {
    Forward(ExecJob),
    Reply(Arc<ReplyCell>, Result<Response, ServeError>),
}

fn syn_stage(shared: &Shared, job: Job) -> SynOutcome {
    let m = &shared.metrics;
    let queue_wait = job.enqueued.elapsed();
    m.queue_wait.observe(queue_wait);
    m.queue_wait_window.observe(queue_wait);
    let deadline = job.req.deadline.unwrap_or(shared.default_deadline);
    if queue_wait > deadline {
        m.rejected_deadline.fetch_add(1, Relaxed);
        return SynOutcome::Reply(job.reply, Err(ServeError::DeadlineExceeded));
    }
    if let Some(answer) = shared
        .cache
        .get(&job.req.domain, job.req.method, &job.req.question)
    {
        m.answer_cache_hits.fetch_add(1, Relaxed);
        m.requests_ok.fetch_add(1, Relaxed);
        let total = job.enqueued.elapsed();
        m.total_time.observe(total);
        m.total_time_window.observe(total);
        return SynOutcome::Reply(
            job.reply,
            Ok(Response {
                answer,
                queue_wait,
                exec: Duration::ZERO,
                total,
                cache_hit: true,
                trace_id: None,
            }),
        );
    }
    m.answer_cache_misses.fetch_add(1, Relaxed);
    SynOutcome::Forward(ExecJob {
        req: job.req,
        enqueued: job.enqueued,
        queue_wait,
        reply: job.reply,
    })
}

/// `exec` stage: run the method (traced when tracing is on). Everything
/// after the answer exists — trace capture, cache fill, reply — is
/// handed to the `gen` pool so this pool's workers go straight back to
/// the next request's SQL/retrieval while the LM rounds drain.
fn exec_loop(rx: &Mutex<Receiver<ExecJob>>, gen_tx: &SyncSender<GenJob>, shared: &Shared) {
    loop {
        let received = rx.lock().recv();
        let Ok(job) = received else {
            return; // syn pool exited: shutdown
        };
        let busy = Instant::now();
        // Re-check the deadline: time spent queued between stages counts
        // against the request too.
        let deadline = job.req.deadline.unwrap_or(shared.default_deadline);
        if job.enqueued.elapsed() > deadline {
            shared.metrics.rejected_deadline.fetch_add(1, Relaxed);
            shared.pipeline.record(STAGE_EXEC, busy.elapsed());
            job.reply.deliver(Err(ServeError::DeadlineExceeded));
            continue;
        }
        // Submit validated the domain, but deliver an error rather than
        // poison the worker if that invariant ever breaks.
        let Some(env) = shared.envs.get(&job.req.domain).map(ShardSet::env) else {
            shared.pipeline.record(STAGE_EXEC, busy.elapsed());
            job.reply
                .deliver(Err(ServeError::UnknownDomain(job.req.domain.clone())));
            continue;
        };
        let started = Instant::now();
        let (answer, spans, trace_id) = if shared.traces.capacity() > 0 {
            let (trace, sink) = tag_trace::Trace::memory();
            let trace_id = trace.id();
            let answer = tag_trace::with_trace(&trace, || {
                let _root = tag_trace::span(
                    tag_trace::Stage::Request,
                    &format!("{} {}", job.req.method, job.req.domain),
                );
                run_method(job.req.method, &job.req.question, env)
            });
            (answer, sink.take(), Some(trace_id))
        } else {
            (
                run_method(job.req.method, &job.req.question, env),
                Vec::new(),
                None,
            )
        };
        let exec = started.elapsed();
        shared.metrics.exec_time.observe(exec);
        match trace_id {
            Some(id) => shared
                .metrics
                .exec_time_window
                .observe_with_exemplar(exec, id),
            None => shared.metrics.exec_time_window.observe(exec),
        }
        shared.pipeline.record(STAGE_EXEC, busy.elapsed());
        let handoff = Instant::now();
        let _ = gen_tx.send(GenJob {
            req: job.req,
            enqueued: job.enqueued,
            queue_wait: job.queue_wait,
            reply: job.reply,
            answer,
            exec,
            spans,
            trace_id,
        });
        shared.pipeline.add_busy(STAGE_EXEC, handoff.elapsed());
    }
}

/// `gen` stage: fold spans into stage metrics, park the trace in the
/// ring, fill the answer cache, and reply. The trace is inserted
/// *before* the reply is delivered so `TRACE <id>` always finds a trace
/// whose id a client has just received.
fn gen_loop(rx: &Mutex<Receiver<GenJob>>, shared: &Shared) {
    loop {
        let received = rx.lock().recv();
        let Ok(job) = received else {
            return; // exec pool exited: shutdown
        };
        let busy = Instant::now();
        let m = &shared.metrics;
        for span in &job.spans {
            shared.stages.record(span);
        }
        let is_error = matches!(job.answer, Answer::Error(_));
        if let Some(trace_id) = job.trace_id {
            shared
                .traces
                .insert_with_outcome(trace_id, job.spans, is_error);
        }
        // Errors are not cached: they may be transient (e.g.
        // load-dependent) and re-asking should re-execute.
        if !is_error {
            shared.cache.insert(
                &job.req.domain,
                job.req.method,
                &job.req.question,
                job.answer.clone(),
            );
        }
        m.requests_ok.fetch_add(1, Relaxed);
        let total = job.enqueued.elapsed();
        m.total_time.observe(total);
        match job.trace_id {
            Some(id) => m.total_time_window.observe_with_exemplar(total, id),
            None => m.total_time_window.observe(total),
        }
        // Count before replying (same reasoning as in `syn_loop`).
        shared.pipeline.record(STAGE_GEN, busy.elapsed());
        job.reply.deliver(Ok(Response {
            answer: job.answer,
            queue_wait: job.queue_wait,
            exec: job.exec,
            total,
            cache_hit: false,
            trace_id: job.trace_id,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tag_bench::build_benchmark;
    use tag_datagen::{generate_all, Scale};

    fn tiny_scale() -> Scale {
        Scale {
            schools: 40,
            players: 40,
            posts: 20,
            customers: 40,
            drivers: 6,
        }
    }

    /// A tiny server plus one real benchmark (domain, question) pair.
    fn tiny_server(config: ServerConfig) -> (Server, Request) {
        let domains = generate_all(42, tiny_scale());
        let q = build_benchmark(&domains)
            .into_iter()
            .next()
            .expect("benchmark non-empty");
        let req = Request::new(q.domain, MethodName::HandWritten, q.question());
        (Server::start(domains, SimConfig::default(), config), req)
    }

    #[test]
    fn ask_answers_and_caches() {
        let (server, req) = tiny_server(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let first = server.ask(req.clone()).unwrap();
        assert!(!first.cache_hit);
        assert!(
            !matches!(first.answer, Answer::Error(_)),
            "{:?}",
            first.answer
        );
        let second = server.ask(req).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.answer, second.answer);
        assert_eq!(second.exec, Duration::ZERO);
        let m = server.metrics();
        assert_eq!(m.answer_cache_hits.load(Relaxed), 1);
        assert_eq!(m.answer_cache_misses.load(Relaxed), 1);
        assert_eq!(m.requests_ok.load(Relaxed), 2);
    }

    #[test]
    fn unknown_domain_is_rejected_at_submit() {
        let (server, _) = tiny_server(ServerConfig::default());
        let err = server
            .ask(Request::new("nope", MethodName::Rag, "Anything?"))
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownDomain("nope".into()));
    }

    #[test]
    fn expired_deadline_is_dropped_at_dequeue() {
        let (server, req) = tiny_server(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        // Occupy the lone worker so a zero-deadline request must queue.
        let slow = server.submit(req.clone()).unwrap();
        let mut doomed = req;
        doomed.deadline = Some(Duration::ZERO);
        let doomed = server.submit(doomed).unwrap();
        assert!(slow.wait().is_ok());
        assert_eq!(doomed.wait().unwrap_err(), ServeError::DeadlineExceeded);
        assert_eq!(server.metrics().rejected_deadline.load(Relaxed), 1);
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let (server, req) = tiny_server(ServerConfig::default());
        server.shutdown();
        assert_eq!(server.ask(req).unwrap_err(), ServeError::Shutdown);
    }

    #[test]
    fn report_mentions_every_section() {
        let (server, req) = tiny_server(ServerConfig::default());
        let _ = server.ask(req);
        let r = server.report();
        assert!(r.contains("serving metrics"));
        assert!(r.contains("lm batching"));
        assert!(r.contains("answer cache"));
        assert!(r.contains("semantic operators"), "{r}");
        assert!(r.contains("stage breakdown"), "{r}");
        assert!(r.contains("== pipeline =="), "{r}");
        assert!(r.contains("== plan cache =="), "{r}");
        assert!(r.contains("== shards =="), "{r}");
        assert!(r.contains("answer cache shard hits/misses"), "{r}");
        assert!(r.contains("traces resident"), "{r}");
    }

    #[test]
    fn pipeline_counts_every_stage_and_plans_are_cached() {
        let (server, req) = tiny_server(ServerConfig::default());
        let first = server.ask(req.clone()).unwrap();
        assert!(!first.cache_hit);
        let second = server.ask(req).unwrap();
        assert!(second.cache_hit);
        let snap = server.pipeline_snapshot();
        // Both requests crossed syn; only the miss reached exec and gen.
        assert_eq!(snap[crate::metrics::STAGE_SYN].processed, 2, "{snap:?}");
        assert_eq!(snap[crate::metrics::STAGE_EXEC].processed, 1, "{snap:?}");
        assert_eq!(snap[crate::metrics::STAGE_GEN].processed, 1, "{snap:?}");
        // The handwritten method ran SQL, so plans were looked up.
        let pc = server.plan_cache_stats();
        assert!(pc.hits + pc.misses > 0, "{pc:?}");
    }

    #[test]
    fn disabling_plan_cache_keeps_answers_identical() {
        let (server, req) = tiny_server(ServerConfig::default());
        let baseline = server.ask(req.clone()).unwrap();
        server.set_plan_cache_capacity(0);
        server.cache().clear();
        let uncached = server.ask(req).unwrap();
        assert!(!uncached.cache_hit);
        assert_eq!(baseline.answer, uncached.answer);
        assert_eq!(server.plan_cache_stats().capacity, 0);
    }

    #[test]
    fn executed_requests_capture_a_trace() {
        let (server, req) = tiny_server(ServerConfig::default());
        let first = server.ask(req.clone()).unwrap();
        let id = first.trace_id.expect("executed request is traced");
        let spans = server.trace(id).expect("trace resident");
        // Exactly one root: the request span, labeled method + domain.
        let roots: Vec<_> = spans.iter().filter(|s| s.parent.is_none()).collect();
        assert_eq!(roots.len(), 1, "{spans:#?}");
        assert_eq!(roots[0].stage, tag_trace::Stage::Request);
        assert!(roots[0].label.contains("handwritten"), "{}", roots[0].label);
        // Every parent link points at a span in the same trace.
        for s in &spans {
            if let Some(p) = s.parent {
                assert!(spans.iter().any(|t| t.id == p), "dangling parent {p}");
            }
            assert_eq!(s.trace_id, id);
        }
        let tree = server.trace_report(id).expect("render");
        assert!(tree.contains("[request]"), "{tree}");
        let jsonl = server.trace_jsonl(id).expect("jsonl");
        assert!(jsonl.lines().count() >= spans.len());
        assert!(jsonl.lines().all(|l| l.starts_with('{')), "{jsonl}");

        // Cache hits execute nothing, so they carry no trace.
        let second = server.ask(req).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.trace_id, None);
    }

    #[test]
    fn explain_renders_relational_and_semantic_plans() {
        let (server, req) = tiny_server(ServerConfig::default());
        let domain = req.domain.clone();
        let table = server.env(&domain).unwrap().db.catalog().table_names()[0].clone();
        let sql_plan = server
            .explain(&domain, &format!("SELECT * FROM {table}"))
            .unwrap();
        assert!(sql_plan.contains(&format!("Scan {table}")), "{sql_plan}");
        let sem_plan = server
            .explain(&domain, &format!("SEMPLAN {}", req.question))
            .unwrap();
        assert!(sem_plan.contains("Scan"), "{sem_plan}");
        assert!(server
            .explain("nope", "SELECT 1")
            .unwrap_err()
            .contains("unknown domain"),);
        assert!(server
            .explain(&domain, "SEMPLAN not a benchmark question")
            .is_err());
        // VERIFY runs the static checker over the same plan and reports
        // the verdict, the rewrite verdict, and the LM-call bound.
        let verify = server
            .explain(&domain, &format!("VERIFY {}", req.question))
            .unwrap();
        assert!(verify.starts_with("verify: ok"), "{verify}");
        assert!(verify.contains("rewrite: ok"), "{verify}");
        assert!(verify.contains("lm_call_bound: "), "{verify}");
        assert!(server
            .explain(&domain, "VERIFY not a benchmark question")
            .is_err());
    }

    #[test]
    fn rerank_trace_maps_semplan_nodes_to_pipeline_stages() {
        let (server, req) = tiny_server(ServerConfig::default());
        let mut req = req;
        req.method = MethodName::Rerank;
        let resp = server.ask(req).unwrap();
        let spans = server.trace(resp.trace_id.expect("traced")).unwrap();
        // The retrieve → rerank → generate plan nodes surface as spans
        // tagged with their SemStage, so the serve-side stage breakdown
        // attributes their cost per pipeline stage.
        for stage in [
            tag_trace::Stage::Retrieve,
            tag_trace::Stage::Rerank,
            tag_trace::Stage::Gen,
        ] {
            assert!(
                spans.iter().any(|s| s.stage == stage),
                "missing {stage:?} span: {spans:#?}"
            );
        }
    }

    #[test]
    fn metrics_exposition_covers_every_layer() {
        let (server, req) = tiny_server(ServerConfig::default());
        let resp = server.ask(req.clone()).unwrap();
        let second = server.ask(req).unwrap();
        assert!(second.cache_hit);
        let text = server.metrics_text();
        // Serving counters (collector) and hub-registered windows.
        assert!(
            text.contains("tag_serve_requests_total{outcome=\"ok\"} 2"),
            "{text}"
        );
        // Cache lookups are labeled per internal cache shard; the hit
        // sums to 1 across the shard series.
        let hit_total: f64 = text
            .lines()
            .filter(|l| l.starts_with("tag_serve_answer_cache_total{event=\"hit\""))
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|v| v.parse::<f64>().ok())
            .sum();
        assert_eq!(hit_total, 1.0, "{text}");
        assert!(text.contains("tag_serve_total_seconds_count 2"), "{text}");
        assert!(text.contains("tag_serve_total_window_seconds"), "{text}");
        assert!(text.contains("tag_serve_stage_seconds_bucket"), "{text}");
        assert!(text.contains("tag_serve_pipeline_busy_seconds"), "{text}");
        // Pipeline instruments carry the coordinator shard label.
        assert!(text.contains("shard=\"coord\""), "{text}");
        // Scatter-gather series exist even at the default single shard.
        assert!(text.contains("tag_serve_scatter_total"), "{text}");
        assert!(text.contains("tag_serve_shard_rows"), "{text}");
        assert!(text.contains("tag_serve_shards"), "{text}");
        // Per-domain subsystem collectors, labeled by shard.
        assert!(
            text.contains("tag_sqlengine_plan_cache_hits_total"),
            "{text}"
        );
        // Both the coordinator env and the data-shard envs report
        // plan-cache series under their own shard label.
        for shard in ["coord", "0"] {
            assert!(
                text.lines()
                    .any(|l| l.starts_with("tag_sqlengine_plan_cache_hits_total{")
                        && l.contains(&format!("shard=\"{shard}\""))),
                "missing shard={shard} plan-cache series: {text}"
            );
        }
        assert!(text.contains("tag_semops_round_occupancy"), "{text}");
        assert!(text.contains("tag_lm_batch_rounds_total"), "{text}");
        // Per-operator instrumentation installed into the SQL engine.
        assert!(text.contains("tag_sqlengine_operator_seconds"), "{text}");
        // The executed request's trace id surfaces as an exemplar and
        // resolves through the three-way lookup.
        let id = resp.trace_id.expect("traced");
        assert!(
            text.contains(&format!("trace_id=\"{id}\"")),
            "exemplar missing: {text}"
        );
        assert!(matches!(server.trace_lookup(id), TraceLookup::Found(_)));
        assert!(matches!(
            server.trace_lookup(u64::MAX),
            TraceLookup::Unknown
        ));
        // STATS carries the rolling windowed view with the exemplar id.
        let r = server.report();
        assert!(r.contains("== stage windows (rolling) =="), "{r}");
        assert!(r.contains("exemplar trace="), "{r}");
        assert!(r.contains("tail 0/16"), "{r}");
    }

    #[test]
    fn disabled_metrics_serve_identically_and_render_nothing() {
        let (server, req) = tiny_server(ServerConfig {
            metrics_enabled: false,
            ..ServerConfig::default()
        });
        let resp = server.ask(req).unwrap();
        assert!(
            !matches!(resp.answer, Answer::Error(_)),
            "{:?}",
            resp.answer
        );
        assert!(!server.metrics_hub().is_enabled());
        assert_eq!(server.metrics_text(), "");
        // Cumulative STATS still work without the hub.
        let r = server.report();
        assert!(r.contains("serving metrics"), "{r}");
        assert!(r.contains("== plan cache =="), "{r}");
    }

    #[test]
    fn sharded_server_matches_unsharded_and_scatters() {
        let (unsharded, req) = tiny_server(ServerConfig::default());
        let sharded = Server::start(
            generate_all(42, tiny_scale()),
            SimConfig::default(),
            ServerConfig {
                shards: 3,
                ..ServerConfig::default()
            },
        );
        let a = unsharded.ask(req.clone()).unwrap();
        let b = sharded.ask(req).unwrap();
        assert_eq!(a.answer, b.answer);
        let set = sharded.shard_set("california_schools").expect("served");
        assert_eq!(set.shards(), 3);
        // A keyed aggregate through the coordinator scatters and prunes
        // to the single owning shard.
        let before = set.scatter_stats();
        set.env()
            .db
            .query("SELECT COUNT(*) FROM schools WHERE City = 'Fresno'")
            .unwrap();
        let after = set.scatter_stats();
        assert_eq!(after.scattered, before.scattered + 1);
        assert_eq!(after.pruned, before.pruned + 1);
        assert_eq!(after.fallbacks, before.fallbacks);
        let r = sharded.report();
        assert!(r.contains("shards=3"), "{r}");
        let text = sharded.metrics_text();
        assert!(
            text.contains(
                "tag_serve_scatter_total{domain=\"california_schools\",outcome=\"scattered\"}"
            ),
            "{text}"
        );
        assert!(
            text.contains("tag_serve_shard_rows{domain=\"california_schools\",shard=\"2\"}"),
            "{text}"
        );
    }

    #[test]
    fn zero_trace_capacity_disables_tracing() {
        let (server, req) = tiny_server(ServerConfig {
            trace_capacity: 0,
            ..ServerConfig::default()
        });
        let resp = server.ask(req).unwrap();
        assert_eq!(resp.trace_id, None);
        assert!(server.stage_metrics().is_empty());
    }
}
