//! Per-request trace capture: a bounded ring buffer of completed
//! request traces plus a tail-sampling reservoir, addressable by trace
//! id for the `TRACE <id>` protocol command.
//!
//! The ring keeps the most recent `capacity` traces FIFO. When a trace
//! ages out of the ring it is offered to the *tail reservoir*, which
//! preferentially keeps error traces and the slowest requests (ranked
//! by root-span wall time). That is tail-based sampling: by the time a
//! p99 spike shows up in a windowed histogram, the exemplar trace id it
//! points at is usually long past the FIFO horizon — the reservoir is
//! what keeps `TRACE <id>` resolvable for exactly those requests.
//!
//! Traces that fall out of both structures leave a tombstone id behind
//! (bounded), so [`TraceStore::lookup`] can distinguish "evicted —
//! widen the store" from "never saw that id".
//!
//! Span vectors are stored as delivered by the request's
//! [`tag_trace::MemSink`], i.e. children before parents in completion
//! order.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::Duration;
use tag_trace::SpanRecord;

/// Upper bound on remembered evicted ids (tombstones).
const EVICTED_IDS_MAX: usize = 4096;

/// Result of a [`TraceStore::lookup`].
#[derive(Debug, Clone)]
pub enum TraceLookup {
    /// The trace is resident (ring or tail reservoir).
    Found(Vec<SpanRecord>),
    /// The trace was captured but has since been evicted; widening the
    /// ring (`--trace-capacity`) or the tail reservoir would have kept
    /// it.
    Evicted,
    /// The id was never inserted (mistyped, or from a previous run).
    Unknown,
}

#[derive(Debug)]
struct TailEntry {
    id: u64,
    /// Root-span wall time; the reservoir keeps the slowest.
    score: Duration,
    /// Error traces always outrank non-errors.
    error: bool,
    spans: Vec<SpanRecord>,
}

impl TailEntry {
    fn rank(&self) -> (bool, Duration) {
        (self.error, self.score)
    }
}

#[derive(Debug)]
struct RingEntry {
    id: u64,
    error: bool,
    spans: Vec<SpanRecord>,
}

#[derive(Debug, Default)]
struct Inner {
    ring: VecDeque<RingEntry>,
    tail: Vec<TailEntry>,
    evicted: VecDeque<u64>,
}

/// A bounded FIFO of completed request traces keyed by trace id, with a
/// slow/error tail reservoir behind it.
#[derive(Debug)]
pub struct TraceStore {
    capacity: usize,
    tail_capacity: usize,
    inner: Mutex<Inner>,
}

/// The root span's wall time (the request span has no parent); falls
/// back to the longest span when the sink delivered no root.
fn root_wall(spans: &[SpanRecord]) -> Duration {
    spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.wall)
        .max()
        .or_else(|| spans.iter().map(|s| s.wall).max())
        .unwrap_or(Duration::ZERO)
}

impl TraceStore {
    /// A ring-only store holding at most `capacity` traces (0 disables
    /// storage entirely — nothing is ever inserted or tombstoned).
    pub fn new(capacity: usize) -> Self {
        Self::with_tail(capacity, 0)
    }

    /// A store with a FIFO ring of `capacity` plus a tail reservoir
    /// keeping the `tail_capacity` slowest/error traces that age out of
    /// the ring.
    pub fn with_tail(capacity: usize, tail_capacity: usize) -> Self {
        TraceStore {
            capacity,
            tail_capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Insert a completed, non-error trace.
    pub fn insert(&self, trace_id: u64, spans: Vec<SpanRecord>) {
        self.insert_with_outcome(trace_id, spans, false);
    }

    /// Insert a completed trace, evicting the oldest ring entry into
    /// the tail reservoir when full. `is_error` marks request failures
    /// so the reservoir retains them ahead of merely-slow traces.
    pub fn insert_with_outcome(&self, trace_id: u64, spans: Vec<SpanRecord>, is_error: bool) {
        if self.capacity == 0 {
            return;
        }
        let mut g = self.inner.lock();
        if g.ring.len() == self.capacity {
            if let Some(old) = g.ring.pop_front() {
                let entry = TailEntry {
                    id: old.id,
                    score: root_wall(&old.spans),
                    error: old.error,
                    spans: old.spans,
                };
                self.tail_consider(&mut g, entry);
            }
        }
        g.ring.push_back(RingEntry {
            id: trace_id,
            error: is_error,
            spans,
        });
    }

    fn tail_consider(&self, g: &mut Inner, entry: TailEntry) {
        if self.tail_capacity == 0 {
            Self::tombstone(g, entry.id);
            return;
        }
        if g.tail.len() < self.tail_capacity {
            g.tail.push(entry);
            return;
        }
        // Replace the lowest-ranked resident if the newcomer outranks
        // it; ties keep the resident (older exemplars stay stable).
        let (mut min_i, mut min_rank) = (0usize, g.tail[0].rank());
        for (i, e) in g.tail.iter().enumerate().skip(1) {
            let r = e.rank();
            if r < min_rank {
                min_i = i;
                min_rank = r;
            }
        }
        if entry.rank() > min_rank {
            let old = std::mem::replace(&mut g.tail[min_i], entry);
            Self::tombstone(g, old.id);
        } else {
            Self::tombstone(g, entry.id);
        }
    }

    fn tombstone(g: &mut Inner, id: u64) {
        if g.evicted.len() == EVICTED_IDS_MAX {
            g.evicted.pop_front();
        }
        g.evicted.push_back(id);
    }

    /// The spans of trace `trace_id`, if still resident (ring or tail).
    pub fn get(&self, trace_id: u64) -> Option<Vec<SpanRecord>> {
        match self.lookup(trace_id) {
            TraceLookup::Found(spans) => Some(spans),
            _ => None,
        }
    }

    /// Three-way lookup: resident, evicted (tombstoned), or unknown.
    pub fn lookup(&self, trace_id: u64) -> TraceLookup {
        let g = self.inner.lock();
        if let Some(e) = g.ring.iter().find(|e| e.id == trace_id) {
            return TraceLookup::Found(e.spans.clone());
        }
        if let Some(e) = g.tail.iter().find(|e| e.id == trace_id) {
            return TraceLookup::Found(e.spans.clone());
        }
        if g.evicted.contains(&trace_id) {
            return TraceLookup::Evicted;
        }
        TraceLookup::Unknown
    }

    /// Number of resident traces (ring + tail reservoir).
    pub fn len(&self) -> usize {
        let g = self.inner.lock();
        g.ring.len() + g.tail.len()
    }

    /// Traces resident in the tail reservoir.
    pub fn tail_len(&self) -> usize {
        self.inner.lock().tail.len()
    }

    /// True when no trace is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of traces in the FIFO ring.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum number of traces in the tail reservoir.
    pub fn tail_capacity(&self) -> usize {
        self.tail_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sized(trace_id: u64, wall_ms: u64) -> Vec<SpanRecord> {
        vec![SpanRecord {
            trace_id,
            id: 1,
            parent: None,
            stage: tag_trace::Stage::Request,
            label: "req".into(),
            start_us: 0,
            wall: std::time::Duration::from_millis(wall_ms),
            lm: tag_trace::LmUsage::default(),
            annotations: vec![],
        }]
    }

    fn dummy(trace_id: u64) -> Vec<SpanRecord> {
        sized(trace_id, 1)
    }

    #[test]
    fn ring_evicts_oldest() {
        let store = TraceStore::new(2);
        store.insert(1, dummy(1));
        store.insert(2, dummy(2));
        store.insert(3, dummy(3));
        assert_eq!(store.len(), 2);
        assert!(store.get(1).is_none(), "oldest evicted");
        assert!(store.get(2).is_some());
        assert!(store.get(3).is_some());
        assert_eq!(store.get(3).unwrap()[0].trace_id, 3);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let store = TraceStore::new(0);
        store.insert(1, dummy(1));
        assert!(store.is_empty());
        assert!(store.get(1).is_none());
        assert!(matches!(store.lookup(1), TraceLookup::Unknown));
    }

    #[test]
    fn lookup_distinguishes_evicted_from_unknown() {
        let store = TraceStore::new(1);
        store.insert(1, dummy(1));
        store.insert(2, dummy(2));
        assert!(matches!(store.lookup(1), TraceLookup::Evicted));
        assert!(matches!(store.lookup(2), TraceLookup::Found(_)));
        assert!(matches!(store.lookup(999), TraceLookup::Unknown));
    }

    #[test]
    fn tail_reservoir_keeps_slowest() {
        let store = TraceStore::with_tail(1, 2);
        // Slow (id 1), fast (id 2), medium (id 3) age out of the
        // 1-entry ring in turn; the 2-slot tail should keep 1 and 3.
        store.insert(1, sized(1, 500));
        store.insert(2, sized(2, 1));
        store.insert(3, sized(3, 50));
        store.insert(4, sized(4, 2));
        assert!(
            matches!(store.lookup(1), TraceLookup::Found(_)),
            "slowest kept"
        );
        assert!(
            matches!(store.lookup(3), TraceLookup::Found(_)),
            "second slowest kept"
        );
        assert!(
            matches!(store.lookup(2), TraceLookup::Evicted),
            "fast trace dropped"
        );
        assert!(
            matches!(store.lookup(4), TraceLookup::Found(_)),
            "still in ring"
        );
        assert_eq!(store.tail_len(), 2);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn tail_reservoir_prefers_errors_over_slow() {
        let store = TraceStore::with_tail(1, 1);
        store.insert(1, sized(1, 1000));
        store.insert_with_outcome(2, sized(2, 1), true);
        store.insert(3, sized(3, 1));
        store.insert(4, sized(4, 1));
        // Both 1 (slow) and 2 (error) aged out with one tail slot: the
        // error wins even though it was faster.
        assert!(matches!(store.lookup(1), TraceLookup::Evicted));
        assert!(
            matches!(store.lookup(2), TraceLookup::Found(_)),
            "error trace kept"
        );
    }

    #[test]
    fn tail_disabled_tombstones_everything() {
        let store = TraceStore::with_tail(1, 0);
        store.insert(1, sized(1, 500));
        store.insert(2, sized(2, 1));
        assert!(matches!(store.lookup(1), TraceLookup::Evicted));
        assert_eq!(store.tail_len(), 0);
    }
}
