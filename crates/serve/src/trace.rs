//! Per-request trace capture: a bounded ring buffer of completed
//! request traces, addressable by trace id for the `TRACE <id>` protocol
//! command.
//!
//! The store keeps the most recent `capacity` traces; older ones are
//! evicted FIFO. Span vectors are stored as delivered by the request's
//! [`tag_trace::MemSink`], i.e. children before parents in completion
//! order.

use parking_lot::Mutex;
use std::collections::VecDeque;
use tag_trace::SpanRecord;

/// A bounded FIFO of completed request traces keyed by trace id.
#[derive(Debug)]
pub struct TraceStore {
    capacity: usize,
    inner: Mutex<VecDeque<(u64, Vec<SpanRecord>)>>,
}

impl TraceStore {
    /// A store holding at most `capacity` traces (0 disables storage).
    pub fn new(capacity: usize) -> Self {
        TraceStore {
            capacity,
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Insert a completed trace, evicting the oldest when full.
    pub fn insert(&self, trace_id: u64, spans: Vec<SpanRecord>) {
        if self.capacity == 0 {
            return;
        }
        let mut g = self.inner.lock();
        if g.len() == self.capacity {
            g.pop_front();
        }
        g.push_back((trace_id, spans));
    }

    /// The spans of trace `trace_id`, if still resident.
    pub fn get(&self, trace_id: u64) -> Option<Vec<SpanRecord>> {
        self.inner
            .lock()
            .iter()
            .find(|(id, _)| *id == trace_id)
            .map(|(_, spans)| spans.clone())
    }

    /// Number of resident traces.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no trace is resident.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Maximum number of resident traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(trace_id: u64) -> Vec<SpanRecord> {
        vec![SpanRecord {
            trace_id,
            id: 1,
            parent: None,
            stage: tag_trace::Stage::Request,
            label: "req".into(),
            start_us: 0,
            wall: std::time::Duration::from_millis(1),
            lm: tag_trace::LmUsage::default(),
            annotations: vec![],
        }]
    }

    #[test]
    fn ring_evicts_oldest() {
        let store = TraceStore::new(2);
        store.insert(1, dummy(1));
        store.insert(2, dummy(2));
        store.insert(3, dummy(3));
        assert_eq!(store.len(), 2);
        assert!(store.get(1).is_none(), "oldest evicted");
        assert!(store.get(2).is_some());
        assert!(store.get(3).is_some());
        assert_eq!(store.get(3).unwrap()[0].trace_id, 3);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let store = TraceStore::new(0);
        store.insert(1, dummy(1));
        assert!(store.is_empty());
        assert!(store.get(1).is_none());
    }
}
