//! Lock-free serving metrics: atomic counters and fixed-bucket latency
//! histograms with a text report.
//!
//! Every hot-path touch is a handful of relaxed atomic operations; the
//! report renders percentiles by linear interpolation inside the bucket
//! that crosses the target rank (the usual fixed-bucket estimate).
//! Observations past the 10s bound land in a +inf overflow bucket; its
//! count is surfaced in reports and any percentile whose rank falls in
//! it renders with a `+` suffix (a lower bound, not an estimate).
//!
//! Alongside each cumulative histogram, the registry and the stage/
//! pipeline tables keep [`tag_metrics::WindowedHistogram`] twins that
//! feed rolling 10s/60s views and, through a shared
//! [`tag_metrics::MetricsHub`], the Prometheus exposition surface.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tag_metrics::{MetricsHub, WindowSnapshot, WindowedHistogram, WINDOWS};

/// Histogram bucket upper bounds, in seconds. Spans 100µs to 10s, log-ish
/// spacing; the final implicit bucket is +inf.
const BOUNDS: [f64; 16] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// A fixed-bucket latency histogram (thread-safe, relaxed atomics).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BOUNDS.len() + 1],
    count: AtomicU64,
    /// Total observed time in nanoseconds.
    sum_nanos: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn observe(&self, d: Duration) {
        let secs = d.as_secs_f64();
        let idx = BOUNDS.partition_point(|&b| b < secs);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(
            d.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean observation in seconds (0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9 / n as f64
    }

    /// Observations above the largest finite bound (10s), i.e. the
    /// +inf bucket count. Quantiles that land here are lower bounds.
    pub fn overflow(&self) -> u64 {
        self.buckets[BOUNDS.len()].load(Ordering::Relaxed)
    }

    /// Estimated quantile in seconds (`q` in 0..=1; 0 when empty).
    ///
    /// Degenerate inputs are defanged rather than surfaced: an empty
    /// histogram and a NaN `q` both return 0, out-of-range `q` is
    /// clamped, and the computed rank is clamped to `1..=count` so
    /// `q = 1.0` lands exactly on the last observation instead of
    /// walking past it into the overflow bound. When the rank falls in
    /// the +inf overflow bucket the value (10s) is only a *lower bound*
    /// on the true latency — use
    /// [`Histogram::quantile_seconds_bounded`] to see the flag.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile_seconds_bounded(q).0
    }

    /// Like [`Histogram::quantile_seconds`], but the bool is true when
    /// the rank landed in the +inf overflow bucket: the true quantile
    /// is *at least* the returned value. Reports render such values
    /// with a `+` suffix instead of presenting 10s as an estimate.
    pub fn quantile_seconds_bounded(&self, q: f64) -> (f64, bool) {
        let total = self.count();
        if total == 0 || q.is_nan() {
            return (0.0, false);
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let in_bucket = b.load(Ordering::Relaxed);
            if seen + in_bucket >= target {
                if i == BOUNDS.len() {
                    // Overflow bucket: no finite upper bound to
                    // interpolate toward; clamp and flag.
                    return (BOUNDS[BOUNDS.len() - 1], true);
                }
                let lo = if i == 0 { 0.0 } else { BOUNDS[i - 1] };
                let hi = BOUNDS[i];
                if in_bucket == 0 {
                    return (hi, false);
                }
                let frac = (target - seen) as f64 / in_bucket as f64;
                return (lo + frac * (hi - lo), false);
            }
            seen += in_bucket;
        }
        (BOUNDS[BOUNDS.len() - 1], true)
    }

    /// `p50/p95/p99` in milliseconds, for reports.
    pub fn percentiles_ms(&self) -> (f64, f64, f64) {
        (
            self.quantile_seconds(0.50) * 1e3,
            self.quantile_seconds(0.95) * 1e3,
            self.quantile_seconds(0.99) * 1e3,
        )
    }

    /// `p50/p95/p99` rendered in milliseconds with a trailing `+` on
    /// any value that is only a lower bound (rank in the overflow
    /// bucket).
    pub fn percentiles_ms_display(&self) -> (String, String, String) {
        let fmt = |q: f64| {
            let (secs, lower_bound) = self.quantile_seconds_bounded(q);
            if lower_bound {
                format!("{:.3}+", secs * 1e3)
            } else {
                format!("{:.3}", secs * 1e3)
            }
        };
        (fmt(0.50), fmt(0.95), fmt(0.99))
    }
}

/// Per-stage aggregates derived from request traces: wall-clock and
/// virtual LM time, call and token counts, bucketed by
/// [`tag_trace::Stage`]. Fed by the server after each traced request;
/// all relaxed atomics, so recording never contends with serving.
///
/// Each stage also owns a [`WindowedHistogram`] of span wall time, so
/// STATS can show *rolling* 10s/60s load next to the lifetime totals.
/// Spans carry their trace id into the histogram as a bucket exemplar,
/// which is how a slow window quantile links back to `TRACE <id>`.
#[derive(Debug)]
pub struct StageMetrics {
    spans: [AtomicU64; 6],
    wall_us: [AtomicU64; 6],
    virtual_us: [AtomicU64; 6],
    lm_calls: [AtomicU64; 6],
    prompt_tokens: [AtomicU64; 6],
    completion_tokens: [AtomicU64; 6],
    windows: [Arc<WindowedHistogram>; 6],
}

impl StageMetrics {
    /// A zeroed table with detached (hub-less) rolling windows.
    pub fn new() -> Self {
        StageMetrics {
            spans: Default::default(),
            wall_us: Default::default(),
            virtual_us: Default::default(),
            lm_calls: Default::default(),
            prompt_tokens: Default::default(),
            completion_tokens: Default::default(),
            windows: std::array::from_fn(|_| Arc::new(WindowedHistogram::new())),
        }
    }

    /// A zeroed table whose rolling windows are registered on `hub` as
    /// `tag_serve_stage_seconds{stage=...}`. On a no-op hub the
    /// windows are inactive, so recording costs one branch per span.
    pub fn with_hub(hub: &MetricsHub) -> Self {
        let mut m = StageMetrics::new();
        m.windows = std::array::from_fn(|i| {
            hub.histogram(
                "tag_serve_stage_seconds",
                "Span wall time by trace stage.",
                &[("stage", tag_trace::Stage::ALL[i].as_str())],
            )
        });
        m
    }

    /// Fold one span into the per-stage totals.
    pub fn record(&self, span: &tag_trace::SpanRecord) {
        let i = span.stage.index();
        let r = Ordering::Relaxed;
        self.spans[i].fetch_add(1, r);
        self.wall_us[i].fetch_add(span.wall.as_micros().min(u128::from(u64::MAX)) as u64, r);
        self.virtual_us[i].fetch_add((span.lm.virtual_seconds * 1e6) as u64, r);
        self.lm_calls[i].fetch_add(span.lm.calls, r);
        self.prompt_tokens[i].fetch_add(span.lm.prompt_tokens, r);
        self.completion_tokens[i].fetch_add(span.lm.completion_tokens, r);
        self.windows[i].observe_with_exemplar(span.wall, span.trace_id);
    }

    /// Rolling view of one stage's span wall time.
    pub fn window(&self, stage: tag_trace::Stage, window_secs: u64) -> WindowSnapshot {
        self.windows[stage.index()].window(window_secs)
    }

    /// The most recent slow exemplar for a stage: `(trace_id, seconds)`
    /// from the slowest populated bucket.
    pub fn exemplar(&self, stage: tag_trace::Stage) -> Option<(u64, f64)> {
        self.windows[stage.index()].slowest_exemplar()
    }

    /// One line per seen stage with rolling 10s/60s counts, rates and
    /// quantiles, plus the slowest resident exemplar trace id:
    ///
    /// ```text
    /// == stage windows (rolling) ==
    /// request  10s: n=4 rate=0.4/s p50=2.5ms p95=10.0ms p99=10.0ms | 60s: ... | exemplar trace=17 (9.8ms)
    /// ```
    pub fn windows_report(&self) -> String {
        let mut out = String::from("== stage windows (rolling) ==\n");
        for stage in tag_trace::Stage::ALL {
            let i = stage.index();
            if self.spans[i].load(Ordering::Relaxed) == 0 {
                continue;
            }
            out.push_str(&format!("{:<8}", stage.as_str()));
            for (wi, w) in WINDOWS.iter().enumerate() {
                let snap = self.windows[i].window(*w);
                if wi > 0 {
                    out.push_str(" |");
                }
                out.push_str(&format!(
                    " {w}s: n={} rate={:.1}/s p50={}ms p95={}ms p99={}ms",
                    snap.count(),
                    snap.rate(),
                    snap.quantile(0.50).display_ms(),
                    snap.quantile(0.95).display_ms(),
                    snap.quantile(0.99).display_ms(),
                ));
            }
            if let Some((id, secs)) = self.windows[i].slowest_exemplar() {
                out.push_str(&format!(" | exemplar trace={id} ({:.1}ms)", secs * 1e3));
            }
            out.push('\n');
        }
        out
    }

    /// True when no span has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.spans.iter().all(|c| c.load(Ordering::Relaxed) == 0)
    }

    /// One line per seen stage:
    /// `stage: spans=.. wall=..ms virtual=..s lm_calls=.. tok=../..`.
    pub fn report(&self) -> String {
        let mut out = String::from("== stage breakdown (traced requests) ==\n");
        for stage in tag_trace::Stage::ALL {
            let i = stage.index();
            let spans = self.spans[i].load(Ordering::Relaxed);
            if spans == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<8} spans={} wall={:.3}ms virtual={:.3}s lm_calls={} tok={}/{}\n",
                stage.as_str(),
                spans,
                self.wall_us[i].load(Ordering::Relaxed) as f64 / 1e3,
                self.virtual_us[i].load(Ordering::Relaxed) as f64 / 1e6,
                self.lm_calls[i].load(Ordering::Relaxed),
                self.prompt_tokens[i].load(Ordering::Relaxed),
                self.completion_tokens[i].load(Ordering::Relaxed),
            ));
        }
        out
    }
}

impl Default for StageMetrics {
    fn default() -> Self {
        StageMetrics::new()
    }
}

/// Index of the `syn` pipeline stage (admission, deadline, answer cache).
pub const STAGE_SYN: usize = 0;
/// Index of the `exec` pipeline stage (method execution).
pub const STAGE_EXEC: usize = 1;
/// Index of the `gen` pipeline stage (trace capture, cache fill, reply).
pub const STAGE_GEN: usize = 2;
/// Pipeline stage names, indexed by [`STAGE_SYN`]/[`STAGE_EXEC`]/[`STAGE_GEN`].
pub const PIPELINE_STAGE_NAMES: [&str; 3] = ["syn", "exec", "gen"];

/// Busy-time accounting for the three pipeline worker pools. Each worker
/// records the span from dequeue to hand-off (including any time blocked
/// pushing into the next stage's bounded channel — a full downstream
/// stage *is* occupancy), so
/// `occupancy = busy / (workers × elapsed)` shows which pool is the
/// bottleneck.
#[derive(Debug)]
pub struct PipelineMetrics {
    busy_us: [AtomicU64; 3],
    processed: [AtomicU64; 3],
    /// Rolling per-stage busy-time windows (count = items in window).
    windows: [Arc<WindowedHistogram>; 3],
}

/// Point-in-time view of one pipeline stage.
#[derive(Debug, Clone, Copy)]
pub struct PipelineStageSnapshot {
    /// Stage name (`syn` / `exec` / `gen`).
    pub name: &'static str,
    /// Workers in the pool.
    pub workers: usize,
    /// Items this stage has finished handling.
    pub processed: u64,
    /// Total busy time across the pool.
    pub busy: Duration,
    /// `busy / (workers × elapsed)`, in `0..=1`.
    pub occupancy: f64,
}

impl PipelineMetrics {
    /// A zeroed table with detached (hub-less) rolling windows.
    pub fn new() -> Self {
        PipelineMetrics {
            busy_us: Default::default(),
            processed: Default::default(),
            windows: std::array::from_fn(|_| Arc::new(WindowedHistogram::new())),
        }
    }

    /// A zeroed table whose rolling windows are registered on `hub` as
    /// `tag_serve_pipeline_busy_seconds{stage=...,shard="coord"}`. The
    /// pipeline runs only at the coordinator — shard environments do
    /// relational work inside scattered fragments, never pipeline
    /// stages — so the shard label is the fixed `coord` series.
    pub fn with_hub(hub: &MetricsHub) -> Self {
        let mut m = PipelineMetrics::new();
        m.windows = std::array::from_fn(|i| {
            hub.histogram(
                "tag_serve_pipeline_busy_seconds",
                "Worker busy time per handled item by pipeline stage.",
                &[("stage", PIPELINE_STAGE_NAMES[i]), ("shard", "coord")],
            )
        });
        m
    }

    /// Rolling view of one stage's busy time (`stage` is a
    /// [`STAGE_SYN`]-style index).
    pub fn window(&self, stage: usize, window_secs: u64) -> WindowSnapshot {
        self.windows[stage].window(window_secs)
    }

    /// Record one handled item for `stage` (a [`STAGE_SYN`]-style index).
    /// Stages call this *before* handing the item downstream (or
    /// replying), so `processed` is monotone along the pipeline — a
    /// snapshot can never show `gen` ahead of `exec`.
    pub fn record(&self, stage: usize, busy: Duration) {
        let r = Ordering::Relaxed;
        self.busy_us[stage].fetch_add(busy.as_micros().min(u128::from(u64::MAX)) as u64, r);
        self.processed[stage].fetch_add(1, r);
        self.windows[stage].observe(busy);
    }

    /// Fold extra busy time into `stage` without counting an item —
    /// used for time spent blocked pushing into a full downstream
    /// channel (backpressure *is* occupancy).
    pub fn add_busy(&self, stage: usize, busy: Duration) {
        self.busy_us[stage].fetch_add(
            busy.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Snapshot all three stages given the pool sizes and server uptime.
    pub fn snapshot(&self, workers: [usize; 3], elapsed: Duration) -> [PipelineStageSnapshot; 3] {
        let denom_base = elapsed.as_micros().max(1) as f64;
        std::array::from_fn(|i| {
            let busy_us = self.busy_us[i].load(Ordering::Relaxed);
            let denom = denom_base * workers[i].max(1) as f64;
            PipelineStageSnapshot {
                name: PIPELINE_STAGE_NAMES[i],
                workers: workers[i],
                processed: self.processed[i].load(Ordering::Relaxed),
                busy: Duration::from_micros(busy_us),
                occupancy: (busy_us as f64 / denom).clamp(0.0, 1.0),
            }
        })
    }

    /// One line per stage:
    /// `stage: workers=.. processed=.. busy=..ms occupancy=..% rate10s=../s`
    /// — the trailing rate is the rolling 10s throughput, so a STATS
    /// reader sees live load next to the lifetime totals.
    pub fn report(&self, workers: [usize; 3], elapsed: Duration) -> String {
        let mut out = String::from("== pipeline ==\n");
        for (i, s) in self.snapshot(workers, elapsed).into_iter().enumerate() {
            out.push_str(&format!(
                "{:<5} workers={} processed={} busy={:.3}ms occupancy={:.1}% rate10s={:.1}/s\n",
                s.name,
                s.workers,
                s.processed,
                s.busy.as_secs_f64() * 1e3,
                s.occupancy * 100.0,
                self.windows[i].window(10).rate(),
            ));
        }
        out
    }
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        PipelineMetrics::new()
    }
}

/// All counters the serving runtime exposes.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Requests accepted into the queue.
    pub requests_admitted: AtomicU64,
    /// Requests answered successfully.
    pub requests_ok: AtomicU64,
    /// Requests shed at admission because the queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Requests dropped at dequeue because their deadline had passed.
    pub rejected_deadline: AtomicU64,
    /// Answer-cache hits.
    pub answer_cache_hits: AtomicU64,
    /// Answer-cache misses (request executed).
    pub answer_cache_misses: AtomicU64,
    /// Answer-cache evictions.
    pub answer_cache_evictions: AtomicU64,
    /// Time from admission to dequeue.
    pub queue_wait: Histogram,
    /// Time executing the method (cache misses only).
    pub exec_time: Histogram,
    /// End-to-end time from admission to reply.
    pub total_time: Histogram,
    /// Rolling-window twin of [`MetricsRegistry::queue_wait`].
    pub queue_wait_window: Arc<WindowedHistogram>,
    /// Rolling-window twin of [`MetricsRegistry::exec_time`].
    pub exec_time_window: Arc<WindowedHistogram>,
    /// Rolling-window twin of [`MetricsRegistry::total_time`].
    pub total_time_window: Arc<WindowedHistogram>,
}

impl MetricsRegistry {
    /// A zeroed registry with detached (hub-less) rolling windows.
    pub fn new() -> Self {
        MetricsRegistry {
            requests_admitted: AtomicU64::new(0),
            requests_ok: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            answer_cache_hits: AtomicU64::new(0),
            answer_cache_misses: AtomicU64::new(0),
            answer_cache_evictions: AtomicU64::new(0),
            queue_wait: Histogram::new(),
            exec_time: Histogram::new(),
            total_time: Histogram::new(),
            queue_wait_window: Arc::new(WindowedHistogram::new()),
            exec_time_window: Arc::new(WindowedHistogram::new()),
            total_time_window: Arc::new(WindowedHistogram::new()),
        }
    }

    /// A zeroed registry whose rolling windows are registered on `hub`
    /// as `tag_serve_{queue_wait,exec,total}_seconds`. On a no-op hub
    /// the windows are inactive (one branch per observation).
    pub fn with_hub(hub: &MetricsHub) -> Self {
        let mut m = MetricsRegistry::new();
        m.queue_wait_window = hub.histogram(
            "tag_serve_queue_wait_seconds",
            "Time from admission to dequeue.",
            &[],
        );
        m.exec_time_window = hub.histogram(
            "tag_serve_exec_seconds",
            "Method execution time (answer-cache misses only).",
            &[],
        );
        m.total_time_window = hub.histogram(
            "tag_serve_total_seconds",
            "End-to-end time from admission to reply.",
            &[],
        );
        m
    }

    /// Answer-cache hit rate in 0..=1 (0 when no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let h = self.answer_cache_hits.load(Ordering::Relaxed);
        let m = self.answer_cache_misses.load(Ordering::Relaxed);
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Render the standard text report. Percentile values carry a `+`
    /// suffix when they are only lower bounds (rank in the +inf
    /// overflow bucket); each histogram line surfaces its overflow
    /// count so overload is visible instead of silently clamped.
    pub fn report(&self) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::new();
        out.push_str("== serving metrics ==\n");
        out.push_str(&format!(
            "requests: admitted={} ok={} shed_queue_full={} shed_deadline={}\n",
            load(&self.requests_admitted),
            load(&self.requests_ok),
            load(&self.rejected_queue_full),
            load(&self.rejected_deadline),
        ));
        out.push_str(&format!(
            "answer cache: hits={} misses={} evictions={} hit_rate={:.1}%\n",
            load(&self.answer_cache_hits),
            load(&self.answer_cache_misses),
            load(&self.answer_cache_evictions),
            self.cache_hit_rate() * 100.0,
        ));
        for (name, hist) in [
            ("queue wait ms", &self.queue_wait),
            ("exec time ms", &self.exec_time),
            ("total time ms", &self.total_time),
        ] {
            let (p50, p95, p99) = hist.percentiles_ms_display();
            out.push_str(&format!(
                "{name}: mean={:.3} p50={p50} p95={p95} p99={p99} overflow={}\n",
                hist.mean_seconds() * 1e3,
                hist.overflow(),
            ));
        }
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_monotone() {
        let h = Histogram::new();
        for ms in [1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
            h.observe(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_seconds(0.5);
        let p95 = h.quantile_seconds(0.95);
        let p99 = h.quantile_seconds(0.99);
        assert!(p50 > 0.0);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(h.mean_seconds() > 0.0);
    }

    #[test]
    fn overflow_bucket_catches_outliers() {
        let h = Histogram::new();
        h.observe(Duration::from_secs(30));
        assert_eq!(h.count(), 1);
        assert!(h.quantile_seconds(0.5) >= 9.99);
        assert_eq!(h.overflow(), 1);
        let (secs, lower_bound) = h.quantile_seconds_bounded(0.5);
        assert_eq!(secs, 10.0);
        assert!(lower_bound, "overflow quantile must be flagged");
    }

    #[test]
    fn overflow_surfaces_in_report_with_lower_bound_marker() {
        let m = MetricsRegistry::new();
        for _ in 0..9 {
            m.total_time.observe(Duration::from_millis(5));
        }
        // Overload: most observations past the 10s bound.
        for _ in 0..20 {
            m.total_time.observe(Duration::from_secs(60));
        }
        let r = m.report();
        assert!(r.contains("overflow=20"), "{r}");
        // p50 rank lands in the +inf bucket → lower-bound marker.
        assert!(r.contains("p50=10000.000+"), "{r}");
        // Unaffected histograms report overflow=0 without markers.
        assert!(r.contains("queue wait ms: mean=0.000 p50=0.000 p95=0.000 p99=0.000 overflow=0"));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile_seconds(0.99), 0.0);
        assert_eq!(h.mean_seconds(), 0.0);
    }

    #[test]
    fn quantile_edge_cases_never_panic_or_nan() {
        let h = Histogram::new();
        // Empty histogram: every q, including pathological ones, is 0.
        for q in [0.0, 0.5, 1.0, 2.0, -1.0, f64::NAN] {
            let v = h.quantile_seconds(q);
            assert_eq!(v, 0.0, "empty histogram q={q}");
        }
        for ms in [1u64, 2, 3] {
            h.observe(Duration::from_millis(ms));
        }
        // q = 1.0 must land on the last observation's bucket, not the
        // +inf overflow bound.
        let p100 = h.quantile_seconds(1.0);
        assert!(p100 > 0.0 && p100 <= 0.005, "{p100}");
        // NaN q is defanged to 0; out-of-range q is clamped and finite.
        assert_eq!(h.quantile_seconds(f64::NAN), 0.0);
        for q in [-0.5, 0.0, 1.5, 100.0] {
            let v = h.quantile_seconds(q);
            assert!(v.is_finite() && v >= 0.0, "q={q} -> {v}");
        }
        assert!(h.quantile_seconds(0.0) <= h.quantile_seconds(1.0));
    }

    #[test]
    fn stage_metrics_bucket_by_stage() {
        use tag_trace::{LmUsage, SpanRecord, Stage};
        let s = StageMetrics::new();
        assert!(s.is_empty());
        s.record(&SpanRecord {
            trace_id: 1,
            id: 1,
            parent: None,
            stage: Stage::Syn,
            label: "text2sql".into(),
            start_us: 0,
            wall: Duration::from_millis(2),
            lm: LmUsage {
                calls: 1,
                rounds: 1,
                prompt_tokens: 100,
                completion_tokens: 10,
                virtual_seconds: 0.5,
                ..LmUsage::default()
            },
            annotations: vec![],
        });
        assert!(!s.is_empty());
        let r = s.report();
        assert!(r.contains("syn"), "{r}");
        assert!(r.contains("lm_calls=1"), "{r}");
        assert!(r.contains("tok=100/10"), "{r}");
        assert!(!r.contains("gen "), "unseen stages are omitted: {r}");
    }

    #[test]
    fn pipeline_metrics_track_busy_and_occupancy() {
        let p = PipelineMetrics::new();
        p.record(STAGE_SYN, Duration::from_millis(1));
        p.record(STAGE_EXEC, Duration::from_millis(80));
        p.record(STAGE_EXEC, Duration::from_millis(20));
        let snap = p.snapshot([2, 1, 2], Duration::from_millis(100));
        assert_eq!(snap[STAGE_SYN].processed, 1);
        assert_eq!(snap[STAGE_EXEC].processed, 2);
        assert_eq!(snap[STAGE_GEN].processed, 0);
        // exec: 100ms busy on 1 worker over 100ms elapsed = saturated.
        assert!(snap[STAGE_EXEC].occupancy > 0.9, "{snap:?}");
        // syn: 1ms busy on 2 workers over 100ms = nearly idle.
        assert!(snap[STAGE_SYN].occupancy < 0.05, "{snap:?}");
        assert_eq!(snap[STAGE_GEN].occupancy, 0.0);
        let r = p.report([2, 1, 2], Duration::from_millis(100));
        assert!(r.contains("== pipeline =="), "{r}");
        assert!(r.contains("syn"), "{r}");
        assert!(r.contains("occupancy="), "{r}");
    }

    #[test]
    fn pipeline_occupancy_is_clamped() {
        let p = PipelineMetrics::new();
        // More busy time than wall time (possible with measurement skew).
        p.record(STAGE_GEN, Duration::from_secs(10));
        let snap = p.snapshot([1, 1, 1], Duration::from_secs(1));
        assert_eq!(snap[STAGE_GEN].occupancy, 1.0);
    }

    #[test]
    fn stage_windows_roll_and_carry_exemplars() {
        use tag_trace::{LmUsage, SpanRecord, Stage};
        let s = StageMetrics::new();
        let span = |id: u64, ms: u64| SpanRecord {
            trace_id: id,
            id: 1,
            parent: None,
            stage: Stage::Exec,
            label: "exec".into(),
            start_us: 0,
            wall: Duration::from_millis(ms),
            lm: LmUsage::default(),
            annotations: vec![],
        };
        s.record(&span(7, 2));
        s.record(&span(9, 400));
        let w = s.window(Stage::Exec, 10);
        assert_eq!(w.count(), 2);
        assert_eq!(s.exemplar(Stage::Exec), Some((9, 0.4)));
        let r = s.windows_report();
        assert!(r.contains("== stage windows (rolling) =="), "{r}");
        assert!(r.contains("exec"), "{r}");
        assert!(r.contains("10s: n=2"), "{r}");
        assert!(r.contains("60s: n=2"), "{r}");
        assert!(r.contains("exemplar trace=9"), "{r}");
    }

    #[test]
    fn hub_backed_registry_feeds_exposition() {
        let hub = MetricsHub::new();
        let m = MetricsRegistry::with_hub(&hub);
        m.total_time_window.observe(Duration::from_millis(3));
        let text = hub.render();
        assert!(text.contains("tag_serve_total_seconds_count 1"), "{text}");
        assert!(text.contains("tag_serve_total_window_seconds"), "{text}");
    }

    #[test]
    fn noop_hub_registry_windows_are_inactive() {
        let hub = MetricsHub::noop();
        let m = MetricsRegistry::with_hub(&hub);
        m.total_time_window.observe(Duration::from_millis(3));
        assert_eq!(m.total_time_window.count(), 0);
        let s = StageMetrics::with_hub(&hub);
        assert!(!s.windows[0].is_active());
    }

    #[test]
    fn pipeline_report_includes_rolling_rate() {
        let p = PipelineMetrics::new();
        p.record(STAGE_EXEC, Duration::from_millis(10));
        let r = p.report([1, 1, 1], Duration::from_millis(100));
        assert!(r.contains("rate10s="), "{r}");
        assert_eq!(p.window(STAGE_EXEC, 10).count(), 1);
    }

    #[test]
    fn report_renders_all_sections() {
        let m = MetricsRegistry::new();
        m.requests_admitted.fetch_add(3, Ordering::Relaxed);
        m.requests_ok.fetch_add(2, Ordering::Relaxed);
        m.answer_cache_hits.fetch_add(1, Ordering::Relaxed);
        m.answer_cache_misses.fetch_add(1, Ordering::Relaxed);
        m.queue_wait.observe(Duration::from_micros(120));
        m.exec_time.observe(Duration::from_millis(4));
        m.total_time.observe(Duration::from_millis(5));
        let r = m.report();
        assert!(r.contains("admitted=3"));
        assert!(r.contains("hit_rate=50.0%"));
        assert!(r.contains("queue wait ms"));
        assert!(r.contains("p99"));
    }
}
