//! End-to-end concurrency tests: the serving runtime must produce
//! byte-identical answers (and therefore an identical exact-match
//! score) to a serial baseline, and must shed load instead of queueing
//! unboundedly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tag_bench::Harness;
use tag_core::answer::{exact_match, Answer};
use tag_datagen::{generate_all, Scale};
use tag_lm::sim::SimConfig;
use tag_serve::{run_method, MethodName, Request, ServeError, Server, ServerConfig};

fn test_scale() -> Scale {
    Scale {
        schools: 120,
        players: 150,
        posts: 60,
        customers: 120,
        drivers: 10,
    }
}

/// N workers × the 80 TAG-Bench questions must reproduce the serial
/// baseline exactly: same answer bytes, same exact-match score — while
/// actually exercising cross-request batching.
#[test]
fn concurrent_replay_matches_serial_baseline() {
    let harness = Harness::new(42, test_scale(), SimConfig::default());
    let items: Vec<(usize, &'static str, String, bool)> = harness
        .queries()
        .iter()
        .map(|q| (q.id, q.domain, q.question(), q.ordered()))
        .collect();

    // Serial baseline over the harness's own (unbatched, uncached) envs.
    let expected: Vec<Answer> = items
        .iter()
        .map(|(_, domain, question, _)| {
            run_method(MethodName::HandWritten, question, harness.env(domain))
        })
        .collect();
    let serial_score: usize = items
        .iter()
        .zip(&expected)
        .filter(|((id, _, _, ordered), ans)| {
            harness
                .truth(*id)
                .is_some_and(|t| exact_match(ans, t, *ordered))
        })
        .count();
    // Sanity: the baseline must actually answer a good share of the
    // labelled queries, or the identity check below proves nothing.
    let labelled = items
        .iter()
        .filter(|(id, ..)| harness.truth(*id).is_some())
        .count();
    assert!(
        serial_score * 2 > labelled,
        "serial hand-written baseline too weak: {serial_score}/{labelled}"
    );

    let server = Arc::new(Server::start(
        generate_all(42, test_scale()),
        SimConfig::default(),
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    ));
    let got: Arc<Vec<Mutex<Option<Answer>>>> =
        Arc::new(items.iter().map(|_| Mutex::new(None)).collect());
    let next = Arc::new(AtomicUsize::new(0));
    let items = Arc::new(items);
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let server = Arc::clone(&server);
            let got = Arc::clone(&got);
            let next = Arc::clone(&next);
            let items = Arc::clone(&items);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((_, domain, question, _)) = items.get(i) else {
                    return;
                };
                let resp = server
                    .ask(Request::new(
                        *domain,
                        MethodName::HandWritten,
                        question.clone(),
                    ))
                    .expect("queue is deep enough to never shed");
                *got[i].lock().unwrap() = Some(resp.answer);
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    for (i, (id, ..)) in items.iter().enumerate() {
        let got = got[i].lock().unwrap();
        assert_eq!(
            got.as_ref(),
            Some(&expected[i]),
            "query {id} diverged from the serial baseline"
        );
    }
    let concurrent_score: usize = items
        .iter()
        .enumerate()
        .filter(|(i, (id, _, _, ordered))| {
            let got = got[*i].lock().unwrap();
            harness
                .truth(*id)
                .is_some_and(|t| exact_match(got.as_ref().unwrap(), t, *ordered))
        })
        .count();
    assert_eq!(concurrent_score, serial_score);

    let b = server.batch_stats();
    assert_eq!(b.fallback_rounds, 0);
    assert!(
        b.cross_request_rounds >= 1,
        "8 concurrent clients should merge at least one LM round: {b:?}"
    );
    assert!(
        b.rounds < b.submissions,
        "merging should reduce inference rounds: {b:?}"
    );
    assert_eq!(
        server
            .metrics()
            .requests_ok
            .load(std::sync::atomic::Ordering::Relaxed),
        items.len() as u64
    );
}

/// Asking the same questions twice must be answered from the cache the
/// second time, without changing any answer.
#[test]
fn replay_hits_answer_cache_with_identical_answers() {
    let server = Server::start(
        generate_all(
            42,
            Scale {
                schools: 40,
                players: 40,
                posts: 20,
                customers: 40,
                drivers: 6,
            },
        ),
        SimConfig::default(),
        ServerConfig::default(),
    );
    let domains = server.domains();
    let questions: Vec<(String, String)> = {
        let generated = generate_all(
            42,
            Scale {
                schools: 40,
                players: 40,
                posts: 20,
                customers: 40,
                drivers: 6,
            },
        );
        tag_bench::build_benchmark(&generated)
            .iter()
            .take(10)
            .map(|q| (q.domain.to_owned(), q.question()))
            .collect()
    };
    assert!(questions.iter().all(|(d, _)| domains.contains(d)));
    let first: Vec<Answer> = questions
        .iter()
        .map(|(d, q)| {
            let r = server
                .ask(Request::new(d.clone(), MethodName::Rag, q.clone()))
                .unwrap();
            assert!(!r.cache_hit);
            r.answer
        })
        .collect();
    for ((d, q), expected) in questions.iter().zip(&first) {
        let r = server
            .ask(Request::new(d.clone(), MethodName::Rag, q.clone()))
            .unwrap();
        assert!(r.cache_hit, "second ask of {q:?} must hit the cache");
        assert_eq!(&r.answer, expected);
    }
    let stats = server.cache().stats();
    assert_eq!(stats.hits, questions.len() as u64);
}

/// A saturated bounded queue sheds with `QueueFull` instead of queueing
/// unboundedly, and the shed count is visible in the metrics.
#[test]
fn saturated_queue_sheds_with_queue_full() {
    let domains = generate_all(
        42,
        Scale {
            schools: 40,
            players: 40,
            posts: 20,
            customers: 40,
            drivers: 6,
        },
    );
    let question = tag_bench::build_benchmark(&domains)
        .iter()
        .find(|q| q.domain == "california_schools")
        .expect("schools query exists")
        .question();
    let server = Server::start(
        domains,
        SimConfig::default(),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            // A long batching window pins the worker inside its first LM
            // round, so later submissions deterministically find the
            // queue full.
            batch_window: Duration::from_millis(100),
            max_batch: 1024,
            ..ServerConfig::default()
        },
    );
    // Rag always performs LM work, so this request holds the worker for
    // at least one batching window.
    let busy = server
        .submit(Request::new(
            "california_schools",
            MethodName::Rag,
            question.clone(),
        ))
        .unwrap();
    let mut accepted = vec![busy];
    let mut shed = 0usize;
    for _ in 0..16 {
        match server.submit(Request::new(
            "california_schools",
            MethodName::Rag,
            question.clone(),
        )) {
            Ok(h) => accepted.push(h),
            Err(ServeError::QueueFull) => shed += 1,
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert!(
        shed > 0,
        "17 instant submissions into a 1-deep queue with 1 busy worker must shed"
    );
    for h in accepted {
        assert!(h.wait().is_ok());
    }
    let m = server.metrics();
    assert_eq!(
        m.rejected_queue_full
            .load(std::sync::atomic::Ordering::Relaxed),
        shed as u64
    );
    assert!(server.report().contains(&format!("shed_queue_full={shed}")));
}
