//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple median-of-samples wall-clock measurement instead of
//! criterion's full statistical machinery. Good enough to spot order-of-
//! magnitude regressions when run with `cargo bench`.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter component.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs closures and measures their wall-clock time.
pub struct Bencher {
    samples: usize,
    last_median: Duration,
}

impl Bencher {
    /// Time `f`, recording `samples` timed runs after one warm-up.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set timed runs per benchmark (criterion's minimum is 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored knob kept for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{}: median {:?} over {} samples",
            self.name, id, b.last_median, self.sample_size
        );
        self
    }

    /// Benchmark a closure against an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut b, input);
        println!(
            "{}/{}: median {:?} over {} samples",
            self.name, id, b.last_median, self.sample_size
        );
        self
    }

    /// Finish the group (printing is immediate; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _c: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define the bench entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function(BenchmarkId::new("sum", 10), |b| {
            b.iter(|| (0..10u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
