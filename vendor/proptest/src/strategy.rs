//! Strategies: deterministic samplers for test inputs.

use crate::test_runner::TestRng;

/// A generator of test values. Unlike upstream proptest there are no
/// value trees or shrinking: a strategy is just a deterministic sampler.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `keep`; panics if the predicate
    /// rejects too many consecutive samples (mirroring proptest's
    /// too-many-local-rejects error).
    fn prop_filter<F>(self, reason: impl Into<String>, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            keep,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    keep: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.reason);
    }
}

/// A constant strategy: every sample is a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from boxed arms (used by `prop_oneof!`).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Box one arm (used by `prop_oneof!`).
    pub fn arm<S>(s: S) -> Box<dyn Strategy<Value = V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() as usize) % self.arms.len();
        self.arms[i].sample(rng)
    }
}

/// Uniform choice between strategies with identical value types.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Union::arm($arm)),+])
    };
}

// ---- numeric ranges as strategies -----------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f32 * (1.0 / (1u64 << 53) as f32);
        self.start + u * (self.end - self.start)
    }
}

// ---- any::<T>() -----------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait ArbitraryValue: Sized {
    /// Build a value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl ArbitraryValue for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// See [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The whole-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::from_bits(rng.next_u64())
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ---- regex-subset string strategies ---------------------------------------

/// One parsed pattern atom: a set of candidate chars plus a repetition.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// The printable-character pool backing `\PC` (upstream: "any char that
/// is not a control character"). ASCII-heavy with a few multibyte
/// characters so UTF-8 handling is exercised.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..=0x7E).map(|b| b as char).collect();
    pool.extend(['é', 'ß', 'λ', 'Ω', '→', '中', '…', '¿']);
    pool
}

/// Parse the regex subset: sequences of `[class]`, `\PC`, or literal
/// chars, each optionally followed by `{m,n}` / `{m}`.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let body = &chars[i + 1..close];
                i = close + 1;
                let mut set = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j], body[j + 2]);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                set
            }
            '\\' => {
                // Only `\PC` (printable char) is supported.
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pattern:?}"
                );
                i += 3;
                printable_pool()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("rep min"),
                    n.trim().parse().expect("rep max"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("rep count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty char class in {pattern:?}");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let span = atom.max - atom.min + 1;
            let n = atom.min + (rng.next_u64() as usize) % span;
            for _ in 0..n {
                let c = atom.chars[(rng.next_u64() as usize) % atom.chars.len()];
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::deterministic("regex_subset_shapes");
        for _ in 0..200 {
            let s = "[A-Za-z][A-Za-z0-9]{0,10}".sample(&mut rng);
            assert!(s.len() <= 11 && !s.is_empty(), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            let t = "[ab%_]{0,8}".sample(&mut rng);
            assert!(t.chars().all(|c| "ab%_".contains(c)), "{t:?}");
            let p = "\\PC{1,60}".sample(&mut rng);
            assert!(!p.is_empty() && p.chars().count() <= 60);
            assert!(p.chars().all(|c| !c.is_control()), "{p:?}");
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("combinators_compose");
        let s = (0i64..10)
            .prop_map(|x| x * 2)
            .prop_filter("even only", |x| x % 2 == 0);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
        let u = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(u.sample(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2));
    }

    #[test]
    fn collection_vec_respects_len() {
        let mut rng = TestRng::deterministic("collection_vec_respects_len");
        let s = crate::collection::vec((0u8..5, "[a-z]{1,3}"), 1..4);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
            for (n, t) in &v {
                assert!(*n < 5);
                assert!((1..=3).contains(&t.len()));
            }
        }
    }
}
