//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates.io, so this vendored crate
//! implements a miniature property-testing engine with the API surface
//! the workspace's test suites use:
//!
//! - [`Strategy`] with `prop_map` / `prop_filter`, tuple strategies,
//!   numeric-range strategies, and a regex-subset string strategy
//!   (char classes, `{m,n}` repetition, `\PC` for printable chars);
//! - [`prelude`] with `any::<T>()`, `Just`, `prop_oneof!`,
//!   `prop::collection::vec`, and the `proptest!` /
//!   `prop_assert*!` macros;
//! - deterministic case generation seeded per test function.
//!
//! Failing cases are reported with their case number and generated
//! inputs via `Debug`; there is **no shrinking** — rerunning a failed
//! seed reproduces the case exactly, which is enough for a fully
//! deterministic workspace.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Define property tests. Each `fn` inside runs `config.cases` times
/// with inputs sampled from the `arg in strategy` bindings; failures
/// panic with the case number and the generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // Bind strategies once, by arg name; each case shadows the
            // binding with a sampled value.
            $( let $arg = $strat; )+
            for __case in 0..__config.cases {
                $( let $arg = $crate::strategy::Strategy::sample(&$arg, &mut __rng); )+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n    inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __msg,
                        __inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
}

/// Assert a condition inside `proptest!`, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__lhs, __rhs) => {
                if !(*__lhs == *__rhs) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), __lhs, __rhs
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__lhs, __rhs) => {
                if !(*__lhs == *__rhs) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), format!($($fmt)+), __lhs, __rhs
                    ));
                }
            }
        }
    };
}

/// Assert inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__lhs, __rhs) => {
                if *__lhs == *__rhs {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($a), stringify!($b), __lhs
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__lhs, __rhs) => {
                if *__lhs == *__rhs {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{} != {}` ({})\n  both: {:?}",
                        stringify!($a), stringify!($b), format!($($fmt)+), __lhs
                    ));
                }
            }
        }
    };
}

/// `use proptest::prelude::*;` support.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}
