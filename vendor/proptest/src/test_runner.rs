//! Test-runner plumbing: configuration and the deterministic RNG.

/// Per-test configuration. Only `cases` is honoured; the struct is
/// non-exhaustive-by-convention via `..ProptestConfig::default()`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; this engine never persists failures.
    pub failure_persistence: Option<()>,
    /// Accepted for compatibility; rejects abort a case loudly instead.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            failure_persistence: None,
            max_local_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Deterministic RNG (xoshiro256** seeded via SplitMix64). Each
/// `proptest!` function gets a stream derived from its own name, so
/// cases are stable across runs and independent across tests.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary label (the test function name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a to fold the label into a u64 seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Seed from a u64 via SplitMix64 expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn stream_is_not_constant() {
        let mut r = TestRng::from_seed(7);
        let xs: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
