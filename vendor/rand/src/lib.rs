//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot fetch crates.io, so this vendored crate
//! implements exactly the surface the workspace uses: [`rngs::StdRng`]
//! seeded with [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer and float ranges, [`Rng::gen_bool`], [`Rng::gen`], and
//! [`seq::SliceRandom`] (`choose` / `shuffle`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but the workspace only
//! requires *determinism per seed*, not upstream-identical streams: all
//! ground truth is planted at data-generation time from the same stream
//! that generates the data.

/// Core RNG trait: the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range (`a..b` or `a..=b`, integer or float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Build a value from 64 random bits.
    fn sample(bits: u64) -> Self;
}

impl Standard for bool {
    fn sample(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> Self {
        bits
    }
}

impl Standard for f64 {
    fn sample(bits: u64) -> Self {
        unit_f64(bits)
    }
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly (the `rand` 0.8 trait shape).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types `gen_range` can produce. Mirrors upstream's `SampleUniform` so
/// `Range<T>: SampleRange<T>` stays generic — that keeps type inference
/// flowing from call-site context through untyped integer literals
/// (e.g. `slice[rng.gen_range(0..3)]` infers `usize`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)` or `[low, high]`.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty gen_range");
                let v = (rng.next_u64() as u128) % span as u128;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                low + u * (high - low)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Seedable construction (the `rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Derive a generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic per seed, fast, and statistically strong
    /// for simulation purposes.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (the `rand::seq` subset).
pub mod seq {
    use super::Rng;

    /// Random selection over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&self[i])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// `use rand::prelude::*;` support.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: usize = r.gen_range(0..=3);
            assert!(y <= 3);
            let f: f64 = r.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1900..3100).contains(&heads), "got {heads}");
    }

    #[test]
    fn choose_and_shuffle_cover_slice() {
        let mut r = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut r).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
