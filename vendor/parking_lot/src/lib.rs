//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the minimal surface it uses: [`Mutex`], [`RwLock`],
//! and [`Condvar`] with parking_lot's poison-free API, implemented over
//! `std::sync`. Poisoned locks are treated as plain lock acquisitions
//! (parking_lot has no poisoning), which matches how the workspace uses
//! them: every guard-held section is panic-free or the process is
//! aborting anyway.

use std::fmt;
use std::time::{Duration, Instant};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so condvar waits can move it out
/// and back without `unsafe`; it is `None` only transiently inside
/// [`Condvar`] methods.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(inner) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside a wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present outside a wait")
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a wait with timeout on [`Condvar`].
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with this module's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Block until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => {
                timed_out = r.timed_out();
                g
            }
            Err(p) => {
                let (g, r) = p.into_inner();
                timed_out = r.timed_out();
                g
            }
        });
        WaitTimeoutResult { timed_out }
    }

    /// Block until notified or the deadline passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, timeout)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// Swap the std guard held inside a [`MutexGuard`] through a wait call.
fn replace_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    let old = guard.inner.take().expect("guard present outside a wait");
    guard.inner = Some(f(old));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_notifies() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        t.join().unwrap();
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
