//! Umbrella crate for the TAG reproduction workspace.
//!
//! Re-exports every subsystem so examples and integration tests can use a
//! single dependency. See the individual crates for the real APIs:
//!
//! - [`tag_sql`] — in-memory SQL engine (SQLite stand-in)
//! - [`tag_lm`] — simulated language model substrate
//! - [`tag_embed`] — embeddings + vector store (FAISS/E5 stand-in)
//! - [`tag_semops`] — LOTUS-style semantic operator runtime
//! - [`tag_core`] — the TAG model and all five evaluated methods
//! - [`tag_datagen`] — synthetic BIRD-style domain databases
//! - [`tag_bench`] — TAG-Bench: 80 queries, oracle ground truth, harness
//! - [`tag_serve`] — concurrent query-serving runtime (worker pool,
//!   cross-request LM batching, sharded answer cache, metrics)

pub use tag_bench;
pub use tag_core;
pub use tag_datagen;
pub use tag_embed;
pub use tag_lm;
pub use tag_semops;
pub use tag_serve;
pub use tag_sql;
