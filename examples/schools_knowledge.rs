//! A world-knowledge match-based query (the paper's Appendix A example
//! family): "What is the GSoffered of the school with the highest
//! Longitude in cities that are part of the 'Silicon Valley' region?"
//!
//! The region membership is *not in the database* — it lives in the LM's
//! parametric knowledge. Text2SQL must inline the region from (imperfect)
//! free recall; hand-written TAG asks the LM per distinct city instead.
//!
//! Run with: `cargo run --example schools_knowledge`

use std::sync::Arc;
use tag_repro::tag_core::env::TagEnv;
use tag_repro::tag_core::methods::{HandWrittenTag, Text2Sql};
use tag_repro::tag_core::model::{QuerySynthesis, TagMethod};
use tag_repro::tag_datagen::schools;
use tag_repro::tag_lm::sim::{SimConfig, SimLm};

fn main() {
    let request = "What is the GSoffered of the schools with the highest Longitude \
                   among those located in the Silicon Valley region?";
    println!("Query: {request}\n");

    let domain = schools::generate(42, 600);
    let lm = Arc::new(SimLm::new(SimConfig::default()));
    let env = TagEnv::new(domain.db, lm);

    // What SQL does the LM synthesize? Note the IN-list: the model's
    // *enumerated* (free-recall) subset of Silicon Valley cities.
    let sql = Text2Sql
        .synthesize(request, &env)
        .expect("synthesis succeeds");
    println!("Text2SQL synthesized:\n  {sql}\n");

    env.reset_metrics();
    let t2s = Text2Sql.answer(request, &env);
    let t2s_secs = env.elapsed_seconds();

    env.reset_metrics();
    let tag = HandWrittenTag.answer(request, &env);
    let tag_secs = env.elapsed_seconds();
    let stats = env.engine.stats();

    println!("Text2SQL answer:        {t2s}   ({t2s_secs:.2}s simulated)");
    println!("Hand-written TAG:       {tag}   ({tag_secs:.2}s simulated)");
    println!(
        "\nTAG judged each of the distinct cities with one batched LM round \
         ({} prompts, {} batches) — recognition beats free recall.",
        stats.lm_prompts, stats.lm_batches
    );
}
