//! The paper's introduction example: a Databricks user asks *"what are
//! the QoQ trends for the 'retail' vertical?"* over a table of account
//! names, products, and revenue. Answering needs (a) world knowledge —
//! which companies count as retail — and (b) a business definition of
//! QoQ, neither of which is in the schema.
//!
//! The TAG pipeline: `sem_filter` the distinct account names by vertical
//! (LM world knowledge), then exact computation — a GROUP BY over
//! quarters with a UNION-assembled comparison — on the database engine.
//!
//! Run with: `cargo run --example retail_qoq`

use std::sync::Arc;
use tag_repro::tag_lm::model::LanguageModel;
use tag_repro::tag_lm::prompts::SemClaim;
use tag_repro::tag_lm::sim::{SimConfig, SimLm};
use tag_repro::tag_semops::{sem_filter, DataFrame, SemEngine};
use tag_repro::tag_sql::{Database, Value};

fn main() {
    // The data source: account revenue by quarter. Verticals are NOT a
    // column — they live in the LM's world knowledge.
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE accounts (account_name TEXT, product TEXT, quarter TEXT, revenue REAL)",
    )
    .expect("create accounts");
    let rows: &[(&str, &str, &str, f64)] = &[
        ("NorthMart", "POS Suite", "2024Q1", 120.0),
        ("NorthMart", "POS Suite", "2024Q2", 150.0),
        ("ShopRight", "Inventory AI", "2024Q1", 80.0),
        ("ShopRight", "Inventory AI", "2024Q2", 95.0),
        ("Cartwheel Stores", "POS Suite", "2024Q1", 60.0),
        ("Cartwheel Stores", "POS Suite", "2024Q2", 55.0),
        ("Vertex Systems", "Compute", "2024Q1", 300.0),
        ("Vertex Systems", "Compute", "2024Q2", 340.0),
        ("First Meridian Bank", "Risk Suite", "2024Q1", 210.0),
        ("First Meridian Bank", "Risk Suite", "2024Q2", 190.0),
        ("Helix Pharma", "Trials DB", "2024Q1", 170.0),
        ("Helix Pharma", "Trials DB", "2024Q2", 175.0),
    ];
    for (a, p, q, r) in rows {
        db.execute(&format!(
            "INSERT INTO accounts VALUES ('{a}', '{p}', '{q}', {r})"
        ))
        .expect("insert");
    }

    let request = "What are the QoQ trends for the 'retail' vertical?";
    println!("R: {request}\n");

    let lm = Arc::new(SimLm::new(SimConfig::default()));
    let engine = SemEngine::new(lm.clone() as Arc<dyn LanguageModel>);

    // Step 1 (semantic): which accounts are retail? Judge the *distinct*
    // names, Appendix-C style.
    let names = DataFrame::from_result(
        db.execute("SELECT DISTINCT account_name FROM accounts")
            .expect("distinct accounts"),
    );
    let retail = sem_filter(
        &engine,
        &names,
        "account_name",
        &SemClaim::CompanyInVertical {
            vertical: "retail".into(),
        },
    )
    .expect("sem_filter");
    let retail_names: Vec<String> = retail
        .column("account_name")
        .expect("column")
        .iter()
        .map(|v| format!("'{v}'"))
        .collect();
    println!("LM-judged retail accounts: {}", retail_names.join(", "));

    // Step 2 (exact): quarter-over-quarter revenue on the database
    // engine. "QoQ" is interpreted as last quarter vs the one before —
    // the business definition the intro says the system must supply.
    let in_list = retail_names.join(", ");
    let sql = format!(
        "SELECT quarter, SUM(revenue) AS total FROM accounts \
         WHERE account_name IN ({in_list}) GROUP BY quarter ORDER BY quarter"
    );
    let per_quarter = db.execute(&sql).expect("group by quarter");
    println!("\nQ (exact computation):\n  {sql}\n\n{per_quarter}");

    // Step 3 (gen): the trend statement.
    let q1 = per_quarter.rows[0][1].as_f64().unwrap_or(0.0);
    let q2 = per_quarter.rows[1][1].as_f64().unwrap_or(0.0);
    let pct = (q2 - q1) / q1 * 100.0;
    println!(
        "A: Retail revenue moved from {q1:.0} in {} to {q2:.0} in {} — {pct:+.1}% QoQ.",
        per_quarter.rows[0][0], per_quarter.rows[1][0]
    );

    // Sanity: the engine judged with one batched round.
    let stats = engine.stats();
    assert_eq!(stats.lm_batches, 1);
    assert!(matches!(per_quarter.rows[0][1], Value::Float(_)));
}
