//! Run every Table 1 method on a handful of TAG-Bench queries and show
//! answers, correctness, and simulated execution time side by side.
//!
//! Run with: `cargo run --release --example method_comparison`

use tag_repro::tag_bench::{Harness, MethodId, QueryType};

fn main() {
    let harness = Harness::standard();

    // One query of each graded type.
    let picks: Vec<usize> = [
        QueryType::MatchBased,
        QueryType::Comparison,
        QueryType::Ranking,
    ]
    .iter()
    .map(|t| {
        harness
            .queries()
            .iter()
            .find(|q| q.qtype == *t)
            .expect("query of each type")
            .id
    })
    .collect();

    for id in picks {
        let q = harness
            .queries()
            .iter()
            .find(|q| q.id == id)
            .expect("picked id")
            .clone();
        println!(
            "── Query {} ({}, {})",
            q.id,
            q.qtype.label(),
            q.kind.label()
        );
        println!("   {}", q.question());
        if let Some(truth) = harness.truth(q.id) {
            println!("   ground truth: [{}]", truth.join(", "));
        }
        for m in MethodId::all() {
            let o = harness.run_one(m, q.id);
            let verdict = match o.correct {
                Some(true) => "correct",
                Some(false) => "wrong",
                None => "n/a",
            };
            let mut shown = o.answer.to_string();
            if shown.len() > 90 {
                shown.truncate(90);
                shown.push('…');
            }
            println!(
                "   {:<20} {:>7} {:>6.2}s  {}",
                m.label(),
                verdict,
                o.seconds,
                shown
            );
        }
        println!();
    }
}
