//! Quickstart: the paper's Figure 1 pipeline, end to end.
//!
//! "Summarize the reviews of the highest grossing romance movie
//! considered a 'classic'." — query synthesis places an LM UDF inside
//! SQL, query execution runs it on the database engine, and answer
//! generation summarizes the computed rows.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use tag_repro::tag_core::env::TagEnv;
use tag_repro::tag_datagen::movies;
use tag_repro::tag_lm::model::{LanguageModel, LmRequest};
use tag_repro::tag_lm::prompts::{answer_free_prompt, sem_filter_prompt, SemClaim};
use tag_repro::tag_lm::sim::{SimConfig, SimLm};
use tag_repro::tag_sql::{FnUdf, Value};

fn main() {
    // The data source: a movies table (title, genre, revenue, review).
    let domain = movies::generate(42);
    let lm: Arc<SimLm> = Arc::new(SimLm::new(SimConfig::default()));
    let mut env = TagEnv::new(domain.db, lm.clone() as Arc<dyn LanguageModel>);

    let request =
        "Summarize the reviews of the highest grossing romance movie considered a 'classic'.";
    println!("R (request):  {request}\n");

    // ---- syn: the database API supports LM UDFs inside SQL (§2.1), so
    // the synthesized query calls the LM per row to identify classics.
    let udf_lm = Arc::clone(&lm);
    env.db.register_udf(Arc::new(FnUdf::new(
        "LLM_IS_CLASSIC",
        Some(1),
        move |args: &[Value]| {
            let prompt = sem_filter_prompt(&SemClaim::ClassicMovie, &args[0].to_string());
            let out = udf_lm
                .generate(&LmRequest::new(prompt))
                .map_err(|e| tag_repro::tag_sql::SqlError::Udf(e.to_string()))?;
            Ok(Value::from(out.text.trim().eq_ignore_ascii_case("true")))
        },
    )));
    let q = "SELECT movie_title, review FROM movies \
             WHERE genre = 'Romance' AND LLM_IS_CLASSIC(movie_title) \
             ORDER BY revenue DESC LIMIT 1";
    println!("Q (synthesized SQL):\n  {q}\n");

    // ---- exec: the database engine runs the query, including the LM UDF.
    let t = env.db.execute(q).expect("query executes");
    println!("T (computed table):\n{t}");

    // ---- gen: the LM answers over the computed table.
    let points: Vec<Vec<(String, String)>> = t
        .rows
        .iter()
        .map(|r| {
            t.columns
                .iter()
                .cloned()
                .zip(r.iter().map(|v| v.to_string()))
                .collect()
        })
        .collect();
    let answer = lm
        .generate(&LmRequest::new(answer_free_prompt(request, &points)))
        .expect("generation succeeds");

    println!("A (answer):   {}\n", answer.text);
    println!(
        "(LM usage: {} calls over {} batches, {:.2} simulated seconds)",
        lm.calls(),
        lm.batches(),
        lm.elapsed_seconds()
    );
}
