//! A tour of the LOTUS-style semantic operator runtime (`tag-semops`):
//! relational verbs plus `sem_filter`, `sem_topk`, and `sem_agg` — the
//! building blocks of the hand-written TAG pipelines in Appendix C.
//!
//! Run with: `cargo run --example semantic_operators`

use std::sync::Arc;
use tag_repro::tag_datagen::community;
use tag_repro::tag_lm::nlq::SemProperty;
use tag_repro::tag_lm::prompts::SemClaim;
use tag_repro::tag_lm::sim::{SimConfig, SimLm};
use tag_repro::tag_semops::{sem_agg, sem_filter, sem_topk, DataFrame, SemEngine};
use tag_repro::tag_sql::Value;

fn main() {
    // Data: the community domain's posts + comments.
    let domain = community::generate(42, 80);
    let mut db = domain.db;
    let engine = SemEngine::new(Arc::new(SimLm::new(SimConfig::default())));

    // Appendix C ranking pipeline: top-5 posts by ViewCount, reordered
    // by an LM judging which Title is most technical.
    let posts = DataFrame::from_result(db.execute("SELECT * FROM posts").unwrap());
    let top5 = posts.sort_by("ViewCount", true).unwrap().head(5);
    println!("Top-5 posts by ViewCount:");
    for v in top5.column("Title").unwrap() {
        println!("  - {v}");
    }
    let ranked = sem_topk(&engine, &top5, "Title", SemProperty::Technical, 5).unwrap();
    println!("\nsem_topk (most technical first):");
    for v in ranked.column("Title").unwrap() {
        println!("  - {v}");
    }

    // Appendix C filter pattern: sem_filter over *unique* values, then an
    // exact isin — here, sarcastic comments on one post.
    let comments = DataFrame::from_result(db.execute("SELECT * FROM comments").unwrap());
    let first_post = comments
        .filter_col("PostId", |v| v == &Value::Int(1))
        .unwrap();
    let sarcastic = sem_filter(
        &engine,
        &first_post,
        "Text",
        &SemClaim::Property(SemProperty::Sarcastic),
    )
    .unwrap();
    println!(
        "\nsem_filter: {} of {} comments on post 1 judged sarcastic:",
        sarcastic.len(),
        first_post.len()
    );
    for v in sarcastic.column("Text").unwrap() {
        println!("  - {v}");
    }

    // sem_agg: summarize the comments of post 1 (hierarchical fold kicks
    // in automatically when the input outgrows the context window).
    let summary = sem_agg(
        &engine,
        &first_post,
        "Summarize the comments",
        Some(&["Text"]),
    )
    .unwrap();
    println!("\nsem_agg summary of post 1's comments:\n  {summary}");

    let stats = engine.stats();
    println!(
        "\nEngine stats: {} prompts in {} batches ({} cache hits).",
        stats.lm_prompts, stats.lm_batches, stats.cache_hits
    );
}
