//! The paper's Figure 2, as a runnable scenario: the aggregation query
//! "Provide information about the races held on Sepang International
//! Circuit." asked to RAG, Text2SQL + LM, and hand-written TAG.
//!
//! - RAG can only talk about the handful of races its top-10 retrieval
//!   happened to fetch;
//! - Text2SQL + LM usually fails retrieval on the vague request and falls
//!   back to parametric knowledge;
//! - hand-written TAG computes the full table first and covers all 19
//!   races, enriched with the model's world knowledge.
//!
//! Run with: `cargo run --example sepang_aggregation`

use std::sync::Arc;
use tag_repro::tag_core::env::TagEnv;
use tag_repro::tag_core::methods::{HandWrittenTag, Rag, Text2SqlLm};
use tag_repro::tag_core::model::TagMethod;
use tag_repro::tag_datagen::formula1;
use tag_repro::tag_lm::sim::{SimConfig, SimLm};

fn main() {
    let request = "Provide information about the races held on Sepang International Circuit.";
    println!("Query: {request}\n");

    let domain = formula1::generate(42, 18);
    let lm = Arc::new(SimLm::new(SimConfig::default()));
    let env = TagEnv::new(domain.db, lm);

    for (name, answer) in [
        ("RAG", {
            env.reset_metrics();
            Rag::aggregation().answer(request, &env)
        }),
        ("Text2SQL + LM", {
            env.reset_metrics();
            Text2SqlLm::aggregation().answer(request, &env)
        }),
        ("Hand-written TAG", {
            env.reset_metrics();
            HandWrittenTag.answer(request, &env)
        }),
    ] {
        println!("== {name} ==");
        println!("{answer}\n");
    }

    println!(
        "Shape to observe: RAG covers a fraction of the 19 Sepang races, Text2SQL + LM \n\
         falls back to what the model memorized, and TAG covers every year 1999-2017."
    );
}
